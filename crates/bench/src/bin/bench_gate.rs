//! `bench_gate` — the CI regression gates over the machine-readable
//! benchmark summaries.
//!
//! Run `bench_gate --help` for a usage summary of every mode and flag.
//!
//! Throughput mode (`BENCH_engine.json`):
//!
//! ```text
//! bench_gate <current.json> <baseline.json> [--max-regression 0.25]
//!            [--min-speedup 2.0] [--min-pruned-speedup 1.15]
//!            [--min-pruned-fraction 0.5] [--max-telemetry-overhead-pct 2.0]
//! ```
//!
//! Fails (exit 1) when any of
//! * the concurrent engine's queries/sec dropped more than
//!   `--max-regression` (default 25%) below the committed baseline,
//! * the engine no longer beats the serial runtime by at least
//!   `--min-speedup` (default 2×) at the headline grid point,
//! * metadata pruning no longer beats the exhaustive plan by at least
//!   `--min-pruned-speedup` (default 1.15×) on the skewed band layout,
//! * the optimizer pruned less than `--min-pruned-fraction` (default 0.5)
//!   of the provider slots on that layout — the speed-up gate would be
//!   vacuous if nothing were actually pruned (the committed layout prunes
//!   exactly 3 of 4 providers per query, fraction 0.75), or
//! * the obs instrumentation costs more than
//!   `--max-telemetry-overhead-pct` (default 2%) of the uninstrumented
//!   throughput on the compute-bound skewed layout (`telemetry-on` vs
//!   `telemetry-off`, best of interleaved trials — telemetry must stay
//!   cheap enough to leave on in production).
//!
//! The comparison deliberately leans on the *speed-up ratios* (machine
//! independent) and treats absolute qps with a generous regression band,
//! since CI runners vary in raw speed.
//!
//! Accuracy mode (`BENCH_accuracy.json`):
//!
//! ```text
//! bench_gate --accuracy <current.json> <baseline.json>
//!            [--max-regression 0.25] [--pairwise-slack 1.15]
//! ```
//!
//! Fails (exit 1) when, at the headline ε, any of
//! * the calibrated (`EmCalibrated`) raw RMS at the top sampling rate
//!   regressed more than `--max-regression` above the committed baseline,
//! * calibrated RMS at the top rate is not strictly below the bottom rate
//!   (estimation error must *fall* with the sampling rate — Fig. 5),
//! * calibrated RMS does not beat the `PpsEq3` divisor at the top rate
//!   (strict: this is where the calibration claims its win), or
//! * calibrated RMS exceeds `--pairwise-slack` × the `PpsEq3` RMS at any
//!   swept rate. The slack covers the documented tie regime: at the
//!   lowest rates (one or two draws per provider) the floored-PPS divisor
//!   acts as a shrinkage estimator and can hold a ≲15% RMS edge; the gate
//!   tolerates that tie but fails if the calibrated estimator ever loses
//!   materially anywhere.
//!
//! Accuracy numbers are seeded Monte-Carlo, deterministic for a given
//! code state — regressions mean the estimator changed, not the machine.
//!
//! Net mode (`BENCH_net.json`):
//!
//! ```text
//! bench_gate --net <current.json> <baseline.json>
//!            [--max-regression 0.25] [--min-scaling 4.0]
//! ```
//!
//! Fails (exit 1) when either
//! * the remote path's queries/sec at the headline analyst count dropped
//!   more than `--max-regression` below the committed baseline, or
//! * remote throughput no longer scales: 8 concurrent analysts must reach
//!   at least `--min-scaling` × the single-analyst qps (the latency-hiding
//!   property the serving path exists for; under the slept-WAN model this
//!   ratio is machine-independent).
//!
//! Shard mode (`BENCH_shard.json`):
//!
//! ```text
//! bench_gate --shard <current.json> <baseline.json>
//!            [--max-regression 0.25] [--min-scaling 1.3]
//! ```
//!
//! Fails (exit 1) when any of
//! * the 2-shard grid's queries/sec dropped more than `--max-regression`
//!   below the committed baseline,
//! * the 2-shard grid no longer reaches `--min-scaling` (default 1.3×)
//!   the 1-shard grid's qps at equal total providers — the scatter–gather
//!   coordinator's reason to exist; under the slept-uplink model this
//!   ratio is machine-independent, or
//! * the 1-shard qps is not positive (the comparison would be vacuous).
//!
//! Stream mode (`BENCH_stream.json`):
//!
//! ```text
//! bench_gate --stream <current.json> <baseline.json>
//!            [--max-regression 0.25] [--max-first-fraction 0.6]
//! ```
//!
//! The live-federation gate over `repro stream` (streaming ingest +
//! server-push online answers on a loopback live server). Fails (exit 1)
//! when any of
//! * ingested rows/sec dropped more than `--max-regression` below the
//!   committed baseline,
//! * the run never triggered a staleness-policy metadata refresh
//!   (`refreshes` = 0) — the incremental-metadata path went unexercised,
//!   so the ingest number would be vacuous,
//! * post-ingest queries/sec dropped more than `--max-regression` below
//!   the baseline (queries against a grown, refreshed federation),
//! * the server failed to push every online round (`online_rounds_ok`
//!   ≠ 1), or
//! * the first pushed snapshot no longer lands early: its mean arrival
//!   exceeds `--max-first-fraction` (default 0.6) of the full online
//!   answer's latency. Round 1 scans at `1/rounds` of the terminal rate,
//!   so this ratio is machine-independent; it is the time-to-first-result
//!   property progressive answers exist for.
//!
//! Attack mode (`BENCH_attack.json`):
//!
//! ```text
//! bench_gate --attack <current.json> <baseline.json>
//!            [--attack-band 0.10] [--attack-drift 0.05] [--min-ceiling 0.65]
//! ```
//!
//! The empirical privacy gate over the red-team harness (`repro attack`):
//! single-analyst and coalition NBC accuracy/AUC against a live loopback
//! server, every swept ξ. Fails (exit 1) when any of
//! * an attacked accuracy or AUC strays more than `--attack-band` from
//!   chance (0.5 — the world's SA is binary), i.e. the private interface
//!   leaked a learnable signal,
//! * a metric drifts more than `--attack-drift` from the committed
//!   baseline (attack numbers are bit-reproducible; unexplained movement
//!   means the noise path changed),
//! * the current run's no-DP ceiling accuracy is below `--min-ceiling`
//!   (the harness could not learn even from clean answers — the gate
//!   would be vacuously green), or
//! * any analyst identity's server-side ledger exceeded its `(ξ, ψ)`
//!   grant (`ledgers_ok` ≠ 1).

use std::process::ExitCode;

use fedaqp_bench::experiments::accuracy::{rate_key, RATES};
use fedaqp_bench::experiments::attack::{metric_key, XIS};

/// Extracts the number following `"key":` from a flat JSON document. Only
/// headline keys are parsed, and they are chosen to be unique substrings,
/// so a full JSON parser is not needed (and the build stays offline).
fn json_number(text: &str, key: &str) -> Result<f64, String> {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("key `{key}` not found"))?;
    let rest = text[at + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|e| format!("key `{key}`: {e}"))
}

fn load(path: &str) -> Result<(f64, f64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Ok((
        json_number(&text, "engine_qps")?,
        json_number(&text, "speedup")?,
    ))
}

/// The accuracy-mode gate (see the module docs).
fn run_accuracy(
    current_path: &str,
    baseline_path: &str,
    max_regression: f64,
    pairwise_slack: f64,
) -> Result<String, String> {
    let current =
        std::fs::read_to_string(current_path).map_err(|e| format!("{current_path}: {e}"))?;
    let baseline =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let top_rate = RATES[RATES.len() - 1];
    let bottom_rate = RATES[0];
    let em_top = json_number(&current, &rate_key("em", top_rate))?;
    let pps_top = json_number(&current, &rate_key("pps", top_rate))?;
    let em_bottom = json_number(&current, &rate_key("em", bottom_rate))?;
    let baseline_em_top = json_number(&baseline, &rate_key("em", top_rate))?;
    let ceiling = (1.0 + max_regression) * baseline_em_top;
    let mut report = format!(
        "accuracy gate: calibrated raw RMS at sr={:.0}% = {em_top:.4} \
         (baseline {baseline_em_top:.4}, ceiling {ceiling:.4}); sr={:.0}% = {em_bottom:.4}\n",
        top_rate * 100.0,
        bottom_rate * 100.0,
    );
    let mut failed = false;
    if em_top > ceiling {
        failed = true;
        report.push_str(&format!(
            "FAIL: calibrated RMS at the top sampling rate regressed more than {:.0}% \
             above the baseline\n",
            100.0 * max_regression
        ));
    }
    if em_top >= em_bottom {
        failed = true;
        report.push_str(
            "FAIL: estimation error no longer falls with the sampling rate \
             (calibrated RMS at the top rate >= bottom rate)\n",
        );
    }
    if em_top >= pps_top {
        failed = true;
        report.push_str(&format!(
            "FAIL: calibrated RMS no longer beats the PpsEq3 divisor at sr={:.0}%\n",
            top_rate * 100.0
        ));
    }
    for &rate in &RATES {
        let em = json_number(&current, &rate_key("em", rate))?;
        let pps = json_number(&current, &rate_key("pps", rate))?;
        report.push_str(&format!(
            "  sr={:>3.0}%: em {em:.4} vs pps {pps:.4}\n",
            rate * 100.0
        ));
        if em > pairwise_slack * pps {
            failed = true;
            report.push_str(&format!(
                "FAIL: calibrated RMS exceeds {pairwise_slack:.2}x the PpsEq3 RMS \
                 (the tie slack) at sr={:.0}%\n",
                rate * 100.0
            ));
        }
    }
    if failed {
        Err(report)
    } else {
        report.push_str("PASS\n");
        Ok(report)
    }
}

/// The net-mode gate (see the module docs).
fn run_net(
    current_path: &str,
    baseline_path: &str,
    max_regression: f64,
    min_scaling: f64,
) -> Result<String, String> {
    let current =
        std::fs::read_to_string(current_path).map_err(|e| format!("{current_path}: {e}"))?;
    let baseline =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let net_qps = json_number(&current, "net_qps")?;
    let scaling = json_number(&current, "scaling")?;
    let baseline_qps = json_number(&baseline, "net_qps")?;
    let qps_floor = (1.0 - max_regression) * baseline_qps;
    let mut report = format!(
        "net gate: net_qps {net_qps:.1} (baseline {baseline_qps:.1}, floor {qps_floor:.1}), \
         scaling {scaling:.2}x (floor {min_scaling:.2}x)\n"
    );
    let mut failed = false;
    if net_qps < qps_floor {
        failed = true;
        report.push_str(&format!(
            "FAIL: remote queries/sec regressed more than {:.0}% below the baseline\n",
            100.0 * max_regression
        ));
    }
    if scaling < min_scaling {
        failed = true;
        report.push_str(&format!(
            "FAIL: remote throughput no longer scales ≥{min_scaling:.1}x from 1 to the \
             headline analyst count\n"
        ));
    }
    if failed {
        Err(report)
    } else {
        report.push_str("PASS\n");
        Ok(report)
    }
}

/// The shard-mode gate (see the module docs).
fn run_shard(
    current_path: &str,
    baseline_path: &str,
    max_regression: f64,
    min_scaling: f64,
) -> Result<String, String> {
    let current =
        std::fs::read_to_string(current_path).map_err(|e| format!("{current_path}: {e}"))?;
    let baseline =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let one_qps = json_number(&current, "one_shard_qps")?;
    let two_qps = json_number(&current, "two_shard_qps")?;
    let scaling = json_number(&current, "scaling")?;
    let baseline_qps = json_number(&baseline, "two_shard_qps")?;
    let qps_floor = (1.0 - max_regression) * baseline_qps;
    let mut report = format!(
        "shard gate: two_shard_qps {two_qps:.1} (baseline {baseline_qps:.1}, floor {qps_floor:.1}), \
         one_shard_qps {one_qps:.1}, scaling {scaling:.2}x (floor {min_scaling:.2}x)\n"
    );
    let mut failed = false;
    if one_qps <= 0.0 {
        failed = true;
        report.push_str(
            "FAIL: the 1-shard grid answered nothing — the scaling comparison is vacuous\n",
        );
    }
    if two_qps < qps_floor {
        failed = true;
        report.push_str(&format!(
            "FAIL: 2-shard queries/sec regressed more than {:.0}% below the baseline\n",
            100.0 * max_regression
        ));
    }
    if scaling < min_scaling {
        failed = true;
        report.push_str(&format!(
            "FAIL: the 2-shard grid no longer reaches ≥{min_scaling:.1}x the 1-shard grid \
             at equal total providers\n"
        ));
    }
    if failed {
        Err(report)
    } else {
        report.push_str("PASS\n");
        Ok(report)
    }
}

/// The stream-mode gate (see the module docs).
fn run_stream(
    current_path: &str,
    baseline_path: &str,
    max_regression: f64,
    max_first_fraction: f64,
) -> Result<String, String> {
    let current =
        std::fs::read_to_string(current_path).map_err(|e| format!("{current_path}: {e}"))?;
    let baseline =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let ingest = json_number(&current, "ingest_rows_per_sec")?;
    let refreshes = json_number(&current, "refreshes")?;
    let live_qps = json_number(&current, "live_qps")?;
    let rounds_ok = json_number(&current, "online_rounds_ok")?;
    let fraction = json_number(&current, "first_snapshot_fraction")?;
    let baseline_ingest = json_number(&baseline, "ingest_rows_per_sec")?;
    let baseline_qps = json_number(&baseline, "live_qps")?;
    let ingest_floor = (1.0 - max_regression) * baseline_ingest;
    let qps_floor = (1.0 - max_regression) * baseline_qps;
    let mut report = format!(
        "stream gate: ingest {ingest:.1} rows/s (baseline {baseline_ingest:.1}, floor \
         {ingest_floor:.1}), live_qps {live_qps:.1} (baseline {baseline_qps:.1}, floor \
         {qps_floor:.1}), refreshes {refreshes:.0}, first snapshot at {fraction:.2} of the \
         full answer (ceiling {max_first_fraction:.2})\n"
    );
    let mut failed = false;
    if ingest < ingest_floor {
        failed = true;
        report.push_str(&format!(
            "FAIL: ingested rows/sec regressed more than {:.0}% below the baseline\n",
            100.0 * max_regression
        ));
    }
    if refreshes < 1.0 {
        failed = true;
        report.push_str(
            "FAIL: the run never triggered a staleness-policy metadata refresh — the \
             incremental-metadata path went unexercised, so the ingest number is vacuous\n",
        );
    }
    if live_qps < qps_floor {
        failed = true;
        report.push_str(&format!(
            "FAIL: post-ingest queries/sec regressed more than {:.0}% below the baseline\n",
            100.0 * max_regression
        ));
    }
    if rounds_ok != 1.0 {
        failed = true;
        report.push_str(
            "FAIL: the server did not push every online round — progressive answers \
             arrived truncated\n",
        );
    }
    if fraction > max_first_fraction {
        failed = true;
        report.push_str(&format!(
            "FAIL: the first pushed snapshot no longer lands early (mean arrival \
             {fraction:.2} of the full answer, ceiling {max_first_fraction:.2})\n"
        ));
    }
    if failed {
        Err(report)
    } else {
        report.push_str("PASS\n");
        Ok(report)
    }
}

/// The attack-mode gate (see the module docs).
fn run_attack(
    current_path: &str,
    baseline_path: &str,
    band: f64,
    drift: f64,
    min_ceiling: f64,
) -> Result<String, String> {
    let current =
        std::fs::read_to_string(current_path).map_err(|e| format!("{current_path}: {e}"))?;
    let baseline =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let chance = json_number(&current, "chance")?;
    let ceiling = json_number(&current, "ceiling_accuracy")?;
    let ledgers_ok = json_number(&current, "ledgers_ok")?;
    let mut report = format!(
        "attack gate: chance {chance:.2}, band ±{band:.2}, drift ±{drift:.2}; \
         no-DP ceiling accuracy {ceiling:.4} (floor {min_ceiling:.2})\n"
    );
    let mut failed = false;
    if ceiling < min_ceiling {
        failed = true;
        report.push_str(&format!(
            "FAIL: the no-DP ceiling accuracy is below {min_ceiling:.2} — the harness cannot \
             learn even from clean answers, so a chance-level attack proves nothing\n"
        ));
    }
    if ledgers_ok != 1.0 {
        failed = true;
        report.push_str(
            "FAIL: an analyst identity's server-side ledger exceeded its (xi, psi) grant\n",
        );
    }
    for variant in ["single", "coalition"] {
        for &xi in &XIS {
            for metric in ["accuracy", "auc"] {
                let key = metric_key(variant, xi, metric);
                let cur = json_number(&current, &key)?;
                let base = json_number(&baseline, &key)?;
                report.push_str(&format!("  {key}: {cur:.4} (baseline {base:.4})\n"));
                if (cur - chance).abs() > band {
                    failed = true;
                    report.push_str(&format!(
                        "FAIL: `{key}` strayed more than {band:.2} from chance — the private \
                         interface leaked a learnable signal\n"
                    ));
                }
                if (cur - base).abs() > drift {
                    failed = true;
                    report.push_str(&format!(
                        "FAIL: `{key}` drifted more than {drift:.2} from the committed baseline \
                         (attack runs are bit-reproducible; explain or re-baseline)\n"
                    ));
                }
            }
        }
    }
    if failed {
        Err(report)
    } else {
        report.push_str("PASS\n");
        Ok(report)
    }
}

/// The `--help` text: one block per mode, flags with their defaults.
const HELP: &str = "\
bench_gate — CI regression gates over the repro benchmark summaries

usage: bench_gate [MODE] <current.json> <baseline.json> [FLAGS]

modes (default: throughput over BENCH_engine.json):
  --accuracy   estimator-quality gate over BENCH_accuracy.json
  --net        remote-serving gate over BENCH_net.json
  --shard      sharded-coordinator gate over BENCH_shard.json
  --stream     live-federation gate over BENCH_stream.json
  --attack     empirical-privacy gate over BENCH_attack.json

throughput flags:
  --max-regression R       allowed engine_qps drop vs baseline  [0.25]
  --min-speedup S          engine-vs-serial speedup floor       [2.0]
  --min-pruned-speedup P   pruned-vs-exhaustive speedup floor   [1.15]
  --min-pruned-fraction F  pruned provider-slot fraction floor  [0.5]
  --max-telemetry-overhead-pct T
                           telemetry-on throughput cost ceiling (%) [2.0]

accuracy flags:
  --max-regression R       allowed calibrated-RMS rise          [0.25]
  --pairwise-slack K       calibrated-vs-PPS tie tolerance      [1.15]

net flags:
  --max-regression R       allowed net_qps drop vs baseline     [0.25]
  --min-scaling X          8-analyst vs 1-analyst scaling floor [4.0]

shard flags:
  --max-regression R       allowed two_shard_qps drop vs baseline [0.25]
  --min-scaling X          2-shard vs 1-shard grid scaling floor  [1.3]

stream flags:
  --max-regression R       allowed ingest/live_qps drop vs baseline [0.25]
  --max-first-fraction F   first-snapshot arrival ceiling, as a
                           fraction of the full online answer       [0.6]

attack flags:
  --attack-band B          allowed |metric - chance|            [0.10]
  --attack-drift D         allowed |metric - baseline|          [0.05]
  --min-ceiling C          no-DP ceiling accuracy floor         [0.65]

Exit status 0 on PASS, 1 on any FAIL (report on stderr).
";

fn run(args: &[String]) -> Result<String, String> {
    let mut positional = Vec::new();
    let mut max_regression = 0.25_f64;
    let mut min_speedup = 2.0_f64;
    let mut min_pruned_speedup = 1.15_f64;
    let mut min_pruned_fraction = 0.5_f64;
    let mut max_telemetry_overhead_pct = 2.0_f64;
    let mut min_scaling: Option<f64> = None;
    let mut pairwise_slack = 1.15_f64;
    let mut attack_band = 0.10_f64;
    let mut attack_drift = 0.05_f64;
    let mut min_ceiling = 0.65_f64;
    let mut max_first_fraction = 0.6_f64;
    let mut accuracy = false;
    let mut net = false;
    let mut shard = false;
    let mut stream = false;
    let mut attack = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return Ok(HELP.to_string()),
            "--accuracy" => accuracy = true,
            "--net" => net = true,
            "--shard" => shard = true,
            "--stream" => stream = true,
            "--attack" => attack = true,
            "--max-first-fraction" => {
                i += 1;
                max_first_fraction = args
                    .get(i)
                    .ok_or("--max-first-fraction needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-first-fraction: {e}"))?;
            }
            "--attack-band" => {
                i += 1;
                attack_band = args
                    .get(i)
                    .ok_or("--attack-band needs a value")?
                    .parse()
                    .map_err(|e| format!("--attack-band: {e}"))?;
            }
            "--attack-drift" => {
                i += 1;
                attack_drift = args
                    .get(i)
                    .ok_or("--attack-drift needs a value")?
                    .parse()
                    .map_err(|e| format!("--attack-drift: {e}"))?;
            }
            "--min-ceiling" => {
                i += 1;
                min_ceiling = args
                    .get(i)
                    .ok_or("--min-ceiling needs a value")?
                    .parse()
                    .map_err(|e| format!("--min-ceiling: {e}"))?;
            }
            "--min-scaling" => {
                i += 1;
                min_scaling = Some(
                    args.get(i)
                        .ok_or("--min-scaling needs a value")?
                        .parse()
                        .map_err(|e| format!("--min-scaling: {e}"))?,
                );
            }
            "--max-regression" => {
                i += 1;
                max_regression = args
                    .get(i)
                    .ok_or("--max-regression needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-regression: {e}"))?;
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = args
                    .get(i)
                    .ok_or("--min-speedup needs a value")?
                    .parse()
                    .map_err(|e| format!("--min-speedup: {e}"))?;
            }
            "--min-pruned-speedup" => {
                i += 1;
                min_pruned_speedup = args
                    .get(i)
                    .ok_or("--min-pruned-speedup needs a value")?
                    .parse()
                    .map_err(|e| format!("--min-pruned-speedup: {e}"))?;
            }
            "--min-pruned-fraction" => {
                i += 1;
                min_pruned_fraction = args
                    .get(i)
                    .ok_or("--min-pruned-fraction needs a value")?
                    .parse()
                    .map_err(|e| format!("--min-pruned-fraction: {e}"))?;
            }
            "--max-telemetry-overhead-pct" => {
                i += 1;
                max_telemetry_overhead_pct = args
                    .get(i)
                    .ok_or("--max-telemetry-overhead-pct needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-telemetry-overhead-pct: {e}"))?;
            }
            "--pairwise-slack" => {
                i += 1;
                pairwise_slack = args
                    .get(i)
                    .ok_or("--pairwise-slack needs a value")?
                    .parse()
                    .map_err(|e| format!("--pairwise-slack: {e}"))?;
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let [current_path, baseline_path] = positional.as_slice() else {
        return Err(format!(
            "usage: bench_gate [--accuracy | --net | --shard | --stream | --attack] \
             <current.json> <baseline.json> [flags]\n\n{HELP}"
        ));
    };
    if accuracy {
        return run_accuracy(current_path, baseline_path, max_regression, pairwise_slack);
    }
    if net {
        return run_net(
            current_path,
            baseline_path,
            max_regression,
            min_scaling.unwrap_or(4.0),
        );
    }
    if shard {
        return run_shard(
            current_path,
            baseline_path,
            max_regression,
            min_scaling.unwrap_or(1.3),
        );
    }
    if stream {
        return run_stream(
            current_path,
            baseline_path,
            max_regression,
            max_first_fraction,
        );
    }
    if attack {
        return run_attack(
            current_path,
            baseline_path,
            attack_band,
            attack_drift,
            min_ceiling,
        );
    }
    let current_text =
        std::fs::read_to_string(current_path).map_err(|e| format!("{current_path}: {e}"))?;
    let (current_qps, current_speedup) = load(current_path)?;
    let (baseline_qps, baseline_speedup) = load(baseline_path)?;
    let pruned_speedup = json_number(&current_text, "pruned_speedup")?;
    let pruned_fraction = json_number(&current_text, "pruned_fraction")?;
    let telemetry_overhead_pct = json_number(&current_text, "telemetry_overhead_pct")?;
    let qps_floor = (1.0 - max_regression) * baseline_qps;
    let mut report = format!(
        "bench gate: engine_qps {current_qps:.1} (baseline {baseline_qps:.1}, floor {qps_floor:.1}), \
         speedup {current_speedup:.2}x (baseline {baseline_speedup:.2}x, floor {min_speedup:.2}x), \
         pruned speedup {pruned_speedup:.2}x (floor {min_pruned_speedup:.2}x) at pruned fraction \
         {pruned_fraction:.2} (floor {min_pruned_fraction:.2}), telemetry overhead \
         {telemetry_overhead_pct:.2}% (ceiling {max_telemetry_overhead_pct:.2}%)\n"
    );
    let mut failed = false;
    if current_qps < qps_floor {
        failed = true;
        report.push_str(&format!(
            "FAIL: queries/sec regressed more than {:.0}% below the baseline\n",
            100.0 * max_regression
        ));
    }
    if current_speedup < min_speedup {
        failed = true;
        report.push_str(&format!(
            "FAIL: concurrent engine no longer ≥{min_speedup:.1}x the serial runtime\n"
        ));
    }
    if pruned_fraction < min_pruned_fraction {
        failed = true;
        report.push_str(&format!(
            "FAIL: the optimizer pruned only {:.0}% of provider slots on the skewed layout \
             (floor {:.0}%) — the pruned-speedup gate would be vacuous\n",
            100.0 * pruned_fraction,
            100.0 * min_pruned_fraction
        ));
    }
    if pruned_speedup < min_pruned_speedup {
        failed = true;
        report.push_str(&format!(
            "FAIL: metadata pruning no longer ≥{min_pruned_speedup:.2}x the exhaustive plan \
             on the skewed band layout\n"
        ));
    }
    if telemetry_overhead_pct > max_telemetry_overhead_pct {
        failed = true;
        report.push_str(&format!(
            "FAIL: telemetry costs {telemetry_overhead_pct:.2}% of the uninstrumented \
             throughput (ceiling {max_telemetry_overhead_pct:.2}%) — instrumentation must \
             stay cheap enough to leave on\n"
        ));
    }
    if failed {
        Err(report)
    } else {
        report.push_str("PASS\n");
        Ok(report)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprint!("{report}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "schema": "fedaqp-bench-engine/v1",
  "queries": 24,
  "serial_qps": 100.5,
  "engine_qps": 402.25,
  "speedup": 4.002,
  "pruned_jobs": 1200,
  "pruned_fraction": 0.75,
  "pruned_exhaustive_qps": 22000.0,
  "pruned_qps": 30000.0,
  "pruned_speedup": 1.364,
  "telemetry_on_qps": 29700.0,
  "telemetry_off_qps": 30000.0,
  "telemetry_overhead_pct": 1.000,
  "grid": [
    {"providers": 4, "mode": "engine", "analysts": 8, "qps": 402.25, "p50_ms": 1.2, "p95_ms": 3.4}
  ]
}"#;

    #[test]
    fn extracts_headline_numbers() {
        assert_eq!(json_number(DOC, "engine_qps").unwrap(), 402.25);
        assert_eq!(json_number(DOC, "speedup").unwrap(), 4.002);
        assert_eq!(json_number(DOC, "queries").unwrap(), 24.0);
        assert!(json_number(DOC, "missing").is_err());
    }

    #[test]
    fn gate_passes_and_fails() {
        let dir = std::env::temp_dir().join("fedaqp_bench_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let current = dir.join("current.json");
        let baseline = dir.join("baseline.json");
        std::fs::write(&current, DOC).unwrap();
        std::fs::write(&baseline, DOC).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [current.to_str().unwrap(), baseline.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .chain(extra.iter().map(|s| s.to_string()))
                .collect()
        };
        // Identical current/baseline passes.
        assert!(run(&args(&[])).is_ok());
        // A baseline 10x above the current qps fails the regression band.
        let fast = DOC.replace("\"engine_qps\": 402.25", "\"engine_qps\": 4022.5");
        std::fs::write(&baseline, fast).unwrap();
        assert!(run(&args(&[])).unwrap_err().contains("regressed"));
        // ... unless the band is loosened to 95%.
        assert!(run(&args(&["--max-regression", "0.95"])).is_ok());
        // Speed-up floor above the current ratio fails.
        std::fs::write(&baseline, DOC).unwrap();
        let slow = DOC.replace("\"speedup\": 4.002", "\"speedup\": 1.5");
        std::fs::write(&current, slow).unwrap();
        assert!(run(&args(&[])).unwrap_err().contains("serial runtime"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruned_gate_passes_and_fails() {
        let dir = std::env::temp_dir().join("fedaqp_pruned_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let current = dir.join("current.json");
        let baseline = dir.join("baseline.json");
        std::fs::write(&baseline, DOC).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [current.to_str().unwrap(), baseline.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .chain(extra.iter().map(|s| s.to_string()))
                .collect()
        };
        // Pruning losing its edge fails...
        let flat = DOC.replace("\"pruned_speedup\": 1.364", "\"pruned_speedup\": 1.01");
        std::fs::write(&current, flat).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("exhaustive plan"), "{err}");
        // ... unless the floor is lowered below the measurement.
        assert!(run(&args(&["--min-pruned-speedup", "1.0"])).is_ok());
        // A layout where (almost) nothing is pruned makes the speed-up
        // gate vacuous: fail loudly even though the ratio itself passes.
        let vacuous = DOC.replace("\"pruned_fraction\": 0.75", "\"pruned_fraction\": 0.05");
        std::fs::write(&current, vacuous).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("vacuous"), "{err}");
        assert!(run(&args(&["--min-pruned-fraction", "0.01"])).is_ok());
        // A summary predating the pruned keys is a hard error, not a pass.
        std::fs::write(&current, DOC.replace("\"pruned_speedup\": 1.364,\n", "")).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("pruned_speedup"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_gate_passes_and_fails() {
        let dir = std::env::temp_dir().join("fedaqp_telemetry_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let current = dir.join("current.json");
        let baseline = dir.join("baseline.json");
        std::fs::write(&baseline, DOC).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [current.to_str().unwrap(), baseline.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .chain(extra.iter().map(|s| s.to_string()))
                .collect()
        };
        // Instrumentation getting expensive fails...
        let costly = DOC.replace(
            "\"telemetry_overhead_pct\": 1.000",
            "\"telemetry_overhead_pct\": 5.000",
        );
        std::fs::write(&current, costly).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("cheap enough to leave on"), "{err}");
        // ... unless the ceiling is raised above the measurement.
        assert!(run(&args(&["--max-telemetry-overhead-pct", "10.0"])).is_ok());
        // Negative overhead ("on" won the race — noise) passes.
        let lucky = DOC.replace(
            "\"telemetry_overhead_pct\": 1.000",
            "\"telemetry_overhead_pct\": -0.400",
        );
        std::fs::write(&current, lucky).unwrap();
        assert!(run(&args(&[])).is_ok());
        // A summary predating the telemetry keys is a hard error.
        std::fs::write(
            &current,
            DOC.replace("\"telemetry_overhead_pct\": 1.000,\n", ""),
        )
        .unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("telemetry_overhead_pct"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_usage_is_reported() {
        assert!(run(&["one".into()]).unwrap_err().contains("usage"));
    }

    #[test]
    fn help_prints_every_mode_and_exits_zero() {
        let help = run(&["--help".into()]).unwrap();
        for needle in [
            "--accuracy",
            "--net",
            "--shard",
            "--stream",
            "--attack",
            "--max-first-fraction",
            "--min-pruned-speedup",
            "--min-pruned-fraction",
            "--max-telemetry-overhead-pct",
            "--min-speedup",
            "--min-scaling",
            "--pairwise-slack",
            "--attack-band",
            "--min-ceiling",
        ] {
            assert!(help.contains(needle), "help is missing `{needle}`");
        }
        assert_eq!(run(&["-h".into()]).unwrap(), help);
    }

    const NET_DOC: &str = r#"{
  "schema": "fedaqp-bench-net/v1",
  "queries": 48,
  "headline_analysts": 8,
  "single_qps": 9.8,
  "net_qps": 71.5,
  "scaling": 7.296,
  "net_p50_ms": 104.1,
  "net_p95_ms": 110.2,
  "grid": [
    {"analysts": 8, "qps": 71.5, "p50_ms": 104.1, "p95_ms": 110.2}
  ]
}"#;

    #[test]
    fn net_gate_passes_and_fails() {
        let dir = std::env::temp_dir().join("fedaqp_net_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let current = dir.join("current.json");
        let baseline = dir.join("baseline.json");
        std::fs::write(&current, NET_DOC).unwrap();
        std::fs::write(&baseline, NET_DOC).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [
                "--net",
                current.to_str().unwrap(),
                baseline.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .chain(extra.iter().map(|s| s.to_string()))
            .collect()
        };
        // Identical current/baseline passes.
        assert!(run(&args(&[])).is_ok());
        // A baseline 10x above the current qps fails the regression band.
        let fast = NET_DOC.replace("\"net_qps\": 71.5", "\"net_qps\": 715.0");
        std::fs::write(&baseline, fast).unwrap();
        assert!(run(&args(&[])).unwrap_err().contains("regressed"));
        assert!(run(&args(&["--max-regression", "0.95"])).is_ok());
        // Scaling below the floor fails.
        std::fs::write(&baseline, NET_DOC).unwrap();
        let flat = NET_DOC.replace("\"scaling\": 7.296", "\"scaling\": 2.1");
        std::fs::write(&current, flat).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("no longer scales"), "{err}");
        // ... unless the floor is lowered.
        assert!(run(&args(&["--min-scaling", "2.0"])).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    const SHARD_DOC: &str = r#"{
  "schema": "fedaqp-bench-shard/v1",
  "dataset": "adult_synth",
  "providers": 8,
  "analysts": 8,
  "queries": 48,
  "one_shard_qps": 44.2,
  "two_shard_qps": 81.6,
  "scaling": 1.846,
  "two_shard_p50_ms": 22.4,
  "two_shard_p95_ms": 30.1
}"#;

    #[test]
    fn shard_gate_passes_and_fails() {
        let dir = std::env::temp_dir().join("fedaqp_shard_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let current = dir.join("current.json");
        let baseline = dir.join("baseline.json");
        std::fs::write(&current, SHARD_DOC).unwrap();
        std::fs::write(&baseline, SHARD_DOC).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [
                "--shard",
                current.to_str().unwrap(),
                baseline.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .chain(extra.iter().map(|s| s.to_string()))
            .collect()
        };
        // Identical current/baseline passes.
        assert!(run(&args(&[])).is_ok());
        // A baseline 10x above the current 2-shard qps fails the band.
        let fast = SHARD_DOC.replace("\"two_shard_qps\": 81.6", "\"two_shard_qps\": 816.0");
        std::fs::write(&baseline, fast).unwrap();
        assert!(run(&args(&[])).unwrap_err().contains("regressed"));
        assert!(run(&args(&["--max-regression", "0.95"])).is_ok());
        // Scaling below the 1.3x floor fails.
        std::fs::write(&baseline, SHARD_DOC).unwrap();
        let flat = SHARD_DOC.replace("\"scaling\": 1.846", "\"scaling\": 1.05");
        std::fs::write(&current, flat).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("equal total providers"), "{err}");
        // ... unless the floor is lowered below the measurement.
        assert!(run(&args(&["--min-scaling", "1.0"])).is_ok());
        // A 1-shard grid that answered nothing makes the ratio vacuous.
        let dead = SHARD_DOC.replace("\"one_shard_qps\": 44.2", "\"one_shard_qps\": 0.0");
        std::fs::write(&current, dead).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("vacuous"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    const STREAM_DOC: &str = r#"{
  "schema": "fedaqp-bench-stream/v1",
  "dataset": "adult_synth",
  "queries": 24,
  "batches": 8,
  "stream_rows": 7500,
  "ingest_rows_per_sec": 52000.0,
  "epochs": 8,
  "refreshes": 4,
  "pre_qps": 310.0,
  "live_qps": 285.5,
  "live_p50_ms": 3.1,
  "live_p95_ms": 4.8,
  "online_rounds": 4,
  "online_rounds_ok": 1,
  "first_snapshot_ms": 2.4,
  "online_total_ms": 10.6,
  "first_snapshot_fraction": 0.2264
}"#;

    #[test]
    fn stream_gate_passes_and_fails() {
        let dir = std::env::temp_dir().join("fedaqp_stream_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let current = dir.join("current.json");
        let baseline = dir.join("baseline.json");
        std::fs::write(&current, STREAM_DOC).unwrap();
        std::fs::write(&baseline, STREAM_DOC).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [
                "--stream",
                current.to_str().unwrap(),
                baseline.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .chain(extra.iter().map(|s| s.to_string()))
            .collect()
        };
        // Identical current/baseline passes.
        assert!(run(&args(&[])).is_ok());
        // A baseline 10x above the current ingest rate fails the band.
        let fast = STREAM_DOC.replace(
            "\"ingest_rows_per_sec\": 52000.0",
            "\"ingest_rows_per_sec\": 520000.0",
        );
        std::fs::write(&baseline, fast).unwrap();
        assert!(run(&args(&[])).unwrap_err().contains("ingested rows/sec"));
        assert!(run(&args(&["--max-regression", "0.95"])).is_ok());
        // A live-qps regression fails too.
        let fast = STREAM_DOC.replace("\"live_qps\": 285.5", "\"live_qps\": 2855.0");
        std::fs::write(&baseline, fast).unwrap();
        assert!(run(&args(&[]))
            .unwrap_err()
            .contains("post-ingest queries/sec"));
        std::fs::write(&baseline, STREAM_DOC).unwrap();
        // A run that never refreshed metadata is vacuous: fail loudly.
        let frozen = STREAM_DOC.replace("\"refreshes\": 4", "\"refreshes\": 0");
        std::fs::write(&current, frozen).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("vacuous"), "{err}");
        // A truncated online stream fails regardless of throughput.
        let truncated = STREAM_DOC.replace("\"online_rounds_ok\": 1", "\"online_rounds_ok\": 0");
        std::fs::write(&current, truncated).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        // A late first snapshot fails...
        let late = STREAM_DOC.replace(
            "\"first_snapshot_fraction\": 0.2264",
            "\"first_snapshot_fraction\": 0.9100",
        );
        std::fs::write(&current, late).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("no longer lands early"), "{err}");
        // ... unless the ceiling is raised above the measurement.
        assert!(run(&args(&["--max-first-fraction", "0.95"])).is_ok());
        // A summary predating the stream keys is a hard error.
        std::fs::write(&current, STREAM_DOC.replace("\"refreshes\": 4,\n", "")).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("refreshes"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A synthetic attack summary: every attacked metric hugs chance, the
    /// no-DP ceiling shows real signal, and every ledger held.
    fn attack_doc() -> String {
        let mut keys = Vec::new();
        for (v, variant) in ["single", "coalition"].iter().enumerate() {
            for (i, &xi) in XIS.iter().enumerate() {
                let acc = 0.5 + 0.01 * (i as f64 - v as f64);
                let auc = 0.5 - 0.008 * (i as f64 + v as f64);
                keys.push(format!(
                    "  \"{}\": {acc:.6}",
                    metric_key(variant, xi, "accuracy")
                ));
                keys.push(format!(
                    "  \"{}\": {auc:.6}",
                    metric_key(variant, xi, "auc")
                ));
            }
        }
        format!(
            "{{\n  \"schema\": \"fedaqp-bench-attack/v1\",\n  \"chance\": 0.5,\n  \
             \"cells\": 9000,\n  \"coalition_members\": 4,\n  \"ceiling_accuracy\": 0.831000,\n  \
             \"ceiling_auc\": 0.902000,\n  \"ledgers_ok\": 1,\n{}\n}}\n",
            keys.join(",\n")
        )
    }

    #[test]
    fn attack_gate_passes_and_fails() {
        let dir = std::env::temp_dir().join("fedaqp_attack_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let current = dir.join("current.json");
        let baseline = dir.join("baseline.json");
        let doc = attack_doc();
        std::fs::write(&current, &doc).unwrap();
        std::fs::write(&baseline, &doc).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [
                "--attack",
                current.to_str().unwrap(),
                baseline.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .chain(extra.iter().map(|s| s.to_string()))
            .collect()
        };
        // Identical current/baseline at chance passes.
        assert!(run(&args(&[])).is_ok());
        // An attacked accuracy escaping the chance band fails.
        let key = metric_key("coalition", XIS[2], "accuracy");
        let leaky = doc.replace(&format!("\"{key}\": 0.51"), &format!("\"{key}\": 0.70"));
        assert_ne!(leaky, doc, "test fixture must hit the coalition key");
        std::fs::write(&current, &leaky).unwrap();
        let err = run(&args(&["--attack-drift", "10.0"])).unwrap_err();
        assert!(err.contains("leaked a learnable signal"), "{err}");
        // ... unless the band is widened past the excursion.
        assert!(run(&args(&["--attack-drift", "10.0", "--attack-band", "0.30"])).is_ok());
        // Within-band but off-baseline movement fails the drift check.
        let drifted = doc.replace(&format!("\"{key}\": 0.51"), &format!("\"{key}\": 0.44"));
        std::fs::write(&current, &drifted).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("drifted"), "{err}");
        assert!(run(&args(&["--attack-drift", "0.20"])).is_ok());
        // A collapsed no-DP ceiling makes the gate vacuous: fail loudly.
        let blind = doc.replace(
            "\"ceiling_accuracy\": 0.831000",
            "\"ceiling_accuracy\": 0.503000",
        );
        std::fs::write(&current, &blind).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("proves nothing"), "{err}");
        assert!(run(&args(&["--min-ceiling", "0.50"])).is_ok());
        // An overspent ledger fails regardless of the metrics.
        let overspent = doc.replace("\"ledgers_ok\": 1", "\"ledgers_ok\": 0");
        std::fs::write(&current, &overspent).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("ledger"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A synthetic accuracy summary: calibrated RMS falls with the rate
    /// and beats the PPS divisor everywhere.
    fn accuracy_doc() -> String {
        let mut keys = Vec::new();
        for (i, &rate) in RATES.iter().enumerate() {
            let em = 0.30 - 0.04 * i as f64;
            let pps = em + 0.02 * i as f64 + 0.001;
            keys.push(format!("  \"{}\": {em:.6}", rate_key("em", rate)));
            keys.push(format!("  \"{}\": {pps:.6}", rate_key("pps", rate)));
        }
        format!(
            "{{\n  \"schema\": \"fedaqp-bench-accuracy/v1\",\n  \"trials\": 40,\n{}\n}}\n",
            keys.join(",\n")
        )
    }

    #[test]
    fn accuracy_gate_passes_and_fails() {
        let dir = std::env::temp_dir().join("fedaqp_accuracy_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let current = dir.join("current.json");
        let baseline = dir.join("baseline.json");
        let doc = accuracy_doc();
        std::fs::write(&current, &doc).unwrap();
        std::fs::write(&baseline, &doc).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [
                "--accuracy",
                current.to_str().unwrap(),
                baseline.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .chain(extra.iter().map(|s| s.to_string()))
            .collect()
        };
        // Identical current/baseline passes.
        assert!(run(&args(&[])).is_ok());
        // A baseline far below the current top-rate RMS fails the band.
        let top = rate_key("em", RATES[RATES.len() - 1]);
        let tightened = doc.replace(&format!("\"{top}\": 0.14"), &format!("\"{top}\": 0.05"));
        assert_ne!(tightened, doc, "test fixture must hit the top-rate key");
        std::fs::write(&baseline, &tightened).unwrap();
        assert!(run(&args(&[])).unwrap_err().contains("regressed"));
        // ... unless the band is loosened.
        assert!(run(&args(&["--max-regression", "2.0"])).is_ok());
        std::fs::write(&baseline, &doc).unwrap();
        // Error no longer falling with rate fails.
        let rising = doc.replace(&format!("\"{top}\": 0.14"), &format!("\"{top}\": 0.50"));
        std::fs::write(&current, &rising).unwrap();
        let err = run(&args(&["--max-regression", "10.0"])).unwrap_err();
        assert!(err.contains("falls with the sampling rate"), "{err}");
        // Calibrated losing to PPS at one rate fails.
        let losing = doc.replace(
            &format!("\"{}\": 0.26", rate_key("em", RATES[1])),
            &format!("\"{}\": 0.40", rate_key("em", RATES[1])),
        );
        assert_ne!(losing, doc);
        std::fs::write(&current, &losing).unwrap();
        let err = run(&args(&[])).unwrap_err();
        assert!(err.contains("the tie slack"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
