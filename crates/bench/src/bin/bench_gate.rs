//! `bench_gate` — the CI perf-regression gate over `BENCH_engine.json`.
//!
//! ```text
//! bench_gate <current.json> <baseline.json> [--max-regression 0.25]
//!            [--min-speedup 2.0]
//! ```
//!
//! Fails (exit 1) when either
//! * the concurrent engine's queries/sec dropped more than
//!   `--max-regression` (default 25%) below the committed baseline, or
//! * the engine no longer beats the serial runtime by at least
//!   `--min-speedup` (default 2×) at the headline grid point.
//!
//! The comparison deliberately leans on the *speed-up ratio* (machine
//! independent) and treats absolute qps with a generous regression band,
//! since CI runners vary in raw speed.

use std::process::ExitCode;

/// Extracts the number following `"key":` from a flat JSON document. Only
/// headline keys are parsed, and they are chosen to be unique substrings,
/// so a full JSON parser is not needed (and the build stays offline).
fn json_number(text: &str, key: &str) -> Result<f64, String> {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("key `{key}` not found"))?;
    let rest = text[at + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|e| format!("key `{key}`: {e}"))
}

fn load(path: &str) -> Result<(f64, f64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Ok((
        json_number(&text, "engine_qps")?,
        json_number(&text, "speedup")?,
    ))
}

fn run(args: &[String]) -> Result<String, String> {
    let mut positional = Vec::new();
    let mut max_regression = 0.25_f64;
    let mut min_speedup = 2.0_f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regression" => {
                i += 1;
                max_regression = args
                    .get(i)
                    .ok_or("--max-regression needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-regression: {e}"))?;
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = args
                    .get(i)
                    .ok_or("--min-speedup needs a value")?
                    .parse()
                    .map_err(|e| format!("--min-speedup: {e}"))?;
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let [current_path, baseline_path] = positional.as_slice() else {
        return Err("usage: bench_gate <current.json> <baseline.json> \
                    [--max-regression R] [--min-speedup S]"
            .into());
    };
    let (current_qps, current_speedup) = load(current_path)?;
    let (baseline_qps, baseline_speedup) = load(baseline_path)?;
    let qps_floor = (1.0 - max_regression) * baseline_qps;
    let mut report = format!(
        "bench gate: engine_qps {current_qps:.1} (baseline {baseline_qps:.1}, floor {qps_floor:.1}), \
         speedup {current_speedup:.2}x (baseline {baseline_speedup:.2}x, floor {min_speedup:.2}x)\n"
    );
    let mut failed = false;
    if current_qps < qps_floor {
        failed = true;
        report.push_str(&format!(
            "FAIL: queries/sec regressed more than {:.0}% below the baseline\n",
            100.0 * max_regression
        ));
    }
    if current_speedup < min_speedup {
        failed = true;
        report.push_str(&format!(
            "FAIL: concurrent engine no longer ≥{min_speedup:.1}x the serial runtime\n"
        ));
    }
    if failed {
        Err(report)
    } else {
        report.push_str("PASS\n");
        Ok(report)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprint!("{report}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "schema": "fedaqp-bench-engine/v1",
  "queries": 24,
  "serial_qps": 100.5,
  "engine_qps": 402.25,
  "speedup": 4.002,
  "grid": [
    {"providers": 4, "mode": "engine", "analysts": 8, "qps": 402.25, "p50_ms": 1.2, "p95_ms": 3.4}
  ]
}"#;

    #[test]
    fn extracts_headline_numbers() {
        assert_eq!(json_number(DOC, "engine_qps").unwrap(), 402.25);
        assert_eq!(json_number(DOC, "speedup").unwrap(), 4.002);
        assert_eq!(json_number(DOC, "queries").unwrap(), 24.0);
        assert!(json_number(DOC, "missing").is_err());
    }

    #[test]
    fn gate_passes_and_fails() {
        let dir = std::env::temp_dir().join("fedaqp_bench_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let current = dir.join("current.json");
        let baseline = dir.join("baseline.json");
        std::fs::write(&current, DOC).unwrap();
        std::fs::write(&baseline, DOC).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [current.to_str().unwrap(), baseline.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .chain(extra.iter().map(|s| s.to_string()))
                .collect()
        };
        // Identical current/baseline passes.
        assert!(run(&args(&[])).is_ok());
        // A baseline 10x above the current qps fails the regression band.
        let fast = DOC.replace("\"engine_qps\": 402.25", "\"engine_qps\": 4022.5");
        std::fs::write(&baseline, fast).unwrap();
        assert!(run(&args(&[])).unwrap_err().contains("regressed"));
        // ... unless the band is loosened to 95%.
        assert!(run(&args(&["--max-regression", "0.95"])).is_ok());
        // Speed-up floor above the current ratio fails.
        std::fs::write(&baseline, DOC).unwrap();
        let slow = DOC.replace("\"speedup\": 4.002", "\"speedup\": 1.5");
        std::fs::write(&current, slow).unwrap();
        assert!(run(&args(&[])).unwrap_err().contains("serial runtime"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_usage_is_reported() {
        assert!(run(&["one".into()]).unwrap_err().contains("usage"));
    }
}
