//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p fedaqp-bench --release --bin repro -- <experiment> [flags]
//!
//! experiments: all, fig1, fig4, fig5, fig6, fig7, fig8, table1,
//!              table1-dims, metadata, ablation, throughput, accuracy,
//!              plot
//! flags:
//!   --quick             smoke-test scale (small data, few queries)
//!   --out <dir>         CSV output directory        (default: results)
//!   --seed <n>          master seed                 (default: 42)
//!   --queries <m>       queries per workload        (default: 100)
//!   --adult-rows <n>    Adult generator rows        (default: 300000)
//!   --amazon-rows <n>   Amazon generator rows       (default: 800000)
//!   --trace-json <path> after the run, dump the telemetry span ring
//!                       (engine/optimizer/shard/server spans recorded
//!                       while the experiments executed) as JSON
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fedaqp_bench::experiments::registry;
use fedaqp_bench::setup::ExperimentContext;

fn usage() -> String {
    let mut s = String::from(
        "usage: repro <experiment> [--quick] [--out DIR] [--seed N] [--queries M]\n\
         \x20            [--adult-rows N] [--amazon-rows N] [--trace-json PATH]\n\nexperiments:\n  all\n",
    );
    for (name, desc, _) in registry() {
        s.push_str(&format!("  {name:<12} {desc}\n"));
    }
    s
}

fn parse_args(args: &[String]) -> Result<(String, ExperimentContext, Option<PathBuf>), String> {
    if args.is_empty() {
        return Err(usage());
    }
    let target = args[0].clone();
    let mut ctx = ExperimentContext::standard();
    let mut i = 1;
    let mut explicit: Vec<(&str, u64)> = Vec::new();
    let mut quick = false;
    let mut trace_json: Option<PathBuf> = None;
    while i < args.len() {
        let flag = args[i].as_str();
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--quick" => quick = true,
            "--out" => ctx.out_dir = PathBuf::from(take_value(&mut i)?),
            "--trace-json" => trace_json = Some(PathBuf::from(take_value(&mut i)?)),
            "--seed" => {
                let v = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                ctx.seed = v;
            }
            "--queries" => {
                let v: u64 = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?;
                explicit.push(("queries", v));
            }
            "--adult-rows" => {
                let v: u64 = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--adult-rows: {e}"))?;
                explicit.push(("adult", v));
            }
            "--amazon-rows" => {
                let v: u64 = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--amazon-rows: {e}"))?;
                explicit.push(("amazon", v));
            }
            other => return Err(format!("unknown flag `{other}`\n\n{}", usage())),
        }
        i += 1;
    }
    if quick {
        let (seed, out) = (ctx.seed, ctx.out_dir.clone());
        ctx = ExperimentContext::quick();
        ctx.seed = seed;
        ctx.out_dir = out;
    }
    for (k, v) in explicit {
        match k {
            "queries" => ctx.queries = v as usize,
            "adult" => ctx.adult_rows = v,
            "amazon" => ctx.amazon_rows = v,
            _ => unreachable!(),
        }
    }
    Ok((target, ctx, trace_json))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (target, ctx, trace_json) = match parse_args(&args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let reg = registry();
    let selected: Vec<_> = if target == "all" {
        reg
    } else {
        let found: Vec<_> = reg.into_iter().filter(|(n, _, _)| *n == target).collect();
        if found.is_empty() {
            eprintln!("unknown experiment `{target}`\n\n{}", usage());
            return ExitCode::FAILURE;
        }
        found
    };
    for (name, desc, f) in selected {
        eprintln!("== {name}: {desc} ==");
        let started = std::time::Instant::now();
        let tables = f(&ctx);
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            let stem = if tables.len() == 1 {
                name.to_string()
            } else {
                format!("{name}_{i}")
            };
            match t.save_csv(&ctx.out_dir, &stem) {
                Ok(path) => eprintln!("[{name}] wrote {}", path.display()),
                Err(e) => eprintln!("[{name}] csv write failed: {e}"),
            }
        }
        eprintln!(
            "== {name} done in {:.1}s ==\n",
            started.elapsed().as_secs_f64()
        );
    }
    // The experiments above exercised real engines/optimizers/servers in
    // this process, so the global span ring now holds their most recent
    // traces — phase names, durations, and public counts only (the same
    // privacy boundary as every other obs surface).
    if let Some(path) = trace_json {
        match std::fs::write(&path, fedaqp_obs::spans_json()) {
            Ok(()) => eprintln!("[repro] wrote trace spans to {}", path.display()),
            Err(e) => {
                eprintln!("[repro] trace-json write failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
