//! Stale-docs sweep: the wire-version lists, the CI-gated experiment
//! set, the committed baselines, and the JSON keys the gate reads are
//! all *named* in README/docs/ci.yml prose — and prose drifts silently.
//! These tests turn that drift into a CI failure that names the stale
//! file and the expected text.

use std::fs;
use std::path::{Path, PathBuf};

use fedaqp_bench::experiments::registry;
use fedaqp_net::wire;
use fedaqp_obs::{METRIC_NAMES, METRIC_PREFIXES};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(rel: &str) -> String {
    fs::read_to_string(repo_root().join(rel)).unwrap_or_else(|e| panic!("reading {rel}: {e}"))
}

/// Names of the committed gate baselines at the repo root.
fn committed_baselines() -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(repo_root())
        .expect("read repo root")
        .filter_map(|entry| entry.ok()?.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with("baseline.json"))
        .collect();
    names.sort();
    names
}

/// The README's frame diagram and version prose, and the architecture
/// layer map, enumerate wire versions; bumping `wire::VERSION` without
/// updating them fails here.
#[test]
fn wire_version_lists_track_the_codec() {
    let list = (wire::MIN_VERSION..=wire::VERSION)
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("|");
    let frame_line = format!("version u16 ({list})");

    let readme = read("README.md");
    assert!(
        readme.contains("version u16 ("),
        "README.md lost its wire-format diagram (searched for `version u16 (`)"
    );
    for line in readme.lines().filter(|l| l.contains("version u16 (")) {
        assert!(
            line.contains(&frame_line),
            "README.md wire-format diagram is stale — expected `{frame_line}` in: {line}"
        );
    }
    assert!(
        readme.contains(&format!("v{} adds", wire::VERSION)),
        "README.md never narrates what wire v{} added",
        wire::VERSION
    );

    let arch = read("docs/architecture.md");
    let span = format!("(v{}–v{})", wire::MIN_VERSION, wire::VERSION);
    assert!(
        arch.contains(&span),
        "docs/architecture.md layer map should say `wire protocol {span}`"
    );
}

/// Every experiment the registry marks `(CI gate)` must actually be run
/// by the bench job and documented in the gate-by-gate page.
#[test]
fn ci_gated_experiments_are_run_and_documented() {
    let gated: Vec<&str> = registry()
        .iter()
        .filter(|(_, desc, _)| desc.contains("(CI gate)"))
        .map(|(name, _, _)| *name)
        .collect();
    assert!(
        gated.len() >= 5,
        "expected at least 5 CI-gated experiments, found {gated:?}"
    );

    let ci = read(".github/workflows/ci.yml");
    let benchmarks = read("docs/benchmarks.md");
    for name in &gated {
        assert!(
            ci.contains(&format!("\n          {name} ")),
            ".github/workflows/ci.yml bench job never runs `repro -- {name}`"
        );
        assert!(
            benchmarks.contains(&format!("repro {name}"))
                || benchmarks.contains(&format!("{name} --")),
            "docs/benchmarks.md never documents the `{name}` experiment"
        );
    }
}

/// The gate-by-gate page opens by counting the gated experiments; the
/// count must track the registry.
#[test]
fn benchmarks_doc_counts_the_gated_experiments() {
    let gated = registry()
        .iter()
        .filter(|(_, desc, _)| desc.contains("(CI gate)"))
        .count();
    let words = [
        "zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine",
    ];
    let word = words
        .get(gated)
        .unwrap_or_else(|| panic!("spell out {gated} in docs_sync.rs"));
    let expected = format!("reruns {word} seeded experiments");
    assert!(
        read("docs/benchmarks.md").contains(&expected),
        "docs/benchmarks.md intro should say `{expected}` ({gated} registry entries are marked `(CI gate)`)"
    );
}

/// Committed baselines, CI gate invocations, and the benchmarks page
/// must agree file-for-file, in both directions.
#[test]
fn committed_baselines_are_gated_and_documented() {
    let baselines = committed_baselines();
    assert!(
        baselines.len() >= 5,
        "expected at least 5 committed BENCH_*baseline.json files, found {baselines:?}"
    );

    let ci = read(".github/workflows/ci.yml");
    let benchmarks = read("docs/benchmarks.md");
    for name in &baselines {
        assert!(
            ci.contains(name.as_str()),
            ".github/workflows/ci.yml never gates against the committed {name}"
        );
        assert!(
            benchmarks.contains(name.as_str()),
            "docs/benchmarks.md never mentions the committed {name}"
        );
    }
    // The reverse: a baseline the workflow names must exist on disk
    // (deleting or renaming one without touching ci.yml fails here).
    // Generated `results/BENCH_*.json` mentions are out of scope.
    for token in ci
        .split_whitespace()
        .filter(|t| t.starts_with("BENCH_") && t.ends_with("baseline.json"))
    {
        assert!(
            repo_root().join(token).is_file(),
            ".github/workflows/ci.yml references {token}, which is not committed at the repo root"
        );
    }
}

/// The metric catalog in docs/observability.md must name every static
/// metric and every dynamic family the obs crate exports — a new
/// counter cannot ship undocumented, and the doc cannot advertise a
/// metric that no longer exists (names live in one `names` module, so
/// a rename breaks the doc's copy here).
#[test]
fn observability_doc_catalogs_every_metric() {
    let doc = read("docs/observability.md");
    for name in METRIC_NAMES {
        assert!(
            doc.contains(&format!("`{name}`")),
            "docs/observability.md never catalogs the `{name}` metric"
        );
    }
    for prefix in METRIC_PREFIXES {
        assert!(
            doc.contains(&format!("`{prefix}`")),
            "docs/observability.md never catalogs the `{prefix}` dynamic family"
        );
    }
    // The README points at the catalog rather than duplicating it.
    assert!(
        read("README.md").contains("docs/observability.md"),
        "README.md never links docs/observability.md"
    );
}

/// Every JSON key `bench_gate` reads as a string literal must exist in
/// some committed baseline: the experiments' emitted schema and the
/// gate cannot drift apart without a failure naming the key.
#[test]
fn gate_keys_exist_in_committed_baselines() {
    let source = include_str!("../src/bin/bench_gate.rs");
    let source = source
        .split("#[cfg(test)]")
        .next()
        .expect("bench_gate source");

    let mut keys: Vec<String> = Vec::new();
    let mut rest = source;
    while let Some(pos) = rest.find("json_number(") {
        rest = &rest[pos + "json_number(".len()..];
        let Some(quote) = rest.find('"') else { break };
        // A literal key looks like `json_number(&doc, "engine_qps")`:
        // one comma and no parens/close before the quote. Dynamically
        // built keys (`&rate_key(...)`, `&key`) are skipped — their
        // construction is covered by bench_gate's own tests.
        let before = &rest[..quote];
        if before.matches(',').count() == 1 && !before.contains('(') && !before.contains(')') {
            let lit = &rest[quote + 1..];
            if let Some(close) = lit.find('"') {
                keys.push(lit[..close].to_string());
            }
        }
    }
    keys.sort();
    keys.dedup();
    assert!(
        keys.len() >= 8,
        "literal-key extraction from bench_gate.rs broke: {keys:?}"
    );

    let all: String = committed_baselines()
        .iter()
        .map(|name| read(name))
        .collect();
    for key in &keys {
        assert!(
            all.contains(&format!("\"{key}\"")),
            "bench_gate reads `{key}`, but no committed BENCH_*baseline.json contains that key"
        );
    }
}
