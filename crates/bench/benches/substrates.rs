//! Criterion micro-benchmarks for the DP, SMC, and sampling substrates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedaqp_dp::{ExponentialMechanism, LaplaceMechanism, SmoothSensitivity};
use fedaqp_sampling::em::{delta_p, em_sample};
use fedaqp_sampling::hansen_hurwitz::{hh_estimate, HansenHurwitz};
use fedaqp_sampling::pps_probabilities;
use fedaqp_smc::{encode_fixed, reconstruct, share_value, CostModel, Fp, SmcRuntime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_laplace(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let m = LaplaceMechanism::new(1.0, 0.8).expect("mechanism");
    c.bench_function("dp/laplace_release", |b| {
        b.iter(|| black_box(m.release(&mut rng, black_box(1234.5))))
    });
}

fn bench_exponential(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("dp/exponential_select");
    for n in [16usize, 256, 4096] {
        let scores: Vec<f64> = (0..n).map(|i| (i % 97) as f64 / 97.0).collect();
        let m = ExponentialMechanism::new(&scores, 1.0 / 110.0, 0.1).expect("mechanism");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(m.select(&mut rng)))
        });
    }
    group.finish();
}

fn bench_smooth_sensitivity(c: &mut Criterion) {
    let s = SmoothSensitivity::new(0.8, 1e-3).expect("smooth");
    c.bench_function("dp/smooth_bound_linear", |b| {
        b.iter(|| black_box(s.smooth_bound_linear(black_box(37.5))))
    });
    c.bench_function("dp/smooth_bound_scan", |b| {
        b.iter(|| black_box(s.smooth_bound(|k| k as f64 * 37.5)))
    });
}

fn bench_field(c: &mut Criterion) {
    let a = Fp::new(0x1234_5678_9ABC);
    let x = Fp::new(0xFEDC_BA98_7654);
    c.bench_function("smc/field_mul", |b| {
        b.iter(|| black_box(black_box(a) * black_box(x)))
    });
    c.bench_function("smc/field_inverse", |b| b.iter(|| black_box(a.inverse())));
}

fn bench_sharing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let secret = encode_fixed(123_456.789).expect("encode");
    c.bench_function("smc/share_4_parties", |b| {
        b.iter(|| black_box(share_value(&mut rng, secret, 4).expect("share")))
    });
    let shares = share_value(&mut rng, secret, 4).expect("share");
    c.bench_function("smc/reconstruct_4_parties", |b| {
        b.iter(|| black_box(reconstruct(black_box(&shares))))
    });
}

fn bench_secure_aggregates(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let values = [10.5, -3.25, 88.0, 41.75];
    c.bench_function("smc/secure_sum_4", |b| {
        b.iter(|| {
            let mut rt = SmcRuntime::new(4, CostModel::zero()).expect("runtime");
            black_box(rt.secure_sum(&mut rng, &values).expect("sum"))
        })
    });
    c.bench_function("smc/secure_max_4", |b| {
        b.iter(|| {
            let mut rt = SmcRuntime::new(4, CostModel::zero()).expect("runtime");
            black_box(rt.secure_max(&mut rng, &values).expect("max"))
        })
    });
}

fn bench_pps_and_em(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("sampling");
    for n in [64usize, 1024] {
        let props: Vec<f64> = (0..n).map(|i| ((i * 31) % 101) as f64 / 101.0).collect();
        group.bench_with_input(BenchmarkId::new("pps_probabilities", n), &n, |b, _| {
            b.iter(|| black_box(pps_probabilities(&props).expect("pps")))
        });
        group.bench_with_input(BenchmarkId::new("em_sample_s16", n), &n, |b, _| {
            b.iter(|| black_box(em_sample(&mut rng, &props, 16, 0.1, delta_p(10)).expect("sample")))
        });
    }
    group.finish();
}

fn bench_hansen_hurwitz(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let draws: Vec<HansenHurwitz> = (0..64)
        .map(|_| HansenHurwitz {
            value: rng.gen_range(0.0..1e6),
            probability: rng.gen_range(1e-3..1.0),
        })
        .collect();
    c.bench_function("sampling/hh_estimate_64", |b| {
        b.iter(|| black_box(hh_estimate(black_box(&draws)).expect("estimate")))
    });
}

criterion_group!(
    benches,
    bench_laplace,
    bench_exponential,
    bench_smooth_sensitivity,
    bench_field,
    bench_sharing,
    bench_secure_aggregates,
    bench_pps_and_em,
    bench_hansen_hurwitz,
);
criterion_main!(benches);
