//! Criterion micro-benchmarks for the cluster store and Algorithm 1
//! metadata: the scan-vs-metadata asymmetry is what makes the whole AQP
//! speed-up possible.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedaqp_model::{Aggregate, Dimension, Domain, Range, RangeQuery, Row, Schema};
use fedaqp_storage::codec::{decode_provider_meta, encode_provider_meta};
use fedaqp_storage::{ClusterStore, PartitionStrategy, ProviderMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::new(vec![
        Dimension::new("a", Domain::new(0, 999).expect("domain")),
        Dimension::new("b", Domain::new(0, 99).expect("domain")),
        Dimension::new("c", Domain::new(0, 49).expect("domain")),
    ])
    .expect("schema")
}

fn store(n_rows: usize, capacity: usize) -> ClusterStore {
    let mut rng = StdRng::seed_from_u64(7);
    let rows: Vec<Row> = (0..n_rows)
        .map(|_| {
            Row::cell(
                vec![
                    rng.gen_range(0..1000i64),
                    rng.gen_range(0..100i64),
                    rng.gen_range(0..50i64),
                ],
                1 + rng.gen_range(0..4u64),
            )
        })
        .collect();
    ClusterStore::build(schema(), rows, capacity, PartitionStrategy::SortedBy(0)).expect("store")
}

fn demo_query() -> RangeQuery {
    RangeQuery::new(
        Aggregate::Sum,
        vec![
            Range::new(0, 200, 700).expect("range"),
            Range::new(1, 10, 60).expect("range"),
        ],
    )
    .expect("query")
}

fn bench_metadata_build(c: &mut Criterion) {
    let s = store(50_000, 500);
    c.bench_function("storage/meta_build_100_clusters", |b| {
        b.iter(|| black_box(ProviderMeta::build(&s, 500)))
    });
}

fn bench_covering_and_proportions(c: &mut Criterion) {
    let s = store(50_000, 500);
    let meta = ProviderMeta::build(&s, 500);
    let q = demo_query();
    c.bench_function("storage/covering", |b| {
        b.iter(|| black_box(meta.covering(&q)))
    });
    let covering = meta.covering(&q);
    c.bench_function("storage/proportions", |b| {
        b.iter(|| black_box(meta.proportions(&q, &covering)))
    });
}

fn bench_scan_vs_meta(c: &mut Criterion) {
    // The asymmetry at the heart of §5.2: computing exact R scans the
    // cluster; metadata answers the same question with binary searches.
    let s = store(50_000, 500);
    let meta = ProviderMeta::build(&s, 500);
    let q = demo_query();
    let cluster = &s.clusters()[s.n_clusters() / 2];
    let cluster_meta = &meta.clusters()[s.n_clusters() / 2];
    let mut group = c.benchmark_group("storage/r_per_cluster");
    group.bench_function("exact_scan", |b| {
        b.iter(|| black_box(cluster.matching_rows(q.ranges())))
    });
    group.bench_function("metadata_lookup", |b| {
        b.iter(|| black_box(cluster_meta.r_query(&q, 500)))
    });
    group.finish();
}

fn bench_full_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/full_scan");
    for rows in [10_000usize, 50_000] {
        let s = store(rows, 500);
        let q = demo_query();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(s.evaluate_full(&q)))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let s = store(50_000, 500);
    let meta = ProviderMeta::build(&s, 500);
    c.bench_function("storage/codec_encode", |b| {
        b.iter(|| black_box(encode_provider_meta(&meta)))
    });
    let blob = encode_provider_meta(&meta);
    c.bench_function("storage/codec_decode", |b| {
        b.iter(|| black_box(decode_provider_meta(&blob).expect("decode")))
    });
}

criterion_group!(
    benches,
    bench_metadata_build,
    bench_covering_and_proportions,
    bench_scan_vs_meta,
    bench_full_scan,
    bench_codec,
);
criterion_main!(benches);
