//! Criterion benchmarks for the federated protocol: allocation solving,
//! per-provider execution, and the end-to-end private query vs the plain
//! baseline (the microscopic version of the paper's speed-up metric).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fedaqp_core::{allocate_greedy, AllocationInput, Federation, FederationConfig};
use fedaqp_model::{Aggregate, Dimension, Domain, Range, RangeQuery, Row, Schema};
use fedaqp_smc::CostModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::new(vec![
        Dimension::new("x", Domain::new(0, 999).expect("domain")),
        Dimension::new("y", Domain::new(0, 99).expect("domain")),
    ])
    .expect("schema")
}

fn federation(rows_per_provider: usize) -> Federation {
    let mut rng = StdRng::seed_from_u64(11);
    let partitions: Vec<Vec<Row>> = (0..4)
        .map(|_| {
            (0..rows_per_provider)
                .map(|_| {
                    Row::cell(
                        vec![rng.gen_range(0..1000i64), rng.gen_range(0..100i64)],
                        1 + rng.gen_range(0..3u64),
                    )
                })
                .collect()
        })
        .collect();
    let mut cfg = FederationConfig::paper_default(rows_per_provider / 100);
    cfg.cost_model = CostModel::zero();
    Federation::build(cfg, schema(), partitions).expect("federation")
}

fn demo_query() -> RangeQuery {
    RangeQuery::new(
        Aggregate::Sum,
        vec![
            Range::new(0, 100, 800).expect("range"),
            Range::new(1, 5, 80).expect("range"),
        ],
    )
    .expect("query")
}

fn bench_allocation(c: &mut Criterion) {
    let inputs: Vec<AllocationInput> = (0..16)
        .map(|i| AllocationInput {
            noisy_n_q: 100.0 + i as f64,
            noisy_avg_r: (i as f64 * 0.37) % 1.0,
        })
        .collect();
    c.bench_function("protocol/allocate_greedy_16", |b| {
        b.iter(|| black_box(allocate_greedy(black_box(&inputs), 0.2).expect("alloc")))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut fed = federation(20_000);
    let q = demo_query();
    let mut group = c.benchmark_group("protocol/query");
    group.sample_size(20);
    group.bench_function("plain_full_scan", |b| {
        b.iter(|| black_box(fed.run_plain(&q).expect("plain")))
    });
    group.bench_function("private_sr10", |b| {
        b.iter(|| black_box(fed.run(&q, 0.10).expect("private")))
    });
    group.bench_function("private_sr20", |b| {
        b.iter(|| black_box(fed.run(&q, 0.20).expect("private")))
    });
    group.finish();
}

criterion_group!(benches, bench_allocation, bench_end_to_end);
criterion_main!(benches);
