//! The attacker's query plan (§6.6).
//!
//! To train the NBC the attacker issues point-range queries computing the
//! database size, the class counts `c(y)` for every `y ∈ |d_SA|`, and the
//! joint counts `c(y, v)` for every quasi-identifier dimension `d` and
//! value `v ∈ |d|`:
//!
//! ```text
//! nQueries = 1 + ‖d_SA‖ + ‖d_SA‖ · Σ_{d ∈ D_QI} ‖d‖
//! ```
//!
//! (`P(v|y)/P(v)` are then derived from these counts without further
//! queries.)

use fedaqp_model::{Aggregate, Range, RangeQuery, Schema, Value};

use crate::{AttackError, Result};

/// What one planned query measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedCount {
    /// Total database size `N`.
    Total,
    /// Class count `c(y)` for `SA = y`.
    Class {
        /// The sensitive value `y`.
        y: Value,
    },
    /// Joint count `c(y, v)` for `SA = y ∧ d_qi = v`.
    Joint {
        /// The sensitive value `y`.
        y: Value,
        /// Quasi-identifier dimension index.
        qi_dim: usize,
        /// Quasi-identifier value `v`.
        v: Value,
    },
}

/// The full ordered plan.
#[derive(Debug, Clone)]
pub struct AttackPlan {
    /// Sensitive-attribute dimension.
    pub sa_dim: usize,
    /// Quasi-identifier dimensions.
    pub qi_dims: Vec<usize>,
    /// `(what it measures, the query to issue)`, in issue order.
    pub queries: Vec<(PlannedCount, RangeQuery)>,
}

impl AttackPlan {
    /// `nQueries` of §6.6.
    pub fn n_queries(&self) -> u64 {
        self.queries.len() as u64
    }
}

/// Builds the plan for `schema`, sensitive dimension `sa_dim`, and
/// quasi-identifier dimensions `qi_dims`, with the given aggregate (the
/// paper evaluates both COUNT and SUM variants).
pub fn build_plan(
    schema: &Schema,
    sa_dim: usize,
    qi_dims: &[usize],
    aggregate: Aggregate,
) -> Result<AttackPlan> {
    if qi_dims.is_empty() {
        return Err(AttackError::NoQuasiIdentifiers);
    }
    if qi_dims.contains(&sa_dim) {
        return Err(AttackError::SaInQi(sa_dim));
    }
    let sa_domain = schema.domain(sa_dim)?;
    let mut queries = Vec::new();

    // 1. Database size: the SA range spans its whole domain, so every row
    //    matches (each row has *some* SA value).
    queries.push((
        PlannedCount::Total,
        RangeQuery::new(
            aggregate,
            vec![Range::new(sa_dim, sa_domain.min(), sa_domain.max())?],
        )?,
    ));

    // 2. Class counts: SELECT agg WHERE y <= SA <= y.
    for y in sa_domain.iter() {
        queries.push((
            PlannedCount::Class { y },
            RangeQuery::new(aggregate, vec![Range::new(sa_dim, y, y)?])?,
        ));
    }

    // 3. Joint counts: SELECT agg WHERE SA = y AND d = v.
    for &qi in qi_dims {
        let dom = schema.domain(qi)?;
        for y in sa_domain.iter() {
            for v in dom.iter() {
                queries.push((
                    PlannedCount::Joint { y, qi_dim: qi, v },
                    RangeQuery::new(
                        aggregate,
                        vec![Range::new(sa_dim, y, y)?, Range::new(qi, v, v)?],
                    )?,
                ));
            }
        }
    }
    Ok(AttackPlan {
        sa_dim,
        qi_dims: qi_dims.to_vec(),
        queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedaqp_model::{Dimension, Domain};

    fn schema() -> Schema {
        Schema::new(vec![
            Dimension::new("sa", Domain::new(0, 9).unwrap()), // ‖d_SA‖ = 10
            Dimension::new("q1", Domain::new(0, 4).unwrap()), // ‖q1‖ = 5
            Dimension::new("q2", Domain::new(0, 2).unwrap()), // ‖q2‖ = 3
        ])
        .unwrap()
    }

    #[test]
    fn n_queries_matches_formula() {
        let plan = build_plan(&schema(), 0, &[1, 2], Aggregate::Count).unwrap();
        // 1 + 10 + 10·(5 + 3) = 91.
        assert_eq!(plan.n_queries(), 91);
    }

    #[test]
    fn rejects_overlapping_dims_and_empty_qi() {
        assert!(matches!(
            build_plan(&schema(), 0, &[0, 1], Aggregate::Count),
            Err(AttackError::SaInQi(0))
        ));
        assert!(matches!(
            build_plan(&schema(), 0, &[], Aggregate::Count),
            Err(AttackError::NoQuasiIdentifiers)
        ));
    }

    #[test]
    fn plan_queries_are_point_ranges() {
        let plan = build_plan(&schema(), 0, &[1], Aggregate::Sum).unwrap();
        for (what, q) in &plan.queries {
            match what {
                PlannedCount::Total => {
                    assert_eq!(q.ranges().len(), 1);
                    assert_eq!(q.ranges()[0].width(), 10);
                }
                PlannedCount::Class { y } => {
                    assert_eq!(q.ranges().len(), 1);
                    assert_eq!(q.ranges()[0].lo, *y);
                    assert_eq!(q.ranges()[0].hi, *y);
                }
                PlannedCount::Joint { y, qi_dim, v } => {
                    assert_eq!(q.ranges().len(), 2);
                    let sa_range = q.ranges().iter().find(|r| r.dim == 0).unwrap();
                    let qi_range = q.ranges().iter().find(|r| r.dim == *qi_dim).unwrap();
                    assert_eq!((sa_range.lo, sa_range.hi), (*y, *y));
                    assert_eq!((qi_range.lo, qi_range.hi), (*v, *v));
                }
            }
            assert_eq!(q.aggregate(), Aggregate::Sum);
        }
    }

    #[test]
    fn plan_order_is_total_classes_joints() {
        let plan = build_plan(&schema(), 0, &[1, 2], Aggregate::Count).unwrap();
        assert!(matches!(plan.queries[0].0, PlannedCount::Total));
        assert!(matches!(plan.queries[1].0, PlannedCount::Class { .. }));
        assert!(matches!(plan.queries[11].0, PlannedCount::Joint { .. }));
    }
}
