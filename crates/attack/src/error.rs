//! Error type for the attack harness.

use std::fmt;

use fedaqp_core::CoreError;
use fedaqp_dp::DpError;
use fedaqp_model::ModelError;

/// Errors raised by the attack harness.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// Propagated data-model error.
    Model(ModelError),
    /// Propagated federation error.
    Core(CoreError),
    /// Propagated DP error (composition arithmetic).
    Dp(DpError),
    /// SA and QI dimensions must be distinct.
    SaInQi(usize),
    /// The attack needs at least one quasi-identifier dimension.
    NoQuasiIdentifiers,
    /// Answer count did not match the query plan.
    PlanMismatch {
        /// Queries planned.
        expected: usize,
        /// Answers supplied.
        got: usize,
    },
    /// Evaluation needs at least one row.
    NoEvaluationRows,
    /// The remote federation (wire client) failed. Carries the rendered
    /// [`fedaqp_net::NetError`] text: the net error itself owns a socket
    /// error and cannot be cloned or compared.
    Net(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Model(e) => write!(f, "model error: {e}"),
            AttackError::Core(e) => write!(f, "federation error: {e}"),
            AttackError::Dp(e) => write!(f, "dp error: {e}"),
            AttackError::SaInQi(d) => {
                write!(f, "dimension {d} used as both SA and quasi-identifier")
            }
            AttackError::NoQuasiIdentifiers => {
                write!(f, "attack needs at least one quasi-identifier dimension")
            }
            AttackError::PlanMismatch { expected, got } => {
                write!(f, "plan expects {expected} answers, got {got}")
            }
            AttackError::NoEvaluationRows => write!(f, "no rows to evaluate the attack on"),
            AttackError::Net(e) => write!(f, "remote federation error: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Model(e) => Some(e),
            AttackError::Core(e) => Some(e),
            AttackError::Dp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for AttackError {
    fn from(e: ModelError) -> Self {
        AttackError::Model(e)
    }
}

impl From<CoreError> for AttackError {
    fn from(e: CoreError) -> Self {
        AttackError::Core(e)
    }
}

impl From<DpError> for AttackError {
    fn from(e: DpError) -> Self {
        AttackError::Dp(e)
    }
}

impl From<fedaqp_net::NetError> for AttackError {
    fn from(e: fedaqp_net::NetError) -> Self {
        AttackError::Net(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(AttackError::SaInQi(3).to_string().contains('3'));
        assert!(AttackError::PlanMismatch {
            expected: 10,
            got: 9
        }
        .to_string()
        .contains("10"));
        let e: AttackError = ModelError::NoRanges.into();
        assert!(e.to_string().contains("model error"));
    }
}
