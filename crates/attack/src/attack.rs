//! End-to-end attack orchestration against a federation (§6.6, Table 1).

use fedaqp_core::Federation;
use fedaqp_dp::{advanced_per_query, sequential_per_query, PrivacyCost, QueryBudget};
use fedaqp_model::{Aggregate, Row};

use crate::nbc::NbcModel;
use crate::plan::build_plan;
use crate::Result;

/// How the attacker stretches the total budget `(ξ, ψ)` across the
/// training queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositionRegime {
    /// Sequential composition: `ε = ξ/n`, `δ = ψ/n` per query.
    Sequential,
    /// Advanced composition (§6.6): `ε = ξ/(2√(2n·ln(1/δ)))`, `δ = ψ/n` —
    /// more per-query budget, hence the stronger attack variant.
    Advanced,
    /// A coalition of `n` single-query attackers: each query enjoys the
    /// *full* `(ξ, ψ)` (parallel composition across attackers).
    Coalition,
}

/// Attack configuration.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Sensitive-attribute dimension index.
    pub sa_dim: usize,
    /// Quasi-identifier dimension indices.
    pub qi_dims: Vec<usize>,
    /// Total attacker budget ξ.
    pub xi: f64,
    /// Total attacker budget ψ.
    pub psi: f64,
    /// Budget-stretching regime.
    pub regime: CompositionRegime,
    /// COUNT or SUM training queries (Table 1 evaluates both).
    pub aggregate: Aggregate,
    /// Sampling rate the attacker requests from the AQP interface.
    pub sampling_rate: f64,
}

/// Result of an attack run.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// NBC prediction accuracy over the original rows (§6.6 metric).
    pub accuracy: f64,
    /// Number of training queries issued.
    pub n_queries: u64,
    /// The per-query budget each training query enjoyed.
    pub per_query: PrivacyCost,
    /// `‖d_SA‖` — the chance-level accuracy is `1/classes`.
    pub classes: u64,
}

/// Per-query `(ε, δ)` under the regime.
pub fn per_query_budget(
    regime: CompositionRegime,
    xi: f64,
    psi: f64,
    n_queries: u64,
) -> Result<PrivacyCost> {
    Ok(match regime {
        CompositionRegime::Sequential => sequential_per_query(xi, psi, n_queries)?,
        CompositionRegime::Advanced => advanced_per_query(xi, psi, n_queries)?,
        CompositionRegime::Coalition => PrivacyCost {
            eps: xi,
            delta: psi,
        },
    })
}

/// Runs the full attack: plan the queries, stretch the budget, issue every
/// query through the *private* federation interface, train the NBC, and
/// measure its accuracy against the true rows.
///
/// `truth` is the union of the providers' cells (the evaluation target the
/// attacker is trying to reconstruct; it is an experiment oracle, never
/// shown to the classifier).
pub fn run_attack(
    federation: &mut Federation,
    truth: &[Row],
    cfg: &AttackConfig,
) -> Result<AttackOutcome> {
    let schema = federation.schema().clone();
    let plan = build_plan(&schema, cfg.sa_dim, &cfg.qi_dims, cfg.aggregate)?;
    let n_queries = plan.n_queries();
    let per_query = per_query_budget(cfg.regime, cfg.xi, cfg.psi, n_queries)?;
    // δ = 0 would break the smooth-sensitivity release; the accountant's ψ
    // is always positive in the Table 1 setting (ψ = 10⁻⁶).
    let budget = QueryBudget::paper_split(per_query.eps, per_query.delta)?;

    let mut answers = Vec::with_capacity(plan.queries.len());
    for (_, query) in &plan.queries {
        let ans = federation.run_with_budget(query, cfg.sampling_rate, &budget)?;
        answers.push(ans.value);
    }
    let model = NbcModel::train(&schema, &plan, &answers)?;
    let accuracy = model.accuracy(truth)?;
    Ok(AttackOutcome {
        accuracy,
        n_queries,
        per_query,
        classes: model.n_classes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedaqp_core::{FederationConfig, SensitivityRegime};
    use fedaqp_model::{Dimension, Domain, Schema};
    use fedaqp_smc::CostModel;
    use fedaqp_storage::PartitionStrategy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A small federated world where SA (0..9) is strongly correlated with
    /// one QI dimension.
    fn federation(seed: u64) -> (Federation, Vec<Row>) {
        let schema = Schema::new(vec![
            Dimension::new("sa", Domain::new(0, 9).unwrap()),
            Dimension::new("qi1", Domain::new(0, 9).unwrap()),
            Dimension::new("qi2", Domain::new(0, 4).unwrap()),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for _ in 0..4000 {
            let qi1 = rng.gen_range(0..10i64);
            // SA equals qi1 with probability 0.9 — learnable correlation.
            let sa = if rng.gen::<f64>() < 0.9 {
                qi1
            } else {
                rng.gen_range(0..10i64)
            };
            rows.push(Row::raw(vec![sa, qi1, rng.gen_range(0..5i64)]));
        }
        let mut cfg = FederationConfig::paper_default(64);
        cfg.cost_model = CostModel::zero();
        cfg.n_min = 2;
        cfg.partition_strategy = PartitionStrategy::SortedLex;
        cfg.sensitivity_regime = SensitivityRegime::QueryDims;
        let n = cfg.n_providers;
        let partitions: Vec<Vec<Row>> = (0..n)
            .map(|p| {
                rows.iter()
                    .enumerate()
                    .filter(|(i, _)| i % n == p)
                    .map(|(_, r)| r.clone())
                    .collect()
            })
            .collect();
        let fed = Federation::build(cfg, schema, partitions).unwrap();
        (fed, rows)
    }

    fn attack_cfg(regime: CompositionRegime, xi: f64) -> AttackConfig {
        AttackConfig {
            sa_dim: 0,
            qi_dims: vec![1, 2],
            xi,
            psi: 1e-6,
            regime,
            aggregate: Aggregate::Count,
            sampling_rate: 0.2,
        }
    }

    #[test]
    fn per_query_budgets_ordered_as_expected() {
        // Coalition > Advanced > Sequential for large n.
        let n = 1000;
        let seq = per_query_budget(CompositionRegime::Sequential, 10.0, 1e-6, n).unwrap();
        let adv = per_query_budget(CompositionRegime::Advanced, 10.0, 1e-6, n).unwrap();
        let coal = per_query_budget(CompositionRegime::Coalition, 10.0, 1e-6, n).unwrap();
        assert!(seq.eps < adv.eps);
        assert!(adv.eps < coal.eps);
    }

    #[test]
    fn budget_limited_attack_is_near_chance() {
        let (mut fed, rows) = federation(1);
        // ξ = 1 over ~151 queries (10 classes, QI sizes 10 + 5) — per-query
        // ε ≈ 0.0066: answers are noise.
        let out = run_attack(
            &mut fed,
            &rows,
            &attack_cfg(CompositionRegime::Sequential, 1.0),
        )
        .unwrap();
        assert_eq!(out.classes, 10);
        assert_eq!(out.n_queries, 1 + 10 + 10 * (10 + 5));
        // Chance level is 10%; allow generous slack above it but nowhere
        // near the 90% the correlation would allow with clean data.
        assert!(
            out.accuracy < 0.35,
            "attack accuracy {} too high under tight budget",
            out.accuracy
        );
    }

    #[test]
    fn unbounded_budget_recovers_correlation() {
        // Sanity check of the attack harness itself: with an absurd budget
        // (ε per query in the thousands) the system's DP protection is
        // effectively off and the classifier must find the correlation.
        let (mut fed, rows) = federation(2);
        let out = run_attack(
            &mut fed,
            &rows,
            &attack_cfg(CompositionRegime::Coalition, 500_000.0),
        )
        .unwrap();
        assert!(
            out.accuracy > 0.5,
            "attack accuracy {} too low with unbounded budget",
            out.accuracy
        );
    }
}
