//! The §6.6 NBC adversary as a *remote analyst*: the same probe workload
//! as [`crate::run_attack`], but issued through wire v2 plan frames
//! against a live [`fedaqp_net::FederationServer`] — the surface the
//! system actually ships.
//!
//! Two drivers:
//!
//! * [`run_remote_attack`] — one analyst identity, one connection,
//!   stretching its `(ξ, ψ)` across the whole probe plan under a
//!   [`CompositionRegime`](crate::CompositionRegime).
//! * [`run_coalition_attack`] — `k` analyst identities on `k` parallel
//!   connections, each holding its *own* server-side ledger and issuing a
//!   round-robin slice of the plan, with the observations pooled into one
//!   classifier. Besides modelling the paper's coalition adversary, this
//!   hammers [`fedaqp_dp::BudgetDirectory`]'s atomic cross-connection
//!   accounting with a workload that actually tries to learn something.
//!
//! Both report what the server's ledger says was spent, so callers can
//! assert the adversary could not be over- *or* under-charged.

use fedaqp_dp::PrivacyCost;
use fedaqp_model::{QueryPlan, RangeQuery, Row, Schema};
use fedaqp_net::RemoteFederation;

use crate::attack::{per_query_budget, AttackConfig};
use crate::nbc::NbcModel;
use crate::plan::{build_plan, AttackPlan};
use crate::{AttackError, Result};

/// Outcome of an over-the-wire attack run.
#[derive(Debug, Clone)]
pub struct RemoteAttackOutcome {
    /// NBC prediction accuracy over the true rows (§6.6 metric).
    pub accuracy: f64,
    /// ROC AUC of the binary-SA margin (`None` unless `‖d_SA‖ = 2` and
    /// both classes appear in the evaluation rows).
    pub auc: Option<f64>,
    /// Number of training queries issued across all members.
    pub n_queries: u64,
    /// The per-query budget each training query enjoyed.
    pub per_query: PrivacyCost,
    /// `‖d_SA‖` — chance-level accuracy is `1/classes`.
    pub classes: u64,
    /// Per analyst identity, the server ledger's view after the run:
    /// `(identity, ε spent, δ spent)`.
    pub spent: Vec<(String, f64, f64)>,
}

/// One plan query as the wire carries it: a scalar plan frame under an
/// explicit per-query `(ε, δ)`.
fn scalar_plan(query: &RangeQuery, cfg: &AttackConfig, per_query: PrivacyCost) -> QueryPlan {
    QueryPlan::Scalar {
        query: query.clone(),
        sampling_rate: cfg.sampling_rate,
        epsilon: per_query.eps,
        delta: per_query.delta,
    }
}

/// Issues one scalar plan and extracts the released value.
fn probe(
    remote: &mut RemoteFederation,
    query: &RangeQuery,
    cfg: &AttackConfig,
    per_query: PrivacyCost,
) -> Result<f64> {
    let answer = remote.run_plan(&scalar_plan(query, cfg, per_query))?;
    answer
        .value()
        .ok_or_else(|| AttackError::Net("scalar plan released no value".into()))
}

/// Reads the server ledger's view of `analyst`'s spend.
fn ledger_entry(remote: &mut RemoteFederation, analyst: &str) -> Result<(String, f64, f64)> {
    let status = remote.budget_status()?;
    Ok((analyst.to_owned(), status.spent_eps, status.spent_delta))
}

/// Trains the classifier from the pooled answers and evaluates it.
fn evaluate(
    schema: &Schema,
    plan: &AttackPlan,
    answers: &[f64],
    per_query: PrivacyCost,
    truth: &[Row],
    spent: Vec<(String, f64, f64)>,
) -> Result<RemoteAttackOutcome> {
    let model = NbcModel::train(schema, plan, answers)?;
    Ok(RemoteAttackOutcome {
        accuracy: model.accuracy(truth)?,
        auc: model.binary_auc(truth)?,
        n_queries: plan.n_queries(),
        per_query,
        classes: model.n_classes(),
        spent,
    })
}

/// Runs the attack as a single remote analyst: connect as `analyst`,
/// build the probe plan from the *served* schema, stretch `(ξ, ψ)`
/// across it under `cfg.regime`, issue every probe as a wire plan frame,
/// and train/evaluate the classifier on the pooled answers.
///
/// `truth` is the experiment oracle (the union of provider cells); it
/// never reaches the classifier's training side.
pub fn run_remote_attack(
    addr: &str,
    analyst: &str,
    truth: &[Row],
    cfg: &AttackConfig,
) -> Result<RemoteAttackOutcome> {
    let mut remote = RemoteFederation::connect_as(addr, analyst)?;
    let schema = remote.schema().clone();
    let plan = build_plan(&schema, cfg.sa_dim, &cfg.qi_dims, cfg.aggregate)?;
    let per_query = per_query_budget(cfg.regime, cfg.xi, cfg.psi, plan.n_queries())?;
    let mut answers = Vec::with_capacity(plan.queries.len());
    for (_, query) in &plan.queries {
        answers.push(probe(&mut remote, query, cfg, per_query)?);
    }
    let spent = vec![ledger_entry(&mut remote, analyst)?];
    evaluate(&schema, &plan, &answers, per_query, truth, spent)
}

/// Runs the coalition attack: `k` analyst identities
/// (`{prefix}-0 … {prefix}-{k-1}`) on `k` parallel connections, each
/// spending its own `(ξ, ψ)` ledger over a round-robin slice of the probe
/// plan (stretched under `cfg.regime` across the slice), pooling every
/// observation into one classifier.
///
/// With `k` ledgers the coalition enjoys `k·ξ` total budget — the privacy
/// claim under test is that the *per-release* noise still keeps the
/// pooled classifier at chance.
pub fn run_coalition_attack(
    addr: &str,
    prefix: &str,
    k: usize,
    truth: &[Row],
    cfg: &AttackConfig,
) -> Result<RemoteAttackOutcome> {
    if k == 0 {
        return Err(AttackError::Net(
            "coalition needs at least one member".into(),
        ));
    }
    // One probe connection to learn the served schema; the members then
    // connect under their own identities.
    let schema = RemoteFederation::connect_as(addr, &format!("{prefix}-schema"))?
        .schema()
        .clone();
    let plan = build_plan(&schema, cfg.sa_dim, &cfg.qi_dims, cfg.aggregate)?;
    // Every member stretches its full (ξ, ψ) across its own slice; slices
    // differ in length by at most one, so the largest fixes the uniform
    // per-query budget (members with a short slice underspend slightly).
    let slice_len = plan.n_queries().div_ceil(k as u64);
    let per_query = per_query_budget(cfg.regime, cfg.xi, cfg.psi, slice_len)?;
    // One member's contribution: (plan index, answer) observations plus
    // the (identity, spent ε, spent δ) ledger entry it ends with.
    type MemberResult = Result<(Vec<(usize, f64)>, (String, f64, f64))>;
    let member_results: Vec<MemberResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|member| {
                let plan = &plan;
                scope.spawn(move || {
                    let analyst = format!("{prefix}-{member}");
                    let mut remote = RemoteFederation::connect_as(addr, &analyst)?;
                    let mut observed = Vec::new();
                    for (i, (_, query)) in plan.queries.iter().enumerate().skip(member).step_by(k) {
                        observed.push((i, probe(&mut remote, query, cfg, per_query)?));
                    }
                    let ledger = ledger_entry(&mut remote, &analyst)?;
                    Ok((observed, ledger))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("coalition member panicked"))
            .collect()
    });
    let mut answers = vec![f64::NAN; plan.queries.len()];
    let mut spent = Vec::with_capacity(k);
    for result in member_results {
        let (observed, ledger) = result?;
        for (i, value) in observed {
            answers[i] = value;
        }
        spent.push(ledger);
    }
    debug_assert!(answers.iter().all(|v| !v.is_nan()), "unprobed plan query");
    evaluate(&schema, &plan, &answers, per_query, truth, spent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::CompositionRegime;
    use fedaqp_core::{Federation, FederationConfig, FederationEngine, SensitivityRegime};
    use fedaqp_model::{Aggregate, Dimension, Domain, Schema};
    use fedaqp_net::{FederationServer, ServeOptions};
    use fedaqp_smc::CostModel;
    use fedaqp_storage::PartitionStrategy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A binary-SA world where SA tracks qi1's parity 85% of the time.
    fn world(seed: u64) -> (Federation, Vec<Row>) {
        let schema = Schema::new(vec![
            Dimension::new("sa", Domain::new(0, 1).unwrap()),
            Dimension::new("qi1", Domain::new(0, 7).unwrap()),
            Dimension::new("qi2", Domain::new(0, 3).unwrap()),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Row> = (0..3_000)
            .map(|_| {
                let qi1 = rng.gen_range(0..8i64);
                let sa = if rng.gen::<f64>() < 0.85 {
                    qi1 % 2
                } else {
                    rng.gen_range(0..2i64)
                };
                Row::raw(vec![sa, qi1, rng.gen_range(0..4i64)])
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(48);
        cfg.seed = seed;
        cfg.n_min = 2;
        cfg.cost_model = CostModel::zero();
        cfg.partition_strategy = PartitionStrategy::SortedLex;
        cfg.sensitivity_regime = SensitivityRegime::QueryDims;
        let n = cfg.n_providers;
        let partitions: Vec<Vec<Row>> = (0..n)
            .map(|p| {
                rows.iter()
                    .enumerate()
                    .filter(|(i, _)| i % n == p)
                    .map(|(_, r)| r.clone())
                    .collect()
            })
            .collect();
        let fed = Federation::build(cfg, schema, partitions).unwrap();
        (fed, rows)
    }

    fn attack_cfg(xi: f64) -> AttackConfig {
        AttackConfig {
            sa_dim: 0,
            qi_dims: vec![1, 2],
            xi,
            psi: 1e-6,
            regime: CompositionRegime::Sequential,
            aggregate: Aggregate::Count,
            sampling_rate: 0.25,
        }
    }

    fn with_server<R>(seed: u64, options: ServeOptions, f: impl FnOnce(&str, &[Row]) -> R) -> R {
        let (fed, rows) = world(seed);
        let engine = FederationEngine::start(fed);
        let server =
            FederationServer::bind("127.0.0.1:0", engine.handle().clone(), options).unwrap();
        let addr = server.local_addr().to_string();
        let out = f(&addr, &rows);
        server.shutdown();
        engine.shutdown();
        out
    }

    #[test]
    fn single_analyst_attack_runs_over_the_wire() {
        let out = with_server(11, ServeOptions::unlimited(), |addr, rows| {
            run_remote_attack(addr, "red-team", rows, &attack_cfg(1.0)).unwrap()
        });
        // n = 1 + 2 + 2·(8 + 4) = 27 probes; binary SA ⇒ AUC defined.
        assert_eq!(out.n_queries, 27);
        assert_eq!(out.classes, 2);
        assert!((0.0..=1.0).contains(&out.accuracy));
        let auc = out.auc.expect("binary SA has an AUC");
        assert!((0.0..=1.0).contains(&auc));
        assert_eq!(out.spent.len(), 1);
    }

    #[test]
    fn coalition_pools_members_and_ledgers() {
        let out = with_server(12, ServeOptions::with_budget(2.0, 1e-5), |addr, rows| {
            run_coalition_attack(addr, "coalition", 3, rows, &attack_cfg(2.0)).unwrap()
        });
        assert_eq!(out.n_queries, 27);
        assert_eq!(out.spent.len(), 3);
        // Every member's ledger spend stays within its own (ξ, ψ): slices
        // are ⌈27/3⌉ = 9 probes at ξ/9 each.
        for (identity, eps, delta) in &out.spent {
            assert!(*eps <= 2.0 + 1e-9, "{identity} overspent ε: {eps}");
            assert!(*delta <= 1e-5 + 1e-12, "{identity} overspent δ: {delta}");
            assert!(*eps > 0.0, "{identity} spent nothing");
        }
    }

    #[test]
    fn remote_attack_matches_itself_bit_for_bit() {
        // Determinism over the wire: two fresh servers over the same seeded
        // world answer the probe workload identically, so the whole attack
        // outcome — accuracy and AUC included — reproduces exactly.
        let run = || {
            with_server(13, ServeOptions::unlimited(), |addr, rows| {
                run_remote_attack(addr, "red-team", rows, &attack_cfg(5.0)).unwrap()
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        assert_eq!(
            a.auc.map(f64::to_bits),
            b.auc.map(f64::to_bits),
            "AUC must reproduce"
        );
    }

    #[test]
    fn coalition_is_order_independent() {
        // The k members race on parallel connections; the per-content
        // noise derivation makes the pooled outcome identical to a fresh
        // run regardless of interleaving.
        let run = || {
            with_server(14, ServeOptions::unlimited(), |addr, rows| {
                run_coalition_attack(addr, "coalition", 4, rows, &attack_cfg(5.0)).unwrap()
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        assert_eq!(a.auc.map(f64::to_bits), b.auc.map(f64::to_bits));
    }

    #[test]
    fn zero_member_coalition_is_rejected() {
        let err = run_coalition_attack("127.0.0.1:1", "c", 0, &[], &attack_cfg(1.0)).unwrap_err();
        assert!(matches!(err, AttackError::Net(_)));
    }
}
