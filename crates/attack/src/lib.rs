//! Learning-based attack harness (§6.6 of the paper).
//!
//! Cormode's observation [13 in the paper]: a Naive Bayes classifier
//! trained on the answers of `COUNT`/`SUM` queries against a noisy
//! database can predict an individual's sensitive attribute `SA` from
//! quasi-identifiers `QI`. The paper's Table 1 shows that against the
//! *interactive* fedaqp system — where the attacker holds a finite budget
//! `(ξ, ψ)` split across the `nQueries` training queries — the classifier
//! degrades to random guessing (`< 1%` accuracy with `‖d_SA‖ = 100`
//! classes) under sequential composition, advanced composition, and even a
//! coalition of single-query attackers.
//!
//! * [`nbc`] — the discrete Naive Bayes classifier with log-space scoring.
//! * [`plan`] — the attack's query plan:
//!   `nQueries = 1 + ‖d_SA‖ + ‖d_SA‖·Σ‖d_QI‖`.
//! * [`attack`] — end-to-end orchestration against a [`fedaqp_core`]
//!   federation under a budget regime, plus the oracle-based variant used
//!   to validate the classifier itself.
//! * [`remote`] — the same adversary as a remote analyst (or a coalition
//!   of them) issuing wire-v2 plan frames against a live
//!   [`fedaqp_net::FederationServer`].

pub mod attack;
pub mod error;
pub mod nbc;
pub mod plan;
pub mod remote;

pub use attack::{run_attack, AttackConfig, AttackOutcome, CompositionRegime};
pub use error::AttackError;
pub use nbc::NbcModel;
pub use plan::{build_plan, AttackPlan};
pub use remote::{run_coalition_attack, run_remote_attack, RemoteAttackOutcome};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AttackError>;
