//! Discrete Naive Bayes classifier trained from (noisy) count answers.
//!
//! Prediction rule (§6.6):
//!
//! ```text
//! ŷ = argmax_y  P(y) · ∏_i P(v_i | y) / P(v_i)
//! ```
//!
//! with `P(y) = c(y)/N`, `P(v|y) = c(y,v)/c(y)`, and `P(v) = Σ_y c(y,v)/N`
//! — all assembled from the attack plan's counts. Scores are computed in
//! log space with Laplace-style smoothing so that noisy (possibly
//! negative) DP answers never produce NaNs.

use std::collections::HashMap;

use fedaqp_model::{Domain, Row, Schema, Value};

use crate::plan::{AttackPlan, PlannedCount};
use crate::{AttackError, Result};

/// Pseudocount keeping probabilities strictly positive under noise.
const SMOOTHING: f64 = 0.5;

/// A trained classifier.
#[derive(Debug, Clone)]
pub struct NbcModel {
    sa_dim: usize,
    sa_domain: Domain,
    qi_dims: Vec<(usize, Domain)>,
    /// `log P(y)` indexed by `y − sa_min`.
    log_prior: Vec<f64>,
    /// Per QI dim: `log (P(v|y)/P(v))` indexed `[y − sa_min][v − qi_min]`.
    log_likelihood_ratio: Vec<Vec<Vec<f64>>>,
}

impl NbcModel {
    /// Trains the classifier from the plan's answers (same order as
    /// `plan.queries`). Answers may be noisy and even negative.
    pub fn train(schema: &Schema, plan: &AttackPlan, answers: &[f64]) -> Result<Self> {
        if answers.len() != plan.queries.len() {
            return Err(AttackError::PlanMismatch {
                expected: plan.queries.len(),
                got: answers.len(),
            });
        }
        let sa_domain = schema.domain(plan.sa_dim)?;
        let k = sa_domain.size() as usize;
        let mut total = 0.0f64;
        let mut class = vec![0.0f64; k];
        // joint[qi][y][v]
        let mut joint: HashMap<usize, Vec<Vec<f64>>> = HashMap::new();
        let mut qi_dims = Vec::with_capacity(plan.qi_dims.len());
        for &qi in &plan.qi_dims {
            let dom = schema.domain(qi)?;
            qi_dims.push((qi, dom));
            joint.insert(qi, vec![vec![0.0; dom.size() as usize]; k]);
        }
        for ((what, _), &ans) in plan.queries.iter().zip(answers) {
            let ans = ans.max(0.0); // noisy answers clamp at zero mass
            match *what {
                PlannedCount::Total => total = ans,
                PlannedCount::Class { y } => {
                    class[(y - sa_domain.min()) as usize] = ans;
                }
                PlannedCount::Joint { y, qi_dim, v } => {
                    let dom = schema.domain(qi_dim)?;
                    joint.get_mut(&qi_dim).expect("planned qi dim")
                        [(y - sa_domain.min()) as usize][(v - dom.min()) as usize] = ans;
                }
            }
        }
        let total = total.max(1.0);

        // log P(y) with smoothing.
        let denom = total + SMOOTHING * k as f64;
        let log_prior: Vec<f64> = class
            .iter()
            .map(|&c| ((c + SMOOTHING) / denom).ln())
            .collect();

        // log (P(v|y)/P(v)).
        let mut log_likelihood_ratio = Vec::with_capacity(qi_dims.len());
        for &(qi, dom) in &qi_dims {
            let m = dom.size() as usize;
            let j = &joint[&qi];
            // Marginal c(v) = Σ_y c(y,v) — derived, no extra queries.
            let marginal: Vec<f64> = (0..m).map(|v| (0..k).map(|y| j[y][v]).sum()).collect();
            let mut per_dim = vec![vec![0.0f64; m]; k];
            for (y, row) in per_dim.iter_mut().enumerate() {
                let cy = class[y].max(0.0);
                for (v, cell) in row.iter_mut().enumerate() {
                    let p_v_given_y = (j[y][v] + SMOOTHING) / (cy + SMOOTHING * m as f64);
                    let p_v = (marginal[v] + SMOOTHING * k as f64)
                        / (total + SMOOTHING * k as f64 * m as f64);
                    *cell = (p_v_given_y / p_v).ln();
                }
            }
            log_likelihood_ratio.push(per_dim);
        }
        Ok(Self {
            sa_dim: plan.sa_dim,
            sa_domain,
            qi_dims,
            log_prior,
            log_likelihood_ratio,
        })
    }

    /// Predicts the sensitive value from a full row (QI values are read
    /// from the row's dimensions).
    pub fn predict(&self, values: &[Value]) -> Value {
        let k = self.sa_domain.size() as usize;
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for y in 0..k {
            let mut score = self.log_prior[y];
            for (i, &(qi, dom)) in self.qi_dims.iter().enumerate() {
                let v = values[qi];
                if dom.contains(v) {
                    score += self.log_likelihood_ratio[i][y][(v - dom.min()) as usize];
                }
            }
            if score > best_score {
                best_score = score;
                best = y;
            }
        }
        self.sa_domain.min() + best as Value
    }

    /// Measure-weighted prediction accuracy over tensor cells: the §6.6
    /// metric `accuracy = correct predictions / total predictions`, where
    /// each cell counts `measure` raw rows.
    pub fn accuracy(&self, cells: &[Row]) -> Result<f64> {
        if cells.is_empty() {
            return Err(AttackError::NoEvaluationRows);
        }
        let mut correct = 0u64;
        let mut total = 0u64;
        for cell in cells {
            let predicted = self.predict(cell.values());
            total += cell.measure();
            if predicted == cell.value(self.sa_dim) {
                correct += cell.measure();
            }
        }
        Ok(correct as f64 / total as f64)
    }

    /// Number of classes `‖d_SA‖`.
    pub fn n_classes(&self) -> u64 {
        self.sa_domain.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan;
    use fedaqp_model::{Aggregate, Dimension, RangeQuery};

    /// 3 classes, 1 QI dim of 6 values: SA = v/2 deterministically.
    fn correlated_world() -> (Schema, Vec<Row>) {
        let schema = Schema::new(vec![
            Dimension::new("sa", Domain::new(0, 2).unwrap()),
            Dimension::new("qi", Domain::new(0, 5).unwrap()),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for v in 0..6i64 {
            for _ in 0..50 {
                rows.push(Row::raw(vec![v / 2, v]));
            }
        }
        (schema, rows)
    }

    fn exact_answers(plan: &AttackPlan, rows: &[Row]) -> Vec<f64> {
        plan.queries
            .iter()
            .map(|(_, q): &(_, RangeQuery)| {
                rows.iter()
                    .filter(|r| q.matches(r))
                    .map(|r| r.measure())
                    .sum::<u64>() as f64
            })
            .collect()
    }

    #[test]
    fn learns_deterministic_correlation_from_exact_counts() {
        let (schema, rows) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        let answers = exact_answers(&plan, &rows);
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        // With exact counts the deterministic mapping is fully recovered.
        let acc = model.accuracy(&rows).unwrap();
        assert!(acc > 0.99, "accuracy {acc}");
        assert_eq!(model.n_classes(), 3);
    }

    #[test]
    fn garbage_answers_give_chance_level_accuracy() {
        let (schema, rows) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        // Pure-noise answers: alternate huge positive/negative garbage.
        let answers: Vec<f64> = (0..plan.queries.len())
            .map(|i| if i % 2 == 0 { 1e6 } else { -1e6 })
            .collect();
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        let acc = model.accuracy(&rows).unwrap();
        // Noise answers can't beat the deterministic oracle; in this world
        // chance is 1/3 and systematic garbage stays near or below it.
        assert!(acc < 0.67, "accuracy {acc} suspiciously high for garbage");
    }

    #[test]
    fn train_rejects_wrong_answer_count() {
        let (schema, _) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        let err = NbcModel::train(&schema, &plan, &[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, AttackError::PlanMismatch { .. }));
    }

    #[test]
    fn accuracy_requires_rows() {
        let (schema, rows) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        let answers = exact_answers(&plan, &rows);
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        assert!(matches!(
            model.accuracy(&[]),
            Err(AttackError::NoEvaluationRows)
        ));
    }

    #[test]
    fn negative_noisy_answers_are_survivable() {
        let (schema, rows) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        let answers: Vec<f64> = vec![-5.0; plan.queries.len()];
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        // All scores finite, prediction well-defined.
        let acc = model.accuracy(&rows).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn measure_weighting_counts_raw_rows() {
        let (schema, _) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        // Cells with measures: one correct-prediction cell with weight 99,
        // one wrong with weight 1 — accuracy must be 0.99 not 0.5.
        let rows = vec![Row::cell(vec![0, 0], 99), Row::cell(vec![2, 1], 1)];
        let answers = exact_answers(&plan, &rows);
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        let acc = model.accuracy(&rows).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
