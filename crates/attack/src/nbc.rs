//! Discrete Naive Bayes classifier trained from (noisy) count answers.
//!
//! Prediction rule (§6.6):
//!
//! ```text
//! ŷ = argmax_y  P(y) · ∏_i P(v_i | y) / P(v_i)
//! ```
//!
//! with `P(y) = c(y)/N`, `P(v|y) = c(y,v)/c(y)`, and `P(v) = Σ_y c(y,v)/N`
//! — all assembled from the attack plan's counts. Scores are computed in
//! log space with Laplace-style smoothing so that noisy (possibly
//! negative) DP answers never produce NaNs.

use std::collections::HashMap;

use fedaqp_model::{Domain, Row, Schema, Value};

use crate::plan::{AttackPlan, PlannedCount};
use crate::{AttackError, Result};

/// Pseudocount keeping probabilities strictly positive under noise.
const SMOOTHING: f64 = 0.5;

/// A trained classifier.
#[derive(Debug, Clone)]
pub struct NbcModel {
    sa_dim: usize,
    sa_domain: Domain,
    qi_dims: Vec<(usize, Domain)>,
    /// `log P(y)` indexed by `y − sa_min`.
    log_prior: Vec<f64>,
    /// Per QI dim: `log (P(v|y)/P(v))` indexed `[y − sa_min][v − qi_min]`.
    log_likelihood_ratio: Vec<Vec<Vec<f64>>>,
}

impl NbcModel {
    /// Trains the classifier from the plan's answers (same order as
    /// `plan.queries`). Answers may be noisy and even negative.
    pub fn train(schema: &Schema, plan: &AttackPlan, answers: &[f64]) -> Result<Self> {
        if answers.len() != plan.queries.len() {
            return Err(AttackError::PlanMismatch {
                expected: plan.queries.len(),
                got: answers.len(),
            });
        }
        let sa_domain = schema.domain(plan.sa_dim)?;
        let k = sa_domain.size() as usize;
        let mut total = 0.0f64;
        let mut class = vec![0.0f64; k];
        // joint[qi][y][v]
        let mut joint: HashMap<usize, Vec<Vec<f64>>> = HashMap::new();
        let mut qi_dims = Vec::with_capacity(plan.qi_dims.len());
        for &qi in &plan.qi_dims {
            let dom = schema.domain(qi)?;
            qi_dims.push((qi, dom));
            joint.insert(qi, vec![vec![0.0; dom.size() as usize]; k]);
        }
        for ((what, _), &ans) in plan.queries.iter().zip(answers) {
            let ans = ans.max(0.0); // noisy answers clamp at zero mass
            match *what {
                PlannedCount::Total => total = ans,
                PlannedCount::Class { y } => {
                    class[(y - sa_domain.min()) as usize] = ans;
                }
                PlannedCount::Joint { y, qi_dim, v } => {
                    let dom = schema.domain(qi_dim)?;
                    joint.get_mut(&qi_dim).expect("planned qi dim")
                        [(y - sa_domain.min()) as usize][(v - dom.min()) as usize] = ans;
                }
            }
        }
        let total = total.max(1.0);

        // log P(y) with smoothing.
        let denom = total + SMOOTHING * k as f64;
        let log_prior: Vec<f64> = class
            .iter()
            .map(|&c| ((c + SMOOTHING) / denom).ln())
            .collect();

        // log (P(v|y)/P(v)).
        let mut log_likelihood_ratio = Vec::with_capacity(qi_dims.len());
        for &(qi, dom) in &qi_dims {
            let m = dom.size() as usize;
            let j = &joint[&qi];
            // Marginal c(v) = Σ_y c(y,v) — derived, no extra queries.
            let marginal: Vec<f64> = (0..m).map(|v| (0..k).map(|y| j[y][v]).sum()).collect();
            let mut per_dim = vec![vec![0.0f64; m]; k];
            for (y, row) in per_dim.iter_mut().enumerate() {
                let cy = class[y].max(0.0);
                for (v, cell) in row.iter_mut().enumerate() {
                    let p_v_given_y = (j[y][v] + SMOOTHING) / (cy + SMOOTHING * m as f64);
                    let p_v = (marginal[v] + SMOOTHING * k as f64)
                        / (total + SMOOTHING * k as f64 * m as f64);
                    *cell = (p_v_given_y / p_v).ln();
                }
            }
            log_likelihood_ratio.push(per_dim);
        }
        Ok(Self {
            sa_dim: plan.sa_dim,
            sa_domain,
            qi_dims,
            log_prior,
            log_likelihood_ratio,
        })
    }

    /// The classifier's log score for class index `y` on a row.
    fn class_score(&self, y: usize, values: &[Value]) -> f64 {
        let mut score = self.log_prior[y];
        for (i, &(qi, dom)) in self.qi_dims.iter().enumerate() {
            let v = values[qi];
            if dom.contains(v) {
                score += self.log_likelihood_ratio[i][y][(v - dom.min()) as usize];
            }
        }
        score
    }

    /// Predicts the sensitive value from a full row (QI values are read
    /// from the row's dimensions).
    pub fn predict(&self, values: &[Value]) -> Value {
        let k = self.sa_domain.size() as usize;
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for y in 0..k {
            let score = self.class_score(y, values);
            if score > best_score {
                best_score = score;
                best = y;
            }
        }
        self.sa_domain.min() + best as Value
    }

    /// The log-score margin for the positive class of a *binary* SA,
    /// `score(y₁) − score(y₀)` — the continuous confidence an ROC curve
    /// thresholds over. `None` when the SA domain is not binary.
    pub fn binary_margin(&self, values: &[Value]) -> Option<f64> {
        if self.sa_domain.size() != 2 {
            return None;
        }
        Some(self.class_score(1, values) - self.class_score(0, values))
    }

    /// Measure-weighted ROC AUC of [`Self::binary_margin`] over tensor
    /// cells (Mann–Whitney form, ties counted half). `Ok(None)` when the
    /// SA is not binary or the evaluation set lacks one of the classes —
    /// AUC is undefined there, not zero.
    pub fn binary_auc(&self, cells: &[Row]) -> Result<Option<f64>> {
        if cells.is_empty() {
            return Err(AttackError::NoEvaluationRows);
        }
        if self.sa_domain.size() != 2 {
            return Ok(None);
        }
        let positive = self.sa_domain.min() + 1;
        let mut scored: Vec<(f64, bool, u64)> = cells
            .iter()
            .map(|cell| {
                let margin = self
                    .binary_margin(cell.values())
                    .expect("binary SA checked above");
                (margin, cell.value(self.sa_dim) == positive, cell.measure())
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (mut w_pos, mut w_neg) = (0.0f64, 0.0f64);
        for &(_, is_pos, w) in &scored {
            if is_pos {
                w_pos += w as f64;
            } else {
                w_neg += w as f64;
            }
        }
        if w_pos == 0.0 || w_neg == 0.0 {
            return Ok(None);
        }
        // Walk ascending scores, grouping ties: every (positive, negative)
        // pair with the positive scored higher counts 1, ties count ½.
        let mut auc_pairs = 0.0f64;
        let mut neg_below = 0.0f64;
        let mut i = 0;
        while i < scored.len() {
            let mut j = i;
            let (mut tie_pos, mut tie_neg) = (0.0f64, 0.0f64);
            while j < scored.len() && scored[j].0 == scored[i].0 {
                if scored[j].1 {
                    tie_pos += scored[j].2 as f64;
                } else {
                    tie_neg += scored[j].2 as f64;
                }
                j += 1;
            }
            auc_pairs += tie_pos * (neg_below + 0.5 * tie_neg);
            neg_below += tie_neg;
            i = j;
        }
        Ok(Some(auc_pairs / (w_pos * w_neg)))
    }

    /// Measure-weighted prediction accuracy over tensor cells: the §6.6
    /// metric `accuracy = correct predictions / total predictions`, where
    /// each cell counts `measure` raw rows.
    pub fn accuracy(&self, cells: &[Row]) -> Result<f64> {
        if cells.is_empty() {
            return Err(AttackError::NoEvaluationRows);
        }
        let mut correct = 0u64;
        let mut total = 0u64;
        for cell in cells {
            let predicted = self.predict(cell.values());
            total += cell.measure();
            if predicted == cell.value(self.sa_dim) {
                correct += cell.measure();
            }
        }
        Ok(correct as f64 / total as f64)
    }

    /// Number of classes `‖d_SA‖`.
    pub fn n_classes(&self) -> u64 {
        self.sa_domain.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan;
    use fedaqp_model::{Aggregate, Dimension, RangeQuery};

    /// 3 classes, 1 QI dim of 6 values: SA = v/2 deterministically.
    fn correlated_world() -> (Schema, Vec<Row>) {
        let schema = Schema::new(vec![
            Dimension::new("sa", Domain::new(0, 2).unwrap()),
            Dimension::new("qi", Domain::new(0, 5).unwrap()),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for v in 0..6i64 {
            for _ in 0..50 {
                rows.push(Row::raw(vec![v / 2, v]));
            }
        }
        (schema, rows)
    }

    fn exact_answers(plan: &AttackPlan, rows: &[Row]) -> Vec<f64> {
        plan.queries
            .iter()
            .map(|(_, q): &(_, RangeQuery)| {
                rows.iter()
                    .filter(|r| q.matches(r))
                    .map(|r| r.measure())
                    .sum::<u64>() as f64
            })
            .collect()
    }

    #[test]
    fn learns_deterministic_correlation_from_exact_counts() {
        let (schema, rows) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        let answers = exact_answers(&plan, &rows);
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        // With exact counts the deterministic mapping is fully recovered.
        let acc = model.accuracy(&rows).unwrap();
        assert!(acc > 0.99, "accuracy {acc}");
        assert_eq!(model.n_classes(), 3);
    }

    #[test]
    fn garbage_answers_give_chance_level_accuracy() {
        let (schema, rows) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        // Pure-noise answers: alternate huge positive/negative garbage.
        let answers: Vec<f64> = (0..plan.queries.len())
            .map(|i| if i % 2 == 0 { 1e6 } else { -1e6 })
            .collect();
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        let acc = model.accuracy(&rows).unwrap();
        // Noise answers can't beat the deterministic oracle; in this world
        // chance is 1/3 and systematic garbage stays near or below it.
        assert!(acc < 0.67, "accuracy {acc} suspiciously high for garbage");
    }

    #[test]
    fn train_rejects_wrong_answer_count() {
        let (schema, _) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        let err = NbcModel::train(&schema, &plan, &[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, AttackError::PlanMismatch { .. }));
    }

    #[test]
    fn accuracy_requires_rows() {
        let (schema, rows) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        let answers = exact_answers(&plan, &rows);
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        assert!(matches!(
            model.accuracy(&[]),
            Err(AttackError::NoEvaluationRows)
        ));
    }

    #[test]
    fn negative_noisy_answers_are_survivable() {
        let (schema, rows) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        let answers: Vec<f64> = vec![-5.0; plan.queries.len()];
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        // All scores finite, prediction well-defined.
        let acc = model.accuracy(&rows).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    /// Binary SA (2 classes), 1 QI dim of 4 values: SA = v/2.
    fn binary_world() -> (Schema, Vec<Row>) {
        let schema = Schema::new(vec![
            Dimension::new("sa", Domain::new(0, 1).unwrap()),
            Dimension::new("qi", Domain::new(0, 3).unwrap()),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for v in 0..4i64 {
            for _ in 0..25 {
                rows.push(Row::raw(vec![v / 2, v]));
            }
        }
        (schema, rows)
    }

    #[test]
    fn auc_is_perfect_on_exact_counts_and_undefined_off_binary() {
        let (schema, rows) = binary_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        let answers = exact_answers(&plan, &rows);
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        let auc = model.binary_auc(&rows).unwrap().expect("binary SA");
        assert!(auc > 0.99, "auc {auc}");
        // The 3-class world has no binary margin, hence no AUC.
        let (schema3, rows3) = correlated_world();
        let plan3 = build_plan(&schema3, 0, &[1], Aggregate::Count).unwrap();
        let answers3 = exact_answers(&plan3, &rows3);
        let model3 = NbcModel::train(&schema3, &plan3, &answers3).unwrap();
        assert!(model3.binary_margin(rows3[0].values()).is_none());
        assert!(model3.binary_auc(&rows3).unwrap().is_none());
    }

    #[test]
    fn auc_is_half_when_scores_are_constant() {
        let (schema, rows) = binary_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        // Identical answers everywhere ⇒ constant margin ⇒ every pair is
        // a tie ⇒ AUC exactly ½.
        let answers = vec![100.0; plan.queries.len()];
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        let auc = model.binary_auc(&rows).unwrap().expect("binary SA");
        assert!((auc - 0.5).abs() < 1e-12, "auc {auc}");
    }

    #[test]
    fn auc_undefined_when_a_class_is_absent() {
        let (schema, rows) = binary_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        let answers = exact_answers(&plan, &rows);
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        let only_zero: Vec<Row> = rows.iter().filter(|r| r.value(0) == 0).cloned().collect();
        assert!(model.binary_auc(&only_zero).unwrap().is_none());
    }

    #[test]
    fn measure_weighting_counts_raw_rows() {
        let (schema, _) = correlated_world();
        let plan = build_plan(&schema, 0, &[1], Aggregate::Count).unwrap();
        // Cells with measures: one correct-prediction cell with weight 99,
        // one wrong with weight 1 — accuracy must be 0.99 not 0.5.
        let rows = vec![Row::cell(vec![0, 0], 99), Row::cell(vec![2, 1], 1)];
        let answers = exact_answers(&plan, &rows);
        let model = NbcModel::train(&schema, &plan, &answers).unwrap();
        let acc = model.accuracy(&rows).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
