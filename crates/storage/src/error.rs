//! Error type for the storage crate.

use std::fmt;

use fedaqp_model::ModelError;

/// Errors raised by cluster construction, metadata building, or the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Propagated data-model error (schema/row validation).
    Model(ModelError),
    /// Cluster capacity must be positive.
    ZeroCapacity,
    /// A cluster was built with more rows than the agreed capacity.
    CapacityExceeded {
        /// Rows offered.
        rows: usize,
        /// Agreed capacity `S`.
        capacity: usize,
    },
    /// A cluster id referenced a non-existent cluster.
    UnknownCluster(u32),
    /// The binary metadata blob was malformed.
    Corrupt(&'static str),
    /// The binary metadata blob had an unsupported version.
    UnsupportedVersion(u16),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Model(e) => write!(f, "model error: {e}"),
            StorageError::ZeroCapacity => write!(f, "cluster capacity S must be positive"),
            StorageError::CapacityExceeded { rows, capacity } => {
                write!(
                    f,
                    "cluster holds {rows} rows, exceeding capacity {capacity}"
                )
            }
            StorageError::UnknownCluster(id) => write!(f, "unknown cluster id {id}"),
            StorageError::Corrupt(what) => write!(f, "corrupt metadata blob: {what}"),
            StorageError::UnsupportedVersion(v) => {
                write!(f, "unsupported metadata format version {v}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for StorageError {
    fn from(e: ModelError) -> Self {
        StorageError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(StorageError::ZeroCapacity.to_string().contains("positive"));
        assert!(StorageError::CapacityExceeded {
            rows: 10,
            capacity: 5
        }
        .to_string()
        .contains("10"));
        let e: StorageError = ModelError::NoRanges.into();
        assert!(e.to_string().contains("model error"));
    }

    #[test]
    fn source_chains_model_errors() {
        use std::error::Error as _;
        let e: StorageError = ModelError::NoRanges.into();
        assert!(e.source().is_some());
        assert!(StorageError::ZeroCapacity.source().is_none());
    }
}
