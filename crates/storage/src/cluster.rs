//! Bounded storage clusters.

use fedaqp_model::{Range, RangeQuery, Row};

use crate::{Result, StorageError};

/// Identifier of a cluster within one provider's store.
pub type ClusterId = u32;

/// A storage cluster: up to `S` count-tensor cells in column-major layout.
///
/// Columns are stored contiguously so a range predicate on one dimension
/// walks one cache-friendly array; the per-cluster scan is the cost unit of
/// the whole system (sampling s clusters ⇒ scanning `s · S` cells instead of
/// `N^Q · S`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    id: ClusterId,
    len: usize,
    /// `cols[d][i]` = value of row `i` on dimension `d`.
    cols: Vec<Vec<i64>>,
    measures: Vec<u64>,
}

impl Cluster {
    /// Builds a cluster from rows, enforcing the capacity bound.
    pub fn from_rows(id: ClusterId, arity: usize, rows: &[Row], capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(StorageError::ZeroCapacity);
        }
        if rows.len() > capacity {
            return Err(StorageError::CapacityExceeded {
                rows: rows.len(),
                capacity,
            });
        }
        let mut cols = vec![Vec::with_capacity(rows.len()); arity];
        let mut measures = Vec::with_capacity(rows.len());
        for row in rows {
            debug_assert_eq!(row.values().len(), arity);
            for (d, &v) in row.values().iter().enumerate() {
                cols[d].push(v);
            }
            measures.push(row.measure());
        }
        Ok(Self {
            id,
            len: rows.len(),
            cols,
            measures,
        })
    }

    /// The cluster's id.
    #[inline]
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// Number of stored cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cluster is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of dimensions.
    #[inline]
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Column for dimension `d`.
    #[inline]
    pub fn column(&self, d: usize) -> &[i64] {
        &self.cols[d]
    }

    /// Measures column.
    #[inline]
    pub fn measures(&self) -> &[u64] {
        &self.measures
    }

    /// Sum of measures (raw rows aggregated into this cluster).
    pub fn total_measure(&self) -> u64 {
        self.measures.iter().sum()
    }

    /// Evaluates a range query over this cluster — the `Q(C_i)` of Eq. 3.
    ///
    /// Row survivorship is computed predicate-by-predicate over columnar
    /// data; the measure column is only consulted for survivors.
    pub fn evaluate(&self, query: &RangeQuery) -> u64 {
        if self.len == 0 {
            return 0;
        }
        // Tight loop over the first predicate's column, then refine.
        let ranges = query.ranges();
        debug_assert!(!ranges.is_empty());
        let mut acc = 0u64;
        'rows: for i in 0..self.len {
            for r in ranges {
                let v = self.cols[r.dim][i];
                if v < r.lo || v > r.hi {
                    continue 'rows;
                }
            }
            acc += match query.aggregate() {
                fedaqp_model::Aggregate::Count => 1,
                fedaqp_model::Aggregate::Sum => self.measures[i],
            };
        }
        acc
    }

    /// Exact number of cells matching the query's ranges (the exact `R·S`
    /// numerator, used by the exact-R ablation).
    pub fn matching_rows(&self, ranges: &[Range]) -> usize {
        let mut n = 0usize;
        'rows: for i in 0..self.len {
            for r in ranges {
                let v = self.cols[r.dim][i];
                if v < r.lo || v > r.hi {
                    continue 'rows;
                }
            }
            n += 1;
        }
        n
    }

    /// Reconstructs row `i` (used when rows must be serialized, e.g. the
    /// SMC row-sharing simulation of Fig. 1).
    pub fn row(&self, i: usize) -> Row {
        let values: Vec<i64> = self.cols.iter().map(|c| c[i]).collect();
        Row::cell(values, self.measures[i])
    }

    /// Iterates all rows (materializing each).
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.len).map(move |i| self.row(i))
    }

    /// Appends one row in place (columnar push). The capacity bound is the
    /// caller's responsibility — see [`crate::store::ClusterStore::append_row`],
    /// which opens a fresh cluster when the tail is full.
    pub fn append_row(&mut self, row: &Row) {
        debug_assert_eq!(row.values().len(), self.arity());
        for (d, &v) in row.values().iter().enumerate() {
            self.cols[d].push(v);
        }
        self.measures.push(row.measure());
        self.len += 1;
    }

    /// Approximate in-memory footprint in bytes (columnar payload only).
    pub fn payload_bytes(&self) -> usize {
        self.len * (self.arity() * std::mem::size_of::<i64>() + std::mem::size_of::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedaqp_model::{Aggregate, Range, RangeQuery, Row};

    fn cluster() -> Cluster {
        let rows = [
            Row::cell(vec![10, 100], 2),
            Row::cell(vec![20, 200], 3),
            Row::cell(vec![30, 300], 5),
        ];
        Cluster::from_rows(7, 2, &rows, 10).unwrap()
    }

    #[test]
    fn from_rows_builds_columns() {
        let c = cluster();
        assert_eq!(c.id(), 7);
        assert_eq!(c.len(), 3);
        assert_eq!(c.arity(), 2);
        assert_eq!(c.column(0), &[10, 20, 30]);
        assert_eq!(c.column(1), &[100, 200, 300]);
        assert_eq!(c.measures(), &[2, 3, 5]);
        assert_eq!(c.total_measure(), 10);
    }

    #[test]
    fn capacity_enforced() {
        let rows: Vec<Row> = (0..5).map(|i| Row::raw(vec![i])).collect();
        assert!(matches!(
            Cluster::from_rows(0, 1, &rows, 4),
            Err(StorageError::CapacityExceeded {
                rows: 5,
                capacity: 4
            })
        ));
        assert!(matches!(
            Cluster::from_rows(0, 1, &rows, 0),
            Err(StorageError::ZeroCapacity)
        ));
    }

    #[test]
    fn evaluate_matches_row_scan() {
        let c = cluster();
        let q = RangeQuery::new(
            Aggregate::Sum,
            vec![
                Range::new(0, 10, 20).unwrap(),
                Range::new(1, 150, 300).unwrap(),
            ],
        )
        .unwrap();
        // Only row (20, 200, m=3) matches both predicates.
        assert_eq!(c.evaluate(&q), 3);
        let qc = RangeQuery::new(Aggregate::Count, vec![Range::new(0, 0, 99).unwrap()]).unwrap();
        assert_eq!(c.evaluate(&qc), 3);
    }

    #[test]
    fn matching_rows_counts_cells() {
        let c = cluster();
        assert_eq!(c.matching_rows(&[Range::new(0, 15, 35).unwrap()]), 2);
        assert_eq!(c.matching_rows(&[Range::new(1, 0, 50).unwrap()]), 0);
    }

    #[test]
    fn row_round_trips() {
        let c = cluster();
        assert_eq!(c.row(1), Row::cell(vec![20, 200], 3));
        let all: Vec<Row> = c.rows().collect();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn empty_cluster_evaluates_to_zero() {
        let c = Cluster::from_rows(0, 2, &[], 10).unwrap();
        let q = RangeQuery::new(Aggregate::Count, vec![Range::new(0, 0, 9).unwrap()]).unwrap();
        assert_eq!(c.evaluate(&q), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn payload_bytes_scale_with_rows() {
        let c = cluster();
        assert_eq!(c.payload_bytes(), 3 * (2 * 8 + 8));
    }

    #[test]
    fn append_row_matches_from_rows() {
        let rows = [
            Row::cell(vec![10, 100], 2),
            Row::cell(vec![20, 200], 3),
            Row::cell(vec![30, 300], 5),
        ];
        let mut incremental = Cluster::from_rows(7, 2, &rows[..1], 10).unwrap();
        incremental.append_row(&rows[1]);
        incremental.append_row(&rows[2]);
        assert_eq!(incremental, cluster());
    }
}
