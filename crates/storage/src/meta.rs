//! Offline cluster metadata (Algorithm 1 of the paper).
//!
//! For every cluster `C` and dimension `d`, the provider stores the tail
//! proportions `R_{d≥}(v) = |rows_d ≥ v| / S` for each distinct value `v`
//! present in `C`, plus the per-dimension `[v_min, v_max]` in a global file.
//! Online, a query's per-cluster proportion is assembled *without touching
//! data*:
//!
//! ```text
//! R_d = R_{d≥}(l_b) − R_{d≥}(succ(u_b))      (per dimension, inclusive)
//! R   = ∏_{d ∈ D^Q} R_d                       (independence assumption)
//! ```
//!
//! and the covering set `C^Q` is pruned by min/max intersection (Eq. 2).
//!
//! The paper's formula subtracts `R_{d≥}(u_b)`, which would drop rows equal
//! to the upper bound even though ranges are inclusive (§3). We subtract the
//! tail of the *successor* value, preserving the inclusive semantics the
//! rest of the paper (and plain SQL) uses. DESIGN.md records the delta.

use fedaqp_model::value::succ;
use fedaqp_model::{Range, RangeQuery, Row, Value};

use crate::cluster::{Cluster, ClusterId};
use crate::store::ClusterStore;

/// Per-dimension metadata of one cluster: sorted distinct values with
/// suffix (tail) row counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimMeta {
    values: Vec<Value>,
    /// `tails[i]` = number of rows whose value is ≥ `values[i]`.
    tails: Vec<u32>,
}

impl DimMeta {
    /// Builds the tail structure from one cluster column.
    pub fn from_column(col: &[Value]) -> Self {
        let mut sorted: Vec<Value> = col.to_vec();
        sorted.sort_unstable();
        let mut values = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for &v in &sorted {
            match values.last() {
                Some(&last) if last == v => *counts.last_mut().expect("non-empty") += 1,
                _ => {
                    values.push(v);
                    counts.push(1);
                }
            }
        }
        // Suffix-sum the per-value counts into tails.
        let mut tails = counts;
        let mut acc = 0u32;
        for t in tails.iter_mut().rev() {
            acc += *t;
            *t = acc;
        }
        Self { values, tails }
    }

    /// Folds one freshly appended value into the tail structure in
    /// `O(n_values)` — the incremental counterpart of rebuilding with
    /// [`DimMeta::from_column`] (which this is exactly equivalent to when
    /// the metadata is uncoarsened; on a coarsened copy the inserted value
    /// becomes a retained boundary, so tails stay sound but drift from what
    /// a coarsen-after-rebuild would keep).
    pub fn insert(&mut self, v: Value) {
        let idx = self.values.partition_point(|&x| x < v);
        if self.values.get(idx) != Some(&v) {
            // New distinct value: its tail starts at the successor's tail
            // (rows strictly greater than `v`), +1 below for `v` itself.
            let tail_after = self.tails.get(idx).copied().unwrap_or(0);
            self.values.insert(idx, v);
            self.tails.insert(idx, tail_after);
        }
        // Every value ≤ v now has one more row at or above it.
        for t in &mut self.tails[..=idx] {
            *t += 1;
        }
    }

    /// Number of rows with value ≥ `x` — the exact `|rows_d ≥ x|` of §5.2
    /// for arbitrary `x` (not only stored values), via binary search.
    pub fn tail_count(&self, x: Value) -> u32 {
        let idx = self.values.partition_point(|&v| v < x);
        if idx == self.values.len() {
            0
        } else {
            self.tails[idx]
        }
    }

    /// Number of rows with value in `[lo, hi]` (inclusive).
    pub fn range_count(&self, lo: Value, hi: Value) -> u32 {
        if lo > hi {
            return 0;
        }
        self.tail_count(lo) - self.tail_count(succ(hi))
    }

    /// Smallest stored value `v_min^d`.
    pub fn min(&self) -> Option<Value> {
        self.values.first().copied()
    }

    /// Largest stored value `v_max^d`.
    pub fn max(&self) -> Option<Value> {
        self.values.last().copied()
    }

    /// Number of distinct values (metadata entries for this dimension).
    #[inline]
    pub fn n_values(&self) -> usize {
        self.values.len()
    }

    /// The sorted distinct values (codec access).
    #[inline]
    pub(crate) fn values(&self) -> &[Value] {
        &self.values
    }

    /// The tail counts (codec access).
    #[inline]
    pub(crate) fn tails(&self) -> &[u32] {
        &self.tails
    }

    /// Rebuilds from codec parts (validated by the codec).
    pub(crate) fn from_parts(values: Vec<Value>, tails: Vec<u32>) -> Self {
        Self { values, tails }
    }

    /// A lossy, histogram-resolution copy keeping at most `buckets` entries
    /// (every ⌈n/buckets⌉-th distinct value, always including the extremes).
    ///
    /// Coarsening trades metadata size for proportion accuracy: tail
    /// lookups between retained values snap to the next retained value's
    /// tail, so `R_d` errs by at most the rows between two retained
    /// boundaries. Exposed through
    /// [`ProviderMeta::coarsened`] for the metadata-resolution ablation.
    pub fn coarsened(&self, buckets: usize) -> DimMeta {
        let n = self.values.len();
        if buckets == 0 || n <= buckets {
            return self.clone();
        }
        let mut values = Vec::with_capacity(buckets + 1);
        let mut tails = Vec::with_capacity(buckets + 1);
        let step = n.div_ceil(buckets);
        let mut i = 0;
        while i < n {
            values.push(self.values[i]);
            tails.push(self.tails[i]);
            i += step;
        }
        // Always retain the maximum so `max()` stays exact.
        if *values.last().expect("non-empty") != self.values[n - 1] {
            values.push(self.values[n - 1]);
            tails.push(self.tails[n - 1]);
        }
        DimMeta { values, tails }
    }
}

/// Metadata of one cluster: a [`DimMeta`] per dimension plus the row count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMeta {
    id: ClusterId,
    len: u32,
    dims: Vec<DimMeta>,
}

impl ClusterMeta {
    /// Builds metadata for `cluster` (Alg. 1 lines 3–12).
    pub fn from_cluster(cluster: &Cluster) -> Self {
        let dims = (0..cluster.arity())
            .map(|d| DimMeta::from_column(cluster.column(d)))
            .collect();
        Self {
            id: cluster.id(),
            len: cluster.len() as u32,
            dims,
        }
    }

    /// Rebuilds from codec parts.
    pub(crate) fn from_parts(id: ClusterId, len: u32, dims: Vec<DimMeta>) -> Self {
        Self { id, len, dims }
    }

    /// The described cluster's id.
    #[inline]
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// The described cluster's row count.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the described cluster is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-dimension metadata.
    #[inline]
    pub fn dims(&self) -> &[DimMeta] {
        &self.dims
    }

    /// Folds one appended row into this cluster's metadata (incremental
    /// Algorithm 1): bumps the row count and inserts each dimension value
    /// into the corresponding tail structure.
    pub fn append_row(&mut self, row: &Row) {
        debug_assert_eq!(row.values().len(), self.dims.len());
        self.len += 1;
        for (d, &v) in row.values().iter().enumerate() {
            self.dims[d].insert(v);
        }
    }

    /// `R_{d≥}(x)` relative to the agreed cluster size `s`.
    pub fn r_geq(&self, d: usize, x: Value, s: usize) -> f64 {
        self.dims[d].tail_count(x) as f64 / s as f64
    }

    /// `R_d` for one range predicate (inclusive), relative to `s`.
    pub fn r_range(&self, range: &Range, s: usize) -> f64 {
        self.dims[range.dim].range_count(range.lo, range.hi) as f64 / s as f64
    }

    /// The approximated proportion `R = ∏_d R_d` (Eq. 1) of rows in this
    /// cluster matching `query`, relative to the agreed size `s`.
    ///
    /// The product form assumes dimension independence *within the cluster*
    /// (§5.2); the correlated-dimensions ablation quantifies the error this
    /// introduces.
    pub fn r_query(&self, query: &RangeQuery, s: usize) -> f64 {
        let mut r = 1.0f64;
        for range in query.ranges() {
            r *= self.r_range(range, s);
            if r == 0.0 {
                break;
            }
        }
        r
    }

    /// Whether this cluster can contain rows matching `query` (Eq. 2):
    /// every queried dimension's `[v_min, v_max]` intersects the range.
    pub fn covers(&self, query: &RangeQuery) -> bool {
        query.ranges().iter().all(|r| {
            match (self.dims[r.dim].min(), self.dims[r.dim].max()) {
                (Some(lo), Some(hi)) => r.intersects(lo, hi),
                _ => false, // empty cluster covers nothing
            }
        })
    }

    /// Total metadata entries (for space accounting): Σ_d distinct values.
    pub fn n_entries(&self) -> usize {
        self.dims.iter().map(|d| d.n_values()).sum()
    }
}

/// All metadata of one provider: per-cluster files plus the agreed `S`.
///
/// `agreed_s` is the federation-wide cluster size all providers must use
/// when *normalizing* proportions, so that `Avg(R̂)` values are comparable
/// across providers during allocation (§5.1, §7). It may exceed the local
/// store's physical capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderMeta {
    agreed_s: usize,
    clusters: Vec<ClusterMeta>,
}

impl ProviderMeta {
    /// Runs the offline phase (Algorithm 1) over a provider's store.
    pub fn build(store: &ClusterStore, agreed_s: usize) -> Self {
        let clusters = store
            .clusters()
            .iter()
            .map(ClusterMeta::from_cluster)
            .collect();
        Self {
            agreed_s: agreed_s.max(1),
            clusters,
        }
    }

    /// Rebuilds from codec parts.
    pub(crate) fn from_parts(agreed_s: usize, clusters: Vec<ClusterMeta>) -> Self {
        Self { agreed_s, clusters }
    }

    /// The agreed cluster size `S`.
    #[inline]
    pub fn agreed_s(&self) -> usize {
        self.agreed_s
    }

    /// Per-cluster metadata, indexed by cluster id.
    #[inline]
    pub fn clusters(&self) -> &[ClusterMeta] {
        &self.clusters
    }

    /// Number of described clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Identifies the covering set `C^Q` (Eq. 2) — protocol step 1(i).
    pub fn covering(&self, query: &RangeQuery) -> Vec<ClusterId> {
        self.clusters
            .iter()
            .filter(|m| m.covers(query))
            .map(|m| m.id())
            .collect()
    }

    /// Approximated proportions `R̂` for the given covering set — protocol
    /// step 1(ii).
    pub fn proportions(&self, query: &RangeQuery, covering: &[ClusterId]) -> Vec<f64> {
        covering
            .iter()
            .map(|&id| self.clusters[id as usize].r_query(query, self.agreed_s))
            .collect()
    }

    /// Folds one appended row into the provider metadata — the incremental
    /// maintenance path of streaming ingest. `cluster` and `new_cluster`
    /// come from the matching [`crate::store::ClusterStore::append_row`]
    /// outcome; when the append opened a fresh cluster, an empty
    /// [`ClusterMeta`] with `arity` dimensions is created for it first.
    ///
    /// On uncoarsened metadata this is exactly equivalent to re-running
    /// Algorithm 1 ([`ProviderMeta::build`]) over the grown store
    /// (property-tested below). On coarsened metadata it stays *sound*
    /// (min/max exact, so covering never misses) but tail resolution drifts
    /// from a fresh coarsen — the refresh policy's job is to bound that.
    pub fn append_row(&mut self, cluster: ClusterId, new_cluster: bool, row: &Row, arity: usize) {
        if new_cluster {
            debug_assert_eq!(cluster as usize, self.clusters.len());
            self.clusters.push(ClusterMeta {
                id: cluster,
                len: 0,
                dims: vec![DimMeta::from_column(&[]); arity],
            });
        }
        self.clusters[cluster as usize].append_row(row);
    }

    /// A histogram-resolution copy of the whole provider metadata: every
    /// dimension of every cluster keeps at most `buckets` tail entries.
    pub fn coarsened(&self, buckets: usize) -> ProviderMeta {
        ProviderMeta {
            agreed_s: self.agreed_s,
            clusters: self
                .clusters
                .iter()
                .map(|c| ClusterMeta {
                    id: c.id,
                    len: c.len,
                    dims: c.dims.iter().map(|d| d.coarsened(buckets)).collect(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedaqp_model::{Aggregate, Dimension, Domain, Range, RangeQuery, Row, Schema};

    use crate::store::PartitionStrategy;

    fn dim_meta(col: &[Value]) -> DimMeta {
        DimMeta::from_column(col)
    }

    #[test]
    fn tail_counts_exact() {
        let m = dim_meta(&[5, 1, 3, 3, 9, 5]);
        assert_eq!(m.tail_count(0), 6);
        assert_eq!(m.tail_count(1), 6);
        assert_eq!(m.tail_count(2), 5);
        assert_eq!(m.tail_count(3), 5);
        assert_eq!(m.tail_count(4), 3);
        assert_eq!(m.tail_count(5), 3);
        assert_eq!(m.tail_count(6), 1);
        assert_eq!(m.tail_count(9), 1);
        assert_eq!(m.tail_count(10), 0);
    }

    #[test]
    fn range_count_is_inclusive() {
        let m = dim_meta(&[1, 2, 3, 4, 5]);
        assert_eq!(m.range_count(2, 4), 3);
        assert_eq!(m.range_count(1, 5), 5);
        assert_eq!(m.range_count(5, 5), 1);
        assert_eq!(m.range_count(6, 9), 0);
        assert_eq!(m.range_count(4, 2), 0);
    }

    #[test]
    fn insert_matches_rebuild() {
        let mut m = dim_meta(&[5, 1, 3]);
        m.insert(3); // duplicate of a stored value
        m.insert(9); // new maximum
        m.insert(0); // new minimum
        assert_eq!(m, dim_meta(&[5, 1, 3, 3, 9, 0]));
        let mut empty = dim_meta(&[]);
        empty.insert(4);
        assert_eq!(empty, dim_meta(&[4]));
    }

    #[test]
    fn min_max() {
        let m = dim_meta(&[7, 3, 9]);
        assert_eq!(m.min(), Some(3));
        assert_eq!(m.max(), Some(9));
        let empty = dim_meta(&[]);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
    }

    fn demo_store() -> ClusterStore {
        let schema = Schema::new(vec![
            Dimension::new("a", Domain::new(0, 99).unwrap()),
            Dimension::new("b", Domain::new(0, 99).unwrap()),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..40)
            .map(|i| Row::cell(vec![i as i64 * 2, 99 - i as i64], 1))
            .collect();
        ClusterStore::build(schema, rows, 10, PartitionStrategy::SortedBy(0)).unwrap()
    }

    #[test]
    fn covering_prunes_by_min_max() {
        let store = demo_store();
        let meta = ProviderMeta::build(&store, 10);
        // dim-0 values are 0,2,…,78 sorted; clusters hold bands of 10 rows:
        // [0..18], [20..38], [40..58], [60..78].
        let q = RangeQuery::new(Aggregate::Count, vec![Range::new(0, 25, 45).unwrap()]).unwrap();
        let cov = meta.covering(&q);
        assert_eq!(cov, vec![1, 2]);
    }

    #[test]
    fn covering_never_misses_matching_clusters() {
        // Soundness: any cluster with a matching row must appear in C^Q.
        let store = demo_store();
        let meta = ProviderMeta::build(&store, 10);
        let q = RangeQuery::new(
            Aggregate::Count,
            vec![
                Range::new(0, 10, 70).unwrap(),
                Range::new(1, 40, 90).unwrap(),
            ],
        )
        .unwrap();
        let cov = meta.covering(&q);
        for c in store.clusters() {
            if c.matching_rows(q.ranges()) > 0 {
                assert!(cov.contains(&c.id()), "cluster {} pruned wrongly", c.id());
            }
        }
    }

    #[test]
    fn r_query_single_dim_is_exact() {
        // With one queried dimension the independence assumption is vacuous:
        // R·S must equal the exact matching-row count.
        let store = demo_store();
        let meta = ProviderMeta::build(&store, 10);
        let q = RangeQuery::new(Aggregate::Count, vec![Range::new(0, 20, 38).unwrap()]).unwrap();
        for c in store.clusters() {
            let exact = c.matching_rows(q.ranges()) as f64;
            let r = meta.clusters()[c.id() as usize].r_query(&q, 10);
            assert!((r * 10.0 - exact).abs() < 1e-9, "cluster {}", c.id());
        }
    }

    #[test]
    fn proportions_bounded_by_len_over_s() {
        let store = demo_store();
        let meta = ProviderMeta::build(&store, 10);
        let q = RangeQuery::new(
            Aggregate::Count,
            vec![Range::new(0, 0, 99).unwrap(), Range::new(1, 0, 99).unwrap()],
        )
        .unwrap();
        let cov = meta.covering(&q);
        for (r, &id) in meta.proportions(&q, &cov).iter().zip(&cov) {
            let len = meta.clusters()[id as usize].len() as f64;
            assert!(*r >= 0.0 && *r <= len / 10.0 + 1e-12);
        }
    }

    #[test]
    fn agreed_s_scales_proportions() {
        let store = demo_store();
        let q = RangeQuery::new(Aggregate::Count, vec![Range::new(0, 0, 99).unwrap()]).unwrap();
        let meta10 = ProviderMeta::build(&store, 10);
        let meta20 = ProviderMeta::build(&store, 20);
        let cov = meta10.covering(&q);
        let p10 = meta10.proportions(&q, &cov);
        let p20 = meta20.proportions(&q, &cov);
        for (a, b) in p10.iter().zip(&p20) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_cluster_covers_nothing() {
        let c = Cluster::from_rows(0, 1, &[], 4).unwrap();
        let m = ClusterMeta::from_cluster(&c);
        let q = RangeQuery::new(Aggregate::Count, vec![Range::new(0, 0, 100).unwrap()]).unwrap();
        assert!(!m.covers(&q));
        assert_eq!(m.r_query(&q, 4), 0.0);
    }

    #[test]
    fn n_entries_counts_distinct_values() {
        let rows = vec![
            Row::raw(vec![1, 5]),
            Row::raw(vec![1, 6]),
            Row::raw(vec![2, 6]),
        ];
        let c = Cluster::from_rows(0, 2, &rows, 4).unwrap();
        let m = ClusterMeta::from_cluster(&c);
        assert_eq!(m.n_entries(), 2 + 2);
    }
}

#[cfg(test)]
mod coarsen_tests {
    use super::*;

    #[test]
    fn coarsened_keeps_extremes_and_shrinks() {
        let col: Vec<Value> = (0..200).collect();
        let full = DimMeta::from_column(&col);
        let coarse = full.coarsened(16);
        assert!(coarse.n_values() <= 17);
        assert_eq!(coarse.min(), full.min());
        assert_eq!(coarse.max(), full.max());
    }

    #[test]
    fn coarsened_tails_are_monotone_and_bounded() {
        let col: Vec<Value> = (0..300).map(|i| (i * 7) % 100).collect();
        let full = DimMeta::from_column(&col);
        let coarse = full.coarsened(8);
        let mut prev = u32::MAX;
        for x in -5..105 {
            let t = coarse.tail_count(x);
            assert!(t <= prev);
            prev = t;
            // Coarse tails never exceed the exact tail at the same probe
            // (snapping moves to a later boundary, dropping rows).
            assert!(t <= full.tail_count(x));
        }
    }

    #[test]
    fn small_metadata_returns_self() {
        let col = vec![1, 2, 3];
        let full = DimMeta::from_column(&col);
        assert_eq!(full.coarsened(10), full);
        assert_eq!(full.coarsened(0), full);
    }

    #[test]
    fn provider_coarsening_reduces_encoded_size() {
        use crate::codec::encode_provider_meta;
        use crate::store::{ClusterStore, PartitionStrategy};
        use fedaqp_model::{Dimension, Domain, Row, Schema};
        let schema = Schema::new(vec![Dimension::new("x", Domain::new(0, 999).unwrap())]).unwrap();
        let rows: Vec<Row> = (0..3000)
            .map(|i| Row::raw(vec![(i * 17 % 1000) as i64]))
            .collect();
        let store = ClusterStore::build(schema, rows, 500, PartitionStrategy::SortedBy(0)).unwrap();
        let full = ProviderMeta::build(&store, 500);
        let coarse = full.coarsened(16);
        let full_bytes = encode_provider_meta(&full).len();
        let coarse_bytes = encode_provider_meta(&coarse).len();
        assert!(
            coarse_bytes * 4 < full_bytes,
            "coarse {coarse_bytes} vs full {full_bytes}"
        );
        // Covering sets stay identical (extremes retained).
        let q = fedaqp_model::RangeQuery::new(
            fedaqp_model::Aggregate::Count,
            vec![fedaqp_model::Range::new(0, 100, 700).unwrap()],
        )
        .unwrap();
        assert_eq!(full.covering(&q), coarse.covering(&q));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `tail_count` matches a brute-force scan for arbitrary columns and
        /// probes.
        #[test]
        fn tail_count_matches_bruteforce(
            col in proptest::collection::vec(-50i64..50, 0..300),
            probe in -60i64..60,
        ) {
            let m = DimMeta::from_column(&col);
            let expected = col.iter().filter(|&&v| v >= probe).count() as u32;
            prop_assert_eq!(m.tail_count(probe), expected);
        }

        /// `range_count` matches a brute-force inclusive scan.
        #[test]
        fn range_count_matches_bruteforce(
            col in proptest::collection::vec(-50i64..50, 0..300),
            lo in -60i64..60,
            width in 0i64..40,
        ) {
            let m = DimMeta::from_column(&col);
            let hi = lo + width;
            let expected = col.iter().filter(|&&v| lo <= v && v <= hi).count() as u32;
            prop_assert_eq!(m.range_count(lo, hi), expected);
        }

        /// Tail counts are monotone non-increasing in the probe.
        #[test]
        fn tail_monotone(col in proptest::collection::vec(-50i64..50, 1..200)) {
            let m = DimMeta::from_column(&col);
            let mut prev = u32::MAX;
            for x in -55..55 {
                let t = m.tail_count(x);
                prop_assert!(t <= prev);
                prev = t;
            }
        }

        /// Folding values in one at a time equals rebuilding from scratch.
        #[test]
        fn dim_insert_matches_from_column(
            base in proptest::collection::vec(-50i64..50, 0..150),
            extra in proptest::collection::vec(-50i64..50, 1..150),
        ) {
            let mut m = DimMeta::from_column(&base);
            for &v in &extra {
                m.insert(v);
            }
            let mut all = base;
            all.extend_from_slice(&extra);
            prop_assert_eq!(m, DimMeta::from_column(&all));
        }

        /// N appended rows via incremental `ProviderMeta` maintenance ≡ a
        /// from-scratch Algorithm 1 recompute over the grown store: same
        /// cluster count, same per-cluster lengths, same tails, same
        /// min/max bounds (full structural equality).
        #[test]
        fn incremental_append_matches_full_recompute(
            seed in proptest::collection::vec((0i64..50, 0i64..50, 1u64..4), 0..60),
            appended in proptest::collection::vec((0i64..50, 0i64..50, 1u64..4), 1..60),
            capacity in 1usize..9,
        ) {
            use crate::store::{ClusterStore, PartitionStrategy};
            use fedaqp_model::{Dimension, Domain, Schema};
            let schema = Schema::new(vec![
                Dimension::new("a", Domain::new(0, 49).unwrap()),
                Dimension::new("b", Domain::new(0, 49).unwrap()),
            ])
            .unwrap();
            let rows: Vec<Row> = seed
                .iter()
                .map(|&(a, b, m)| Row::cell(vec![a, b], m))
                .collect();
            let mut store = ClusterStore::build(
                schema,
                rows,
                capacity,
                PartitionStrategy::SortedBy(0),
            )
            .unwrap();
            let mut meta = ProviderMeta::build(&store, capacity);
            for &(a, b, m) in &appended {
                let row = Row::cell(vec![a, b], m);
                let out = store.append_row(row.clone()).unwrap();
                meta.append_row(out.cluster, out.new_cluster, &row, 2);
            }
            prop_assert_eq!(&meta, &ProviderMeta::build(&store, capacity));
        }
    }
}
