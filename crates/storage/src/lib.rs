//! Cluster storage engine and metadata for `fedaqp`.
//!
//! Modern systems "split/store a big table T into a set of smaller,
//! manageable entities" (§3) — PostgreSQL pages, HDFS blocks, … The paper
//! calls these *clusters* and assumes every provider stores its partition as
//! clusters of an agreed maximum size `S`. This crate provides:
//!
//! * [`cluster::Cluster`] — a bounded, column-oriented storage entity with a
//!   per-cluster scan (the unit of both sampling and cost).
//! * [`store::ClusterStore`] — a provider's local table as a cluster set,
//!   with partitioning strategies controlling the row→cluster layout.
//! * [`meta`] — the offline metadata of Algorithm 1: for every cluster and
//!   dimension the tail proportions `R_{d≥}(v)` at every distinct value, and
//!   globally the per-dimension `[v_min, v_max]` used to identify the
//!   covering set `C^Q` (Eq. 2) without touching data.
//! * [`codec`] — a compact binary on-disk format for the metadata, used to
//!   report the "metadata space allocation" numbers of §6.1.

pub mod cluster;
pub mod codec;
pub mod error;
pub mod meta;
pub mod store;
pub mod store_codec;

pub use cluster::{Cluster, ClusterId};
pub use codec::{declared_len_fits, decode_provider_meta, encode_provider_meta, MetaSpaceReport};
pub use error::StorageError;
pub use meta::{ClusterMeta, DimMeta, ProviderMeta};
pub use store::{AppendOutcome, ClusterStore, PartitionStrategy};
pub use store_codec::{decode_store, encode_store};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
