//! Compact binary serialization of provider metadata.
//!
//! The paper reports the on-disk metadata footprint ("about 11 MB for
//! Amazon Review, 6.4 MB for Adult", §6.1) to argue that Algorithm 1's cost
//! is negligible relative to the data. This codec defines the equivalent
//! artifact for our build: a little-endian, length-prefixed layout with
//! delta-encoded values, plus [`MetaSpaceReport`] for the space-accounting
//! experiment (`repro metadata`).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  u32  = 0x4651_4D44  ("FQMD")
//! version u16
//! agreed_s u64
//! n_clusters u32
//! per cluster:
//!   id u32, len u32, n_dims u16
//!   per dim:
//!     n_values u32
//!     values: first i64, then zig-zag varint deltas
//!     tails:  u32 varints (strictly decreasing suffix counts)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::meta::{ClusterMeta, DimMeta, ProviderMeta};
use crate::{Result, StorageError};

const MAGIC: u32 = 0x4651_4D44;
const VERSION: u16 = 1;

/// Space accounting for one provider's encoded metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaSpaceReport {
    /// Total encoded bytes.
    pub total_bytes: usize,
    /// Number of clusters described.
    pub n_clusters: usize,
}

impl MetaSpaceReport {
    /// Average encoded bytes per cluster (the paper reports 56–64 KB per
    /// cluster at its scales).
    pub fn bytes_per_cluster(&self) -> f64 {
        if self.n_clusters == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.n_clusters as f64
        }
    }
}

/// Whether a length-prefixed collection's declared element count can
/// possibly fit in the bytes still available, given a (conservative)
/// minimum encoded size per element.
///
/// Length-prefixed binary formats must never trust a declared count before
/// bounding it: a hostile 4-byte prefix can claim 4 billion elements and
/// drive `Vec::with_capacity` (or a decode loop) far past the actual input.
/// Checking `declared * min_bytes_each <= remaining` rejects every such
/// claim up front — any count that passes is bounded by the input size
/// itself. Shared by this metadata codec and the `fedaqp-net` wire codec.
#[inline]
pub fn declared_len_fits(declared: usize, min_bytes_each: usize, remaining: usize) -> bool {
    declared
        .checked_mul(min_bytes_each.max(1))
        .is_some_and(|need| need <= remaining)
}

/// Encodes provider metadata into its binary form.
pub fn encode_provider_meta(meta: &ProviderMeta) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(meta.agreed_s() as u64);
    buf.put_u32_le(meta.n_clusters() as u32);
    for cm in meta.clusters() {
        buf.put_u32_le(cm.id());
        buf.put_u32_le(cm.len());
        buf.put_u16_le(cm.dims().len() as u16);
        for dm in cm.dims() {
            encode_dim(&mut buf, dm);
        }
    }
    buf.freeze()
}

fn encode_dim(buf: &mut BytesMut, dm: &DimMeta) {
    let values = dm.values();
    let tails = dm.tails();
    buf.put_u32_le(values.len() as u32);
    let mut prev = 0i64;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            buf.put_i64_le(v);
        } else {
            put_uvarint(buf, zigzag(v - prev));
        }
        prev = v;
    }
    for &t in tails {
        put_uvarint(buf, t as u64);
    }
}

/// Decodes provider metadata from its binary form.
pub fn decode_provider_meta(mut data: &[u8]) -> Result<ProviderMeta> {
    if data.remaining() < 4 + 2 + 8 + 4 {
        return Err(StorageError::Corrupt("header truncated"));
    }
    if data.get_u32_le() != MAGIC {
        return Err(StorageError::Corrupt("bad magic"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }
    let agreed_s = data.get_u64_le() as usize;
    if agreed_s == 0 {
        return Err(StorageError::Corrupt("agreed S is zero"));
    }
    let n_clusters = data.get_u32_le() as usize;
    // Every cluster costs at least its 10-byte header; a declared count
    // that cannot fit is rejected before any allocation trusts it.
    if !declared_len_fits(n_clusters, 4 + 4 + 2, data.remaining()) {
        return Err(StorageError::Corrupt("declared cluster count too large"));
    }
    let mut clusters = Vec::with_capacity(n_clusters);
    for _ in 0..n_clusters {
        if data.remaining() < 4 + 4 + 2 {
            return Err(StorageError::Corrupt("cluster header truncated"));
        }
        let id = data.get_u32_le();
        let len = data.get_u32_le();
        let n_dims = data.get_u16_le() as usize;
        // Each dimension costs at least its 4-byte value-count prefix.
        if !declared_len_fits(n_dims, 4, data.remaining()) {
            return Err(StorageError::Corrupt("declared dimension count too large"));
        }
        let mut dims = Vec::with_capacity(n_dims);
        for _ in 0..n_dims {
            dims.push(decode_dim(&mut data, len)?);
        }
        clusters.push(ClusterMeta::from_parts(id, len, dims));
    }
    if data.has_remaining() {
        return Err(StorageError::Corrupt("trailing bytes"));
    }
    Ok(ProviderMeta::from_parts(agreed_s, clusters))
}

fn decode_dim(data: &mut &[u8], cluster_len: u32) -> Result<DimMeta> {
    if data.remaining() < 4 {
        return Err(StorageError::Corrupt("dim header truncated"));
    }
    let n = data.get_u32_le() as usize;
    if n > cluster_len as usize {
        return Err(StorageError::Corrupt("more distinct values than rows"));
    }
    // Each entry costs at least one delta varint byte plus one tail varint
    // byte (the first value costs 8): a lower bound of 2 bytes per entry.
    if !declared_len_fits(n, 2, data.remaining()) {
        return Err(StorageError::Corrupt("declared value count too large"));
    }
    let mut values = Vec::with_capacity(n);
    let mut prev = 0i64;
    for i in 0..n {
        let v = if i == 0 {
            if data.remaining() < 8 {
                return Err(StorageError::Corrupt("first value truncated"));
            }
            data.get_i64_le()
        } else {
            let delta = unzigzag(get_uvarint(data)?);
            if delta <= 0 {
                return Err(StorageError::Corrupt("values not strictly ascending"));
            }
            prev.checked_add(delta)
                .ok_or(StorageError::Corrupt("value overflow"))?
        };
        values.push(v);
        prev = v;
    }
    let mut tails = Vec::with_capacity(n);
    let mut prev_tail = u32::MAX;
    for _ in 0..n {
        let t = get_uvarint(data)?;
        if t > cluster_len as u64 || t == 0 {
            return Err(StorageError::Corrupt("tail count out of range"));
        }
        let t = t as u32;
        if t >= prev_tail {
            return Err(StorageError::Corrupt("tails not strictly decreasing"));
        }
        tails.push(t);
        prev_tail = t;
    }
    Ok(DimMeta::from_parts(values, tails))
}

/// Encodes and reports the space footprint in one call.
pub fn meta_space_report(meta: &ProviderMeta) -> MetaSpaceReport {
    let encoded = encode_provider_meta(meta);
    MetaSpaceReport {
        total_bytes: encoded.len(),
        n_clusters: meta.n_clusters(),
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

fn get_uvarint(data: &mut &[u8]) -> Result<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if !data.has_remaining() {
            return Err(StorageError::Corrupt("varint truncated"));
        }
        let b = data.get_u8();
        if shift >= 64 {
            return Err(StorageError::Corrupt("varint overflow"));
        }
        out |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ClusterStore, PartitionStrategy};
    use fedaqp_model::{Dimension, Domain, Row, Schema};

    fn demo_meta() -> ProviderMeta {
        let schema = Schema::new(vec![
            Dimension::new("a", Domain::new(-100, 100).unwrap()),
            Dimension::new("b", Domain::new(0, 999).unwrap()),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..137)
            .map(|i| {
                Row::cell(
                    vec![(i % 37) as i64 - 18, (i * i % 1000) as i64],
                    1 + i as u64 % 5,
                )
            })
            .collect();
        let store = ClusterStore::build(schema, rows, 25, PartitionStrategy::SortedBy(1)).unwrap();
        ProviderMeta::build(&store, 25)
    }

    #[test]
    fn round_trip() {
        let meta = demo_meta();
        let blob = encode_provider_meta(&meta);
        let back = decode_provider_meta(&blob).unwrap();
        assert_eq!(meta, back);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let meta = demo_meta();
        let mut blob = encode_provider_meta(&meta).to_vec();
        blob[0] ^= 0xff;
        assert!(matches!(
            decode_provider_meta(&blob),
            Err(StorageError::Corrupt("bad magic"))
        ));
        let mut blob = encode_provider_meta(&meta).to_vec();
        blob[4] = 99;
        assert!(matches!(
            decode_provider_meta(&blob),
            Err(StorageError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let meta = demo_meta();
        let blob = encode_provider_meta(&meta);
        // Every strict prefix must fail loudly, never panic.
        for cut in 0..blob.len() {
            assert!(
                decode_provider_meta(&blob[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let meta = demo_meta();
        let mut blob = encode_provider_meta(&meta).to_vec();
        blob.push(0);
        assert!(matches!(
            decode_provider_meta(&blob),
            Err(StorageError::Corrupt("trailing bytes"))
        ));
    }

    #[test]
    fn rejects_absurd_declared_counts() {
        // A header claiming u32::MAX clusters over a near-empty body must
        // fail on the bound check, not allocate or scan 4 billion entries.
        let mut blob = BytesMut::new();
        blob.put_u32_le(MAGIC);
        blob.put_u16_le(VERSION);
        blob.put_u64_le(25);
        blob.put_u32_le(u32::MAX);
        assert!(matches!(
            decode_provider_meta(&blob.freeze()),
            Err(StorageError::Corrupt("declared cluster count too large"))
        ));

        // A cluster claiming u16::MAX dimensions with no bytes behind it.
        let mut blob = BytesMut::new();
        blob.put_u32_le(MAGIC);
        blob.put_u16_le(VERSION);
        blob.put_u64_le(25);
        blob.put_u32_le(1);
        blob.put_u32_le(0); // cluster id
        blob.put_u32_le(10); // cluster len
        blob.put_u16_le(u16::MAX); // dims
        assert!(matches!(
            decode_provider_meta(&blob.freeze()),
            Err(StorageError::Corrupt("declared dimension count too large"))
        ));

        // A dimension claiming more values than the remaining bytes could
        // ever encode (cluster len is inflated so the row-count check is
        // not the guard that fires).
        let mut blob = BytesMut::new();
        blob.put_u32_le(MAGIC);
        blob.put_u16_le(VERSION);
        blob.put_u64_le(25);
        blob.put_u32_le(1);
        blob.put_u32_le(0); // cluster id
        blob.put_u32_le(u32::MAX); // cluster len (hostile)
        blob.put_u16_le(1); // dims
        blob.put_u32_le(1 << 30); // declared distinct values
        assert!(matches!(
            decode_provider_meta(&blob.freeze()),
            Err(StorageError::Corrupt("declared value count too large"))
        ));
    }

    #[test]
    fn declared_len_guard_bounds() {
        assert!(declared_len_fits(0, 10, 0));
        assert!(declared_len_fits(4, 10, 40));
        assert!(!declared_len_fits(5, 10, 40));
        // A zero per-element floor is clamped to 1 byte.
        assert!(!declared_len_fits(41, 0, 40));
        // Overflowing products are rejected, not wrapped.
        assert!(!declared_len_fits(usize::MAX, 8, usize::MAX));
    }

    #[test]
    fn space_report_counts() {
        let meta = demo_meta();
        let report = meta_space_report(&meta);
        assert_eq!(report.n_clusters, meta.n_clusters());
        assert!(report.total_bytes > 0);
        assert!(report.bytes_per_cluster() > 0.0);
        let empty = MetaSpaceReport {
            total_bytes: 0,
            n_clusters: 0,
        };
        assert_eq!(empty.bytes_per_cluster(), 0.0);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [-1i64, 0, 1, 63, -64, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = BytesMut::new();
        let vals = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &vals {
            put_uvarint(&mut buf, v);
        }
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        for &v in &vals {
            assert_eq!(get_uvarint(&mut slice).unwrap(), v);
        }
        assert!(!slice.has_remaining());
    }

    #[test]
    fn encoding_is_compact() {
        // Delta + varint encoding should beat a naive 12-bytes-per-entry
        // layout on sorted integer data.
        let meta = demo_meta();
        let naive: usize = meta
            .clusters()
            .iter()
            .map(|c| c.n_entries() * 12 + 10)
            .sum();
        let blob = encode_provider_meta(&meta);
        assert!(
            blob.len() < naive,
            "encoded {} bytes vs naive {naive}",
            blob.len()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::store::{ClusterStore, PartitionStrategy};
    use fedaqp_model::{Dimension, Domain, Row, Schema};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Encode/decode round-trips for arbitrary stores.
        #[test]
        fn round_trip_arbitrary(
            raw in proptest::collection::vec((-1000i64..1000, 0i64..50, 1u64..20), 1..120),
            capacity in 1usize..40,
        ) {
            let schema = Schema::new(vec![
                Dimension::new("x", Domain::new(-1000, 1000).unwrap()),
                Dimension::new("y", Domain::new(0, 50).unwrap()),
            ]).unwrap();
            let rows: Vec<Row> = raw
                .into_iter()
                .map(|(x, y, m)| Row::cell(vec![x, y], m))
                .collect();
            let store = ClusterStore::build(schema, rows, capacity, PartitionStrategy::Sequential).unwrap();
            let meta = ProviderMeta::build(&store, capacity);
            let blob = encode_provider_meta(&meta);
            let back = decode_provider_meta(&blob).unwrap();
            prop_assert_eq!(meta, back);
        }
    }
}
