//! A provider's local table stored as a set of clusters.

use fedaqp_model::{RangeQuery, Row, Schema};

use crate::cluster::{Cluster, ClusterId};
use crate::{Result, StorageError};

/// How rows are laid out into clusters.
///
/// The layout determines how skewed the per-cluster value distributions are,
/// which is exactly what distribution-aware sampling exploits: "the
/// assumption of a uniform distribution of rows among all clusters is rarely
/// valid in real databases" (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Keep input order and chunk. With generator output this approximates
    /// insertion order (mild locality).
    Sequential,
    /// Sort by one dimension, then chunk — models a clustered index /
    /// naturally ordered pages; produces strong per-cluster locality and is
    /// the evaluation default.
    SortedBy(usize),
    /// Sort lexicographically by all dimensions, then chunk — the layout a
    /// count tensor materialized in dimension order would have.
    SortedLex,
    /// Round-robin rows across clusters — the adversarial, *uniform* layout
    /// where cluster sampling has nothing to exploit (ablation baseline).
    RoundRobin,
}

/// Where [`ClusterStore::append_row`] put a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// The cluster the row landed in.
    pub cluster: ClusterId,
    /// Whether that cluster was freshly opened by this append.
    pub new_cluster: bool,
}

/// The cluster-resident table of one data provider.
#[derive(Debug, Clone)]
pub struct ClusterStore {
    schema: Schema,
    capacity: usize,
    clusters: Vec<Cluster>,
}

impl ClusterStore {
    /// Partitions `rows` into clusters of at most `capacity` cells using
    /// `strategy`.
    pub fn build(
        schema: Schema,
        mut rows: Vec<Row>,
        capacity: usize,
        strategy: PartitionStrategy,
    ) -> Result<Self> {
        if capacity == 0 {
            return Err(StorageError::ZeroCapacity);
        }
        for r in &rows {
            schema.check_row(r)?;
        }
        match strategy {
            PartitionStrategy::Sequential => {}
            PartitionStrategy::SortedBy(d) => {
                if d >= schema.arity() {
                    return Err(fedaqp_model::ModelError::DimensionIndexOutOfBounds {
                        index: d,
                        len: schema.arity(),
                    }
                    .into());
                }
                rows.sort_by_key(|r| r.value(d));
            }
            PartitionStrategy::SortedLex => {
                rows.sort_by(|a, b| a.values().cmp(b.values()));
            }
            PartitionStrategy::RoundRobin => {
                let n_clusters = rows.len().div_ceil(capacity).max(1);
                // Stable round-robin: row i goes to cluster i % n_clusters.
                let mut buckets: Vec<Vec<Row>> = vec![Vec::new(); n_clusters];
                for (i, r) in rows.drain(..).enumerate() {
                    buckets[i % n_clusters].push(r);
                }
                rows = buckets.into_iter().flatten().collect();
            }
        }
        let arity = schema.arity();
        let mut clusters = Vec::with_capacity(rows.len().div_ceil(capacity));
        for (i, chunk) in rows.chunks(capacity.max(1)).enumerate() {
            clusters.push(Cluster::from_rows(i as ClusterId, arity, chunk, capacity)?);
        }
        Ok(Self {
            schema,
            capacity,
            clusters,
        })
    }

    /// Rebuilds a store from pre-validated parts (the store codec).
    pub(crate) fn from_parts(
        schema: Schema,
        capacity: usize,
        clusters: Vec<Cluster>,
    ) -> Result<Self> {
        if capacity == 0 {
            return Err(StorageError::ZeroCapacity);
        }
        Ok(Self {
            schema,
            capacity,
            clusters,
        })
    }

    /// The table schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The agreed per-cluster capacity `S`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// All clusters.
    #[inline]
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters `N`.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Cluster by id.
    pub fn cluster(&self, id: ClusterId) -> Result<&Cluster> {
        self.clusters
            .get(id as usize)
            .ok_or(StorageError::UnknownCluster(id))
    }

    /// Total stored cells.
    pub fn total_rows(&self) -> usize {
        self.clusters.iter().map(|c| c.len()).sum()
    }

    /// Total raw rows (Σ measure).
    pub fn total_measure(&self) -> u64 {
        self.clusters.iter().map(|c| c.total_measure()).sum()
    }

    /// Appends one row to the tail cluster, opening a new cluster when the
    /// tail is at capacity — the streaming-ingest counterpart of
    /// [`ClusterStore::build`].
    ///
    /// Appended rows keep arrival order (the [`PartitionStrategy::Sequential`]
    /// layout): a store built with a sorted strategy keeps the locality of
    /// its existing clusters and grows a sequential tail, which is exactly
    /// the drift a staleness-bounded rebuild policy exists to cap.
    pub fn append_row(&mut self, row: Row) -> Result<AppendOutcome> {
        self.schema.check_row(&row)?;
        match self.clusters.last_mut() {
            Some(tail) if tail.len() < self.capacity => {
                tail.append_row(&row);
                Ok(AppendOutcome {
                    cluster: tail.id(),
                    new_cluster: false,
                })
            }
            _ => {
                let id = self.clusters.len() as ClusterId;
                self.clusters.push(Cluster::from_rows(
                    id,
                    self.schema.arity(),
                    std::slice::from_ref(&row),
                    self.capacity,
                )?);
                Ok(AppendOutcome {
                    cluster: id,
                    new_cluster: true,
                })
            }
        }
    }

    /// Exact full-scan evaluation — the provider's "normal computation"
    /// baseline of the speed-up metric (§6.1).
    pub fn evaluate_full(&self, query: &RangeQuery) -> u64 {
        self.clusters.iter().map(|c| c.evaluate(query)).sum()
    }

    /// Evaluates the query over a subset of clusters (the sampled set).
    pub fn evaluate_clusters(&self, query: &RangeQuery, ids: &[ClusterId]) -> Result<u64> {
        let mut acc = 0u64;
        for &id in ids {
            acc += self.cluster(id)?.evaluate(query);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedaqp_model::{Aggregate, Dimension, Domain, Range, RangeQuery};

    fn schema() -> Schema {
        Schema::new(vec![
            Dimension::new("a", Domain::new(0, 99).unwrap()),
            Dimension::new("b", Domain::new(0, 99).unwrap()),
        ])
        .unwrap()
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::cell(
                    vec![(i % 100) as i64, ((i * 7) % 100) as i64],
                    1 + (i % 3) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn build_chunks_by_capacity() {
        let s = ClusterStore::build(schema(), rows(25), 10, PartitionStrategy::Sequential).unwrap();
        assert_eq!(s.n_clusters(), 3);
        assert_eq!(s.clusters()[0].len(), 10);
        assert_eq!(s.clusters()[2].len(), 5);
        assert_eq!(s.total_rows(), 25);
    }

    #[test]
    fn sorted_by_gives_value_locality() {
        let s =
            ClusterStore::build(schema(), rows(100), 10, PartitionStrategy::SortedBy(0)).unwrap();
        // Each cluster's dim-0 values form a contiguous sorted band.
        let mut prev_max = i64::MIN;
        for c in s.clusters() {
            let lo = *c.column(0).iter().min().unwrap();
            let hi = *c.column(0).iter().max().unwrap();
            assert!(lo >= prev_max);
            prev_max = hi;
        }
    }

    #[test]
    fn round_robin_spreads_values() {
        let s =
            ClusterStore::build(schema(), rows(100), 10, PartitionStrategy::RoundRobin).unwrap();
        assert_eq!(s.n_clusters(), 10);
        // Every cluster should see both low and high dim-0 values.
        for c in s.clusters() {
            let lo = *c.column(0).iter().min().unwrap();
            let hi = *c.column(0).iter().max().unwrap();
            assert!(hi - lo > 50, "cluster too localized for round-robin");
        }
    }

    #[test]
    fn full_scan_is_partition_invariant() {
        let q = RangeQuery::new(
            Aggregate::Sum,
            vec![
                Range::new(0, 20, 60).unwrap(),
                Range::new(1, 0, 50).unwrap(),
            ],
        )
        .unwrap();
        let exact = {
            let rs = rows(200);
            rs.iter()
                .filter(|r| q.matches(r))
                .map(|r| r.measure())
                .sum::<u64>()
        };
        for strat in [
            PartitionStrategy::Sequential,
            PartitionStrategy::SortedBy(1),
            PartitionStrategy::SortedLex,
            PartitionStrategy::RoundRobin,
        ] {
            let s = ClusterStore::build(schema(), rows(200), 16, strat).unwrap();
            assert_eq!(s.evaluate_full(&q), exact, "strategy {strat:?}");
        }
    }

    #[test]
    fn evaluate_clusters_subsets() {
        let s = ClusterStore::build(schema(), rows(30), 10, PartitionStrategy::Sequential).unwrap();
        let q = RangeQuery::new(Aggregate::Count, vec![Range::new(0, 0, 99).unwrap()]).unwrap();
        let all: u64 = s.evaluate_full(&q);
        let parts =
            s.evaluate_clusters(&q, &[0]).unwrap() + s.evaluate_clusters(&q, &[1, 2]).unwrap();
        assert_eq!(all, parts);
        assert!(s.evaluate_clusters(&q, &[99]).is_err());
    }

    #[test]
    fn append_fills_tail_then_opens_new_cluster() {
        let mut s =
            ClusterStore::build(schema(), rows(25), 10, PartitionStrategy::Sequential).unwrap();
        // Tail cluster holds 5 of 10: the next five appends fill it.
        for i in 0..5 {
            let out = s.append_row(Row::cell(vec![1, 2], 1)).unwrap();
            assert_eq!(
                out,
                AppendOutcome {
                    cluster: 2,
                    new_cluster: false
                },
                "append {i}"
            );
        }
        let out = s.append_row(Row::cell(vec![3, 4], 1)).unwrap();
        assert_eq!(
            out,
            AppendOutcome {
                cluster: 3,
                new_cluster: true
            }
        );
        assert_eq!(s.n_clusters(), 4);
        assert_eq!(s.total_rows(), 31);
        // An appended store answers queries exactly like a rebuilt one.
        let all: Vec<Row> = s.clusters().iter().flat_map(|c| c.rows()).collect();
        let rebuilt =
            ClusterStore::build(schema(), all, 10, PartitionStrategy::Sequential).unwrap();
        let q = RangeQuery::new(Aggregate::Count, vec![Range::new(0, 0, 99).unwrap()]).unwrap();
        assert_eq!(s.evaluate_full(&q), rebuilt.evaluate_full(&q));
    }

    #[test]
    fn append_into_empty_store_opens_cluster_zero() {
        let mut s =
            ClusterStore::build(schema(), Vec::new(), 4, PartitionStrategy::Sequential).unwrap();
        assert_eq!(s.n_clusters(), 0);
        let out = s.append_row(Row::cell(vec![7, 8], 2)).unwrap();
        assert_eq!(
            out,
            AppendOutcome {
                cluster: 0,
                new_cluster: true
            }
        );
        assert_eq!(s.total_measure(), 2);
        // Schema violations are rejected without mutating the store.
        assert!(s.append_row(Row::raw(vec![500, 0])).is_err());
        assert_eq!(s.total_rows(), 1);
    }

    #[test]
    fn build_rejects_bad_rows_and_dims() {
        let bad = vec![Row::raw(vec![200, 0])];
        assert!(ClusterStore::build(schema(), bad, 10, PartitionStrategy::Sequential).is_err());
        assert!(
            ClusterStore::build(schema(), rows(5), 10, PartitionStrategy::SortedBy(9)).is_err()
        );
        assert!(matches!(
            ClusterStore::build(schema(), rows(5), 0, PartitionStrategy::Sequential),
            Err(StorageError::ZeroCapacity)
        ));
    }
}
