//! Binary persistence for a full [`ClusterStore`] (schema + clusters).
//!
//! Metadata persistence ([`crate::codec`]) covers the online protocol; this
//! codec covers the *offline* artifact a provider keeps between sessions:
//! the clustered table itself. Layout (little-endian):
//!
//! ```text
//! magic  u32  = 0x4651_5354  ("FQST")
//! version u16
//! capacity u64
//! schema: n_dims u16, per dim { name_len u16, utf8 name, min i64, max i64 }
//! n_clusters u32
//! per cluster: id u32, len u32,
//!              per dim: len × i64 values,
//!              len × uvarint measures
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fedaqp_model::{Dimension, Domain, Row, Schema};

use crate::cluster::Cluster;
use crate::store::ClusterStore;
use crate::{Result, StorageError};

const MAGIC: u32 = 0x4651_5354;
const VERSION: u16 = 1;

/// Serializes a store to its binary form.
pub fn encode_store(store: &ClusterStore) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + store.total_rows() * 16);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(store.capacity() as u64);
    let schema = store.schema();
    buf.put_u16_le(schema.arity() as u16);
    for d in schema.dimensions() {
        let name = d.name().as_bytes();
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name);
        buf.put_i64_le(d.domain().min());
        buf.put_i64_le(d.domain().max());
    }
    buf.put_u32_le(store.n_clusters() as u32);
    for c in store.clusters() {
        buf.put_u32_le(c.id());
        buf.put_u32_le(c.len() as u32);
        for d in 0..c.arity() {
            for &v in c.column(d) {
                buf.put_i64_le(v);
            }
        }
        for &m in c.measures() {
            put_uvarint(&mut buf, m);
        }
    }
    buf.freeze()
}

/// Deserializes a store from its binary form.
pub fn decode_store(mut data: &[u8]) -> Result<ClusterStore> {
    if data.remaining() < 4 + 2 + 8 + 2 {
        return Err(StorageError::Corrupt("store header truncated"));
    }
    if data.get_u32_le() != MAGIC {
        return Err(StorageError::Corrupt("bad store magic"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }
    let capacity = data.get_u64_le() as usize;
    if capacity == 0 {
        return Err(StorageError::ZeroCapacity);
    }
    let n_dims = data.get_u16_le() as usize;
    let mut dims = Vec::with_capacity(n_dims);
    for _ in 0..n_dims {
        if data.remaining() < 2 {
            return Err(StorageError::Corrupt("dimension header truncated"));
        }
        let name_len = data.get_u16_le() as usize;
        if data.remaining() < name_len + 16 {
            return Err(StorageError::Corrupt("dimension body truncated"));
        }
        let name = std::str::from_utf8(&data[..name_len])
            .map_err(|_| StorageError::Corrupt("dimension name not utf8"))?
            .to_owned();
        data.advance(name_len);
        let min = data.get_i64_le();
        let max = data.get_i64_le();
        let domain = Domain::new(min, max).map_err(StorageError::Model)?;
        dims.push(Dimension::new(name, domain));
    }
    let schema = Schema::new(dims).map_err(StorageError::Model)?;
    if data.remaining() < 4 {
        return Err(StorageError::Corrupt("cluster count truncated"));
    }
    let n_clusters = data.get_u32_le() as usize;
    let mut rows_by_cluster: Vec<(u32, Vec<Row>)> = Vec::with_capacity(n_clusters.min(1 << 20));
    for _ in 0..n_clusters {
        if data.remaining() < 8 {
            return Err(StorageError::Corrupt("cluster header truncated"));
        }
        let id = data.get_u32_le();
        let len = data.get_u32_le() as usize;
        if len > capacity {
            return Err(StorageError::CapacityExceeded {
                rows: len,
                capacity,
            });
        }
        let need = len * schema.arity() * 8;
        if data.remaining() < need {
            return Err(StorageError::Corrupt("cluster columns truncated"));
        }
        let mut cols: Vec<Vec<i64>> = Vec::with_capacity(schema.arity());
        for _ in 0..schema.arity() {
            let mut col = Vec::with_capacity(len);
            for _ in 0..len {
                col.push(data.get_i64_le());
            }
            cols.push(col);
        }
        let mut measures = Vec::with_capacity(len);
        for _ in 0..len {
            measures.push(get_uvarint(&mut data)?);
        }
        let rows: Vec<Row> = (0..len)
            .map(|i| Row::cell(cols.iter().map(|c| c[i]).collect(), measures[i]))
            .collect();
        rows_by_cluster.push((id, rows));
    }
    if data.has_remaining() {
        return Err(StorageError::Corrupt("trailing bytes after store"));
    }
    // Rebuild preserving the original cluster boundaries and ids: clusters
    // were written in id order by `encode_store`; validate and flatten.
    rows_by_cluster.sort_by_key(|(id, _)| *id);
    for (expect, (id, _)) in rows_by_cluster.iter().enumerate() {
        if *id != expect as u32 {
            return Err(StorageError::Corrupt("non-contiguous cluster ids"));
        }
    }
    let clusters: Vec<Cluster> = rows_by_cluster
        .into_iter()
        .map(|(id, rows)| Cluster::from_rows(id, schema.arity(), &rows, capacity))
        .collect::<Result<_>>()?;
    ClusterStore::from_parts(schema, capacity, clusters)
}

fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

fn get_uvarint(data: &mut &[u8]) -> Result<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if !data.has_remaining() {
            return Err(StorageError::Corrupt("measure varint truncated"));
        }
        let b = data.get_u8();
        if shift >= 64 {
            return Err(StorageError::Corrupt("measure varint overflow"));
        }
        out |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PartitionStrategy;
    use fedaqp_model::{Aggregate, Range, RangeQuery};

    fn demo_store() -> ClusterStore {
        let schema = Schema::new(vec![
            Dimension::new("alpha", Domain::new(-500, 500).unwrap()),
            Dimension::new("beta", Domain::new(0, 63).unwrap()),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..157)
            .map(|i| {
                Row::cell(
                    vec![(i as i64 * 13 % 1001) - 500, (i % 64) as i64],
                    1 + (i % 300) as u64,
                )
            })
            .collect();
        ClusterStore::build(schema, rows, 40, PartitionStrategy::SortedBy(0)).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let store = demo_store();
        let blob = encode_store(&store);
        let back = decode_store(&blob).unwrap();
        assert_eq!(back.schema(), store.schema());
        assert_eq!(back.capacity(), store.capacity());
        assert_eq!(back.n_clusters(), store.n_clusters());
        assert_eq!(back.total_rows(), store.total_rows());
        assert_eq!(back.total_measure(), store.total_measure());
        // Cluster contents identical, column by column.
        for (a, b) in store.clusters().iter().zip(back.clusters()) {
            assert_eq!(a, b);
        }
        // Query results identical.
        let q = RangeQuery::new(
            Aggregate::Sum,
            vec![
                Range::new(0, -100, 300).unwrap(),
                Range::new(1, 5, 50).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(store.evaluate_full(&q), back.evaluate_full(&q));
    }

    #[test]
    fn rejects_corruption() {
        let store = demo_store();
        let blob = encode_store(&store).to_vec();
        // Bad magic.
        let mut bad = blob.clone();
        bad[0] ^= 0x55;
        assert!(decode_store(&bad).is_err());
        // Bad version.
        let mut bad = blob.clone();
        bad[4] = 0xFF;
        assert!(matches!(
            decode_store(&bad),
            Err(StorageError::UnsupportedVersion(_))
        ));
        // Trailing garbage.
        let mut bad = blob.clone();
        bad.push(7);
        assert!(decode_store(&bad).is_err());
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let store = demo_store();
        let blob = encode_store(&store);
        for cut in (0..blob.len()).step_by(11) {
            assert!(decode_store(&blob[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let schema = Schema::new(vec![Dimension::new("x", Domain::new(0, 9).unwrap())]).unwrap();
        let store = ClusterStore::build(schema, vec![], 8, PartitionStrategy::Sequential).unwrap();
        let back = decode_store(&encode_store(&store)).unwrap();
        assert_eq!(back.n_clusters(), 0);
        assert_eq!(back.capacity(), 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::store::PartitionStrategy;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Round-trips for arbitrary stores and capacities.
        #[test]
        fn round_trip_arbitrary(
            raw in proptest::collection::vec((-100i64..100, 0i64..20, 1u64..1000), 0..150),
            capacity in 1usize..50,
        ) {
            let schema = Schema::new(vec![
                Dimension::new("x", Domain::new(-100, 100).unwrap()),
                Dimension::new("y", Domain::new(0, 20).unwrap()),
            ]).unwrap();
            let rows: Vec<Row> = raw
                .into_iter()
                .map(|(x, y, m)| Row::cell(vec![x, y], m))
                .collect();
            let store = ClusterStore::build(schema, rows, capacity, PartitionStrategy::Sequential).unwrap();
            let back = decode_store(&encode_store(&store)).unwrap();
            prop_assert_eq!(store.clusters(), back.clusters());
            prop_assert_eq!(store.capacity(), back.capacity());
        }
    }
}
