//! Error type for the federation core.

use std::fmt;

use fedaqp_dp::DpError;
use fedaqp_model::ModelError;
use fedaqp_sampling::SamplingError;
use fedaqp_smc::SmcError;
use fedaqp_storage::StorageError;

/// Errors raised by the federated protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Propagated data-model error.
    Model(ModelError),
    /// Propagated storage error.
    Storage(StorageError),
    /// Propagated DP error.
    Dp(DpError),
    /// Propagated sampling error.
    Sampling(SamplingError),
    /// Propagated SMC error.
    Smc(SmcError),
    /// The federation needs at least one provider.
    NoProviders,
    /// Partition count did not match the configured provider count.
    PartitionMismatch {
        /// Partitions supplied.
        partitions: usize,
        /// Providers configured.
        providers: usize,
    },
    /// The sampling rate must lie in `(0, 1)` (§5, Eq. 4).
    InvalidSamplingRate(f64),
    /// Configuration field out of range.
    BadConfig(&'static str),
    /// Summary count mismatch between protocol phases.
    ProtocolViolation(&'static str),
    /// A GROUP-BY plan would enumerate a domain larger than the configured
    /// cap ([`crate::FederationConfig::max_group_domain`]).
    GroupDomainTooLarge {
        /// The grouped dimension's domain size.
        size: u64,
        /// The configured cap.
        cap: u64,
    },
    /// A downstream engine shard refused a connection or dropped mid-plan.
    /// The coordinator surfaces this as a typed error (never a hangup);
    /// budget already charged for the plan stays charged (fail-closed —
    /// see `docs/privacy-model.md`).
    ShardUnavailable {
        /// Which shard (coordinator shard index, not a provider id).
        shard: usize,
        /// What failed.
        reason: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Dp(e) => write!(f, "dp error: {e}"),
            CoreError::Sampling(e) => write!(f, "sampling error: {e}"),
            CoreError::Smc(e) => write!(f, "smc error: {e}"),
            CoreError::NoProviders => write!(f, "federation needs at least one provider"),
            CoreError::PartitionMismatch {
                partitions,
                providers,
            } => write!(
                f,
                "{partitions} partitions supplied for {providers} providers"
            ),
            CoreError::InvalidSamplingRate(sr) => {
                write!(f, "sampling rate {sr} outside (0, 1)")
            }
            CoreError::BadConfig(what) => write!(f, "bad configuration: {what}"),
            CoreError::ProtocolViolation(what) => write!(f, "protocol violation: {what}"),
            CoreError::GroupDomainTooLarge { size, cap } => write!(
                f,
                "group-by domain of {size} values exceeds the configured cap of {cap}"
            ),
            CoreError::ShardUnavailable { shard, reason } => {
                write!(f, "shard-unavailable: shard {shard}: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            CoreError::Dp(e) => Some(e),
            CoreError::Sampling(e) => Some(e),
            CoreError::Smc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<DpError> for CoreError {
    fn from(e: DpError) -> Self {
        CoreError::Dp(e)
    }
}

impl From<SamplingError> for CoreError {
    fn from(e: SamplingError) -> Self {
        CoreError::Sampling(e)
    }
}

impl From<SmcError> for CoreError {
    fn from(e: SmcError) -> Self {
        CoreError::Smc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error as _;
        let e: CoreError = ModelError::NoRanges.into();
        assert!(e.to_string().contains("model error"));
        assert!(e.source().is_some());
        assert!(CoreError::InvalidSamplingRate(1.5)
            .to_string()
            .contains("1.5"));
        assert!(CoreError::NoProviders.source().is_none());
    }
}
