//! The aggregator: allocation optimization and result finalization.

use std::time::Duration;

use fedaqp_dp::laplace_noise;
use fedaqp_smc::{
    decode_fixed, encode_fixed, shamir_add, shamir_reconstruct, shamir_share, CostModel,
    ShamirShare, SmcRuntime,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::allocation::{allocate_greedy, AllocationInput};
use crate::protocol::{LocalOutcome, ProviderSummary};
use crate::{CoreError, Result};

/// The semi-honest aggregator of Fig. 3(b): receives DP summaries, solves
/// the allocation program, and combines provider results.
///
/// The aggregator never touches raw data; everything it sees is already
/// differentially private (summaries, locally noised results) or secret-
/// shared (SMC mode), so it needs no trust beyond honest-but-curious.
#[derive(Debug)]
pub struct Aggregator {
    rng: StdRng,
    cost_model: CostModel,
}

impl Aggregator {
    /// Creates the aggregator.
    pub fn new(seed: u64, cost_model: CostModel) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0xA66A),
            cost_model,
        }
    }

    /// Protocol step 3: solve Eq. 6 over the received summaries.
    pub fn allocate(&self, summaries: &[ProviderSummary], sampling_rate: f64) -> Result<Vec<u64>> {
        let inputs: Vec<AllocationInput> = summaries
            .iter()
            .map(|s| AllocationInput {
                noisy_n_q: s.noisy_n_q,
                noisy_avg_r: s.noisy_avg_r,
            })
            .collect();
        allocate_greedy(&inputs, sampling_rate)
    }

    /// Local-sampling baseline (§4, ablation): every provider receives
    /// `sr · Ñ^Q_i` with no cross-provider optimization.
    pub fn allocate_local_uniform(
        &self,
        summaries: &[ProviderSummary],
        sampling_rate: f64,
    ) -> Result<Vec<u64>> {
        if summaries.is_empty() {
            return Err(CoreError::NoProviders);
        }
        if !(sampling_rate.is_finite() && 0.0 < sampling_rate && sampling_rate < 1.0) {
            return Err(CoreError::InvalidSamplingRate(sampling_rate));
        }
        Ok(summaries
            .iter()
            .map(|s| {
                let n = s.noisy_n_q.max(1.0);
                ((sampling_rate * n).round() as u64).max(1)
            })
            .collect())
    }

    /// Local-DP finalization: sum the providers' already-noised releases
    /// (post-processing — no extra budget).
    pub fn finalize_local(&self, outcomes: &[LocalOutcome]) -> Result<f64> {
        if outcomes.is_empty() {
            return Err(CoreError::NoProviders);
        }
        let mut total = 0.0;
        for o in outcomes {
            total += o.released.ok_or(CoreError::ProtocolViolation(
                "local-DP finalization requires released values",
            ))?;
        }
        Ok(total)
    }

    /// SMC finalization (protocol step 7, §6.5): obliviously sum the raw
    /// estimates, take the maximum smooth sensitivity, and add a *single*
    /// Laplace noise `Lap(2·max S_LS / ε_E)`.
    ///
    /// Returns the released value and the simulated SMC duration.
    pub fn finalize_smc(
        &mut self,
        outcomes: &[LocalOutcome],
        eps_e: f64,
    ) -> Result<(f64, Duration)> {
        if outcomes.is_empty() {
            return Err(CoreError::NoProviders);
        }
        if !(eps_e.is_finite() && eps_e > 0.0) {
            return Err(CoreError::BadConfig("release budget must be positive"));
        }
        let estimates: Vec<f64> = outcomes.iter().map(|o| o.estimate).collect();
        let sensitivities: Vec<f64> = outcomes.iter().map(|o| o.smooth_ls).collect();
        let mut rt = SmcRuntime::new(outcomes.len().max(2), self.cost_model)?;
        let sum = rt.secure_sum(&mut self.rng, &estimates)?;
        let max_ls = rt.secure_max(&mut self.rng, &sensitivities)?;
        let released = sum + laplace_noise(&mut self.rng, 2.0 * max_ls / eps_e);
        Ok((released, rt.elapsed()))
    }

    /// Dropout-tolerant SMC finalization (extension): providers
    /// Shamir-share their estimates with reconstruction threshold
    /// `threshold`; the release survives any set of at-most
    /// `n − threshold` providers crashing *after* the sharing round
    /// (`dropped_holders` lists their indices). MPyC — the paper's SMC
    /// substrate — is Shamir-based, so this matches its fault model.
    pub fn finalize_smc_with_dropout(
        &mut self,
        outcomes: &[LocalOutcome],
        eps_e: f64,
        threshold: usize,
        dropped_holders: &[usize],
    ) -> Result<(f64, Duration)> {
        let n = outcomes.len();
        if n == 0 {
            return Err(CoreError::NoProviders);
        }
        if !(eps_e.is_finite() && eps_e > 0.0) {
            return Err(CoreError::BadConfig("release budget must be positive"));
        }
        if threshold < 1 || threshold > n {
            return Err(CoreError::BadConfig("threshold must be in [1, n]"));
        }
        let n_parties = n.max(2);
        let mut rt = SmcRuntime::new(n_parties, self.cost_model)?;
        // Sharing round: every provider distributes one Shamir sharing of
        // its fixed-point estimate (costed like the additive path).
        let mut sum_shares: Option<Vec<ShamirShare>> = None;
        for o in outcomes {
            let sharing = shamir_share(
                &mut self.rng,
                encode_fixed(o.estimate).map_err(CoreError::Smc)?,
                threshold,
                n_parties,
            )
            .map_err(CoreError::Smc)?;
            sum_shares = Some(match sum_shares {
                None => sharing,
                Some(acc) => shamir_add(&acc, &sharing).map_err(CoreError::Smc)?,
            });
        }
        let sum_shares = sum_shares.expect("non-empty outcomes");
        // Crash model: dropped holders never publish their share of the sum.
        let surviving: Vec<ShamirShare> = sum_shares
            .iter()
            .enumerate()
            .filter(|(holder, _)| !dropped_holders.contains(holder))
            .map(|(_, s)| *s)
            .collect();
        if surviving.len() < threshold {
            return Err(CoreError::ProtocolViolation(
                "too many providers dropped: sum unrecoverable below the Shamir threshold",
            ));
        }
        // Reconstruction + max-sensitivity rounds (same cost structure as
        // the additive path: one publication round plus the comparison
        // tournament for the max).
        let sum =
            decode_fixed(shamir_reconstruct(&surviving[..threshold]).map_err(CoreError::Smc)?);
        let sensitivities: Vec<f64> = outcomes.iter().map(|o| o.smooth_ls).collect();
        let max_ls = rt.secure_max(&mut self.rng, &sensitivities)?;
        let released = sum + laplace_noise(&mut self.rng, 2.0 * max_ls / eps_e);
        Ok((released, rt.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(provider: usize, released: Option<f64>, estimate: f64, ls: f64) -> LocalOutcome {
        LocalOutcome {
            provider,
            released,
            estimate,
            smooth_ls: ls,
            variance: None,
            approximated: true,
            clusters_scanned: 1,
            n_covering: 10,
        }
    }

    #[test]
    fn allocate_delegates_to_greedy() {
        let agg = Aggregator::new(1, CostModel::zero());
        let summaries = [
            ProviderSummary {
                provider: 0,
                noisy_n_q: 50.0,
                noisy_avg_r: 0.9,
            },
            ProviderSummary {
                provider: 1,
                noisy_n_q: 50.0,
                noisy_avg_r: 0.1,
            },
        ];
        let alloc = agg.allocate(&summaries, 0.2).unwrap();
        assert_eq!(alloc.iter().sum::<u64>(), 20);
        assert!(alloc[0] > alloc[1]);
    }

    #[test]
    fn finalize_local_sums_released() {
        let agg = Aggregator::new(2, CostModel::zero());
        let outs = [
            outcome(0, Some(10.0), 9.0, 1.0),
            outcome(1, Some(20.0), 21.0, 1.0),
        ];
        assert_eq!(agg.finalize_local(&outs).unwrap(), 30.0);
    }

    #[test]
    fn finalize_local_rejects_missing_release() {
        let agg = Aggregator::new(3, CostModel::zero());
        let outs = [outcome(0, None, 9.0, 1.0)];
        assert!(matches!(
            agg.finalize_local(&outs),
            Err(CoreError::ProtocolViolation(_))
        ));
        assert!(matches!(
            agg.finalize_local(&[]),
            Err(CoreError::NoProviders)
        ));
    }

    #[test]
    fn finalize_smc_sums_and_noises_once() {
        let mut agg = Aggregator::new(4, CostModel::zero());
        let outs = [
            outcome(0, None, 100.0, 2.0),
            outcome(1, None, 200.0, 5.0),
            outcome(2, None, 300.0, 1.0),
        ];
        // Average many releases: noise has mean 0, so the mean approaches
        // the exact sum 600 with scale 2·5/ε.
        let trials = 2000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let (v, _) = agg.finalize_smc(&outs, 1.0).unwrap();
            acc += v;
        }
        let mean = acc / trials as f64;
        assert!((mean - 600.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn finalize_smc_reports_duration_under_lan() {
        let mut agg = Aggregator::new(5, CostModel::lan());
        let outs = [outcome(0, None, 1.0, 1.0), outcome(1, None, 2.0, 1.0)];
        let (_, d) = agg.finalize_smc(&outs, 1.0).unwrap();
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn dropout_release_survives_crashes_up_to_threshold() {
        let mut agg = Aggregator::new(7, CostModel::zero());
        let outs = [
            outcome(0, None, 100.0, 1.0),
            outcome(1, None, 200.0, 2.0),
            outcome(2, None, 300.0, 3.0),
            outcome(3, None, 400.0, 4.0),
        ];
        // Threshold 2 of 4: any 2 providers may crash after sharing.
        let trials = 800;
        let mut acc = 0.0;
        for _ in 0..trials {
            let (v, _) = agg
                .finalize_smc_with_dropout(&outs, 5.0, 2, &[1, 3])
                .unwrap();
            acc += v;
        }
        let mean = acc / trials as f64;
        assert!((mean - 1000.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn dropout_below_threshold_fails_loudly() {
        let mut agg = Aggregator::new(8, CostModel::zero());
        let outs = [
            outcome(0, None, 1.0, 1.0),
            outcome(1, None, 2.0, 1.0),
            outcome(2, None, 3.0, 1.0),
        ];
        // Threshold 3 but two holders crash: only 1 survivor < 3.
        assert!(matches!(
            agg.finalize_smc_with_dropout(&outs, 1.0, 3, &[0, 2]),
            Err(CoreError::ProtocolViolation(_))
        ));
        // Bad thresholds rejected.
        assert!(agg.finalize_smc_with_dropout(&outs, 1.0, 0, &[]).is_err());
        assert!(agg.finalize_smc_with_dropout(&outs, 1.0, 4, &[]).is_err());
    }

    #[test]
    fn dropout_release_matches_plain_smc_when_nobody_drops() {
        let mut agg = Aggregator::new(9, CostModel::zero());
        let outs = [outcome(0, None, 50.0, 1.0), outcome(1, None, 75.0, 2.0)];
        let trials = 800;
        let mut acc = 0.0;
        for _ in 0..trials {
            let (v, _) = agg.finalize_smc_with_dropout(&outs, 5.0, 2, &[]).unwrap();
            acc += v;
        }
        let mean = acc / trials as f64;
        assert!((mean - 125.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn finalize_smc_validates_inputs() {
        let mut agg = Aggregator::new(6, CostModel::zero());
        assert!(matches!(
            agg.finalize_smc(&[], 1.0),
            Err(CoreError::NoProviders)
        ));
        let outs = [outcome(0, None, 1.0, 1.0)];
        assert!(agg.finalize_smc(&outs, 0.0).is_err());
        // Single provider still works (runtime pads to 2 parties).
        assert!(agg.finalize_smc(&outs, 1.0).is_ok());
    }
}
