//! Sharded federation: plan fragmentation + the scatter–gather
//! coordinator.
//!
//! A single [`crate::FederationEngine`] runs every provider in one
//! process. This module partitions the providers across *N engine
//! shards* — each a full worker pool of its own, in-process or behind a
//! wire connection — and puts a **coordinator** in front that speaks the
//! analyst surface of an engine while scattering each sub-query as
//! per-shard *fragments* and gathering the mergeable partials back:
//!
//! ```text
//!  analysts ──plans──▶ ShardedFederation ──fragments──▶ shard 0 (providers 0..k)
//!     ▲                 │ occurrence ledger             shard 1 (providers k..m)
//!     │                 │ global allocation (Eq. 6)       …
//!     └── PlanAnswer ◀──┴── merge partials (serial fold, global order)
//! ```
//!
//! **Determinism contract.** A seeded plan is byte-identical between the
//! 1-shard and the N-shard run — serial ≡ concurrent ≡ remote ≡ sharded.
//! Three mechanisms make this hold:
//!
//! 1. *Lane offsets.* Shard `s` holding global providers `[o, o+k)` is
//!    configured with [`FederationConfig::provider_lane_base`] `= o`, so
//!    its local providers `0..k` draw from exactly the RNG lanes the
//!    1-shard engine gives providers `o..o+k`.
//! 2. *One occurrence ledger.* The coordinator owns the per-content
//!    occurrence counters (the same content hash the engine uses) and
//!    passes each fragment its explicit occurrence index — shards never
//!    consult their own ledgers for fragments, so a shard serving two
//!    coordinators (or analyst traffic on the side) cannot skew the
//!    noise streams. See the differencing note in [`crate::engine`].
//! 3. *Serial merge fold.* f64 addition is not associative, so partials
//!    carry *per-provider* released values and the coordinator re-runs
//!    the 1-shard release fold ([`Aggregator::finalize_local`]) over the
//!    global concatenation, in global provider order — bit-exact, not
//!    merely close. MIN/MAX fragments fold exactly (integer domain).
//!
//! The global allocation program (Eq. 6) runs at the coordinator over
//! the concatenated summaries: step 3 is *externalized* on every shard
//! ([`crate::engine::PendingFragment`]), whose workers park after their
//! summaries until the coordinator feeds the globally solved slice back.
//! [`Aggregator::allocate`] is RNG-free, so the coordinator's solution is
//! identical to the one the 1-shard aggregator would compute.
//!
//! **Single-ξ authority.** The coordinator (its sessions, or the serving
//! endpoint's `BudgetDirectory`) is the *only* place analyst budgets are
//! validated and charged: a plan's whole [`QueryPlan::total_cost`] is
//! charged atomically *before* any fragment is scattered, and downstream
//! shards execute fragments budget-unchecked. A shard must therefore
//! accept fragments **only** from its coordinator (the wire layer
//! enforces this by serving fragment frames and analyst frames from
//! disjoint endpoints); the full argument lives in
//! `docs/privacy-model.md`.
//!
//! **Faults.** A shard refusing a connection or dropping mid-plan
//! surfaces as the typed [`CoreError::ShardUnavailable`] — never a
//! hangup. Budget already charged for the plan stays charged
//! (fail-closed, the conservative direction for privacy; pinned by
//! tests). Fragments begun on healthy shards are aborted on drop so
//! their parked workers unblock.
//!
//! **Deadlock discipline.** Every shard engine requires its provider
//! queues to observe jobs in one order; across shards the coordinator
//! holds a global scatter lock across the *begin* calls of one sub-query
//! (and only those — summaries and partials are gathered outside the
//! lock, in parallel across shards, and allocations delivered outside it
//! too), so any two sub-queries begin in the same order on every shard
//! and the per-fragment allocation barriers resolve in queue order.
//!
//! SMC release ([`ReleaseMode::Smc`]) is not shardable — its oblivious
//! sum needs every provider's secret shares in one place — and is
//! rejected at construction with a typed error.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fedaqp_dp::{advanced_per_query, PrivacyCost, QueryBudget, SharedAccountant};
use fedaqp_model::{Extreme, QueryPlan, RangeQuery, Row, Schema, Value};
use fedaqp_obs as obs;

use crate::aggregator::Aggregator;
use crate::config::{AllocationPolicy, FederationConfig, ReleaseMode};
use crate::engine::{
    extreme_content_hash, private_content_hash, EngineHandle, FederationEngine, PendingFragment,
};
use crate::federation::Federation;
use crate::optimizer::{MetaSnapshot, PlanExplanation, ProviderBounds};
use crate::plan::{
    explain_plan_with, submit_plan_with, validate_plan_with, ExtremeOutcome, PendingPlan,
    PlanAnswer, PlanBackend, SubOutcome,
};
use crate::protocol::{combined_ci_halfwidth, query_bytes, LocalOutcome, PhaseTimings};
use crate::session::SessionPlan;
use crate::{CoreError, Result};

/// One provider's slice of a fragment's mergeable partial answer: the
/// locally noised release plus the public per-provider diagnostics the
/// coordinator folds. Raw estimates and smooth sensitivities never leave
/// a shard — the coordinator (like any aggregator) sees only
/// already-released values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialRow {
    /// The provider's locally noised release (protocol step 6).
    pub released: f64,
    /// Hansen–Hurwitz variance of the raw estimate (`None` when
    /// inestimable) — public CI accounting, not a data leak: the 1-shard
    /// engine surfaces the same per-provider variances to its analyst.
    pub variance: Option<f64>,
    /// Whether the provider approximated.
    pub approximated: bool,
    /// Clusters scanned (work proxy).
    pub clusters_scanned: u64,
    /// Covering-set size `N^Q`.
    pub n_covering: u64,
}

/// One shard's mergeable partial for a private fragment: per-provider
/// rows in *local* provider order, plus the shard's slowest-provider
/// execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentPartial {
    /// One row per local provider, in local provider order.
    pub rows: Vec<PartialRow>,
    /// Wall time of the shard's slowest provider (steps 4–6).
    pub execution: Duration,
}

/// Everything a shard needs to run one private fragment. The occurrence
/// index comes from the coordinator's ledger (mechanism 2 of the
/// determinism contract); the shard's own ledger is untouched.
#[derive(Debug, Clone)]
pub struct FragmentSpec {
    /// The range query.
    pub query: RangeQuery,
    /// The sampling rate `sr ∈ (0, 1)`.
    pub sampling_rate: f64,
    /// The per-query budget (already validated and charged upstream).
    pub budget: QueryBudget,
    /// Coordinator-assigned occurrence index for the noise derivation.
    pub occurrence: u64,
}

/// Everything a shard needs to run one MIN/MAX fragment.
#[derive(Debug, Clone, Copy)]
pub struct ExtremeFragmentSpec {
    /// The selected dimension.
    pub dim: usize,
    /// MIN or MAX.
    pub extreme: Extreme,
    /// Per-provider EM budget.
    pub epsilon: f64,
    /// Coordinator-assigned occurrence index.
    pub occurrence: u64,
}

/// One private fragment in flight on a shard: summaries out, allocation
/// in, partial out. Dropping an unallocated handle must abort the
/// fragment so the shard's parked workers unblock (the in-process
/// implementation inherits this from [`PendingFragment`]'s `Drop`; a
/// wire-backed implementation aborts on connection close).
pub trait FragmentHandle: Send {
    /// Blocks until every local provider delivered its step-2 summary;
    /// returns them in local provider order with the slowest provider's
    /// summary time.
    fn summaries(&mut self) -> Result<(Vec<crate::protocol::ProviderSummary>, Duration)>;
    /// Delivers the coordinator's globally solved allocation (this
    /// shard's slice, local provider order).
    fn allocate(&mut self, allocations: &[u64]) -> Result<()>;
    /// Blocks until every local provider executed; returns the shard's
    /// mergeable partial.
    fn partial(&mut self) -> Result<FragmentPartial>;
}

/// One engine shard as the coordinator sees it: provider count and
/// public bounds up front, fragments on demand. Implemented in-process
/// by [`EngineHandle`] and over the wire by the net crate's remote-shard
/// client.
pub trait ShardBackend: Send + Sync {
    /// Number of providers this shard holds.
    fn n_providers(&self) -> usize;
    /// The shard's public per-provider pruning bounds, in local provider
    /// order (offline Algorithm 1 metadata — the coordinator concatenates
    /// these into the global [`MetaSnapshot`]).
    fn bounds(&self) -> Vec<ProviderBounds>;
    /// Begins one private fragment without waiting.
    fn begin(&self, spec: &FragmentSpec) -> Result<Box<dyn FragmentHandle>>;
    /// Runs one MIN/MAX fragment to completion: the shard-local combined
    /// selection plus its slowest provider's execution time.
    fn extreme(&self, spec: &ExtremeFragmentSpec) -> Result<(Value, Duration)>;
}

impl ShardBackend for EngineHandle {
    fn n_providers(&self) -> usize {
        EngineHandle::n_providers(self)
    }

    fn bounds(&self) -> Vec<ProviderBounds> {
        self.meta_snapshot().providers().to_vec()
    }

    fn begin(&self, spec: &FragmentSpec) -> Result<Box<dyn FragmentHandle>> {
        Ok(Box::new(self.submit_fragment(
            &spec.query,
            spec.sampling_rate,
            &spec.budget,
            spec.occurrence,
        )?))
    }

    fn extreme(&self, spec: &ExtremeFragmentSpec) -> Result<(Value, Duration)> {
        let pending =
            self.submit_extreme_fragment(spec.dim, spec.extreme, spec.epsilon, spec.occurrence)?;
        let answer = pending.wait()?;
        Ok((answer.value, answer.execution))
    }
}

impl FragmentHandle for PendingFragment {
    fn summaries(&mut self) -> Result<(Vec<crate::protocol::ProviderSummary>, Duration)> {
        PendingFragment::summaries(self)
    }

    fn allocate(&mut self, allocations: &[u64]) -> Result<()> {
        self.provide_allocation(allocations.to_vec())
    }

    fn partial(&mut self) -> Result<FragmentPartial> {
        PendingFragment::partial(self)
    }
}

/// Shared interior of [`ShardedFederation`].
struct CoordinatorInner {
    /// Coordinator-wide configuration: `n_providers` is the federation
    /// total; `provider_lane_base` the global base (0 unless this
    /// coordinator is itself a shard of a larger one).
    config: FederationConfig,
    schema: Schema,
    /// Global pruning snapshot: the shards' bounds concatenated in shard
    /// order == global provider order.
    snapshot: MetaSnapshot,
    shards: Vec<Box<dyn ShardBackend>>,
    /// Global provider offset of each shard (prefix sums).
    offsets: Vec<usize>,
    /// THE per-content occurrence ledger of the deployment (mechanism 2
    /// of the determinism contract) — same content-hash keys as the
    /// engine's own ledger.
    occurrences: Mutex<HashMap<u64, u64>>,
    /// Global scatter lock: held across the begin calls of one
    /// sub-query so every shard observes sub-queries in one order (see
    /// the module docs' deadlock discipline).
    scatter: Mutex<()>,
    /// Worker pools of in-process shards (empty when the shards are
    /// remote); drained by [`ShardedFederation::shutdown`].
    engines: Mutex<Vec<FederationEngine>>,
}

/// A cloneable, thread-safe handle onto a sharded federation — the
/// scatter–gather coordinator. Implements [`PlanBackend`], so the *same*
/// plan compiler (budget splits, group enumeration, suppression, dedup,
/// cost-ordered submission) that drives [`EngineHandle`] drives the
/// sharded deployment; only the sub-query transport differs.
#[derive(Clone)]
pub struct ShardedFederation {
    inner: Arc<CoordinatorInner>,
}

impl std::fmt::Debug for ShardedFederation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFederation")
            .field("n_shards", &self.inner.shards.len())
            .field("n_providers", &self.inner.config.n_providers)
            .finish()
    }
}

impl ShardedFederation {
    /// Builds an in-process sharded federation: `partitions` (one per
    /// global provider) are split contiguously across `n_shards` worker
    /// pools, each configured with the *same* seed and its global lane
    /// offset — the setup under which N-shard answers are byte-identical
    /// to the 1-shard run.
    pub fn in_process(
        config: FederationConfig,
        schema: Schema,
        partitions: Vec<Vec<Row>>,
        n_shards: usize,
    ) -> Result<Self> {
        config.validate()?;
        reject_unshardable(&config)?;
        if n_shards == 0 || n_shards > config.n_providers {
            return Err(CoreError::BadConfig(
                "shard count must be in [1, n_providers]",
            ));
        }
        if partitions.len() != config.n_providers {
            return Err(CoreError::PartitionMismatch {
                partitions: partitions.len(),
                providers: config.n_providers,
            });
        }
        let mut partitions = partitions.into_iter();
        let mut shards: Vec<Box<dyn ShardBackend>> = Vec::with_capacity(n_shards);
        let mut engines = Vec::with_capacity(n_shards);
        let (base, extra) = (config.n_providers / n_shards, config.n_providers % n_shards);
        let mut offset = 0usize;
        for s in 0..n_shards {
            let k = base + usize::from(s < extra);
            let mut shard_cfg = config.clone();
            shard_cfg.n_providers = k;
            shard_cfg.provider_lane_base = config.provider_lane_base + offset as u64;
            let shard_partitions: Vec<Vec<Row>> = partitions.by_ref().take(k).collect();
            let engine = FederationEngine::start(Federation::build(
                shard_cfg,
                schema.clone(),
                shard_partitions,
            )?);
            shards.push(Box::new(engine.handle()));
            engines.push(engine);
            offset += k;
        }
        Self::assemble(config, schema, shards, engines)
    }

    /// Builds a coordinator over externally provided shard backends (the
    /// net crate federates remote `fedaqp-net` servers this way).
    /// `config.n_providers` must equal the shard total.
    pub fn from_backends(
        config: FederationConfig,
        schema: Schema,
        shards: Vec<Box<dyn ShardBackend>>,
    ) -> Result<Self> {
        config.validate()?;
        reject_unshardable(&config)?;
        if shards.is_empty() {
            return Err(CoreError::BadConfig("coordinator needs at least one shard"));
        }
        Self::assemble(config, schema, shards, Vec::new())
    }

    fn assemble(
        config: FederationConfig,
        schema: Schema,
        shards: Vec<Box<dyn ShardBackend>>,
        engines: Vec<FederationEngine>,
    ) -> Result<Self> {
        let mut offsets = Vec::with_capacity(shards.len());
        let mut bounds = Vec::with_capacity(config.n_providers);
        let mut offset = 0usize;
        for shard in &shards {
            offsets.push(offset);
            let k = shard.n_providers();
            let shard_bounds = shard.bounds();
            if shard_bounds.len() != k {
                return Err(CoreError::ProtocolViolation(
                    "shard bounds do not match its provider count",
                ));
            }
            bounds.extend(shard_bounds);
            offset += k;
        }
        if offset != config.n_providers {
            return Err(CoreError::PartitionMismatch {
                partitions: offset,
                providers: config.n_providers,
            });
        }
        Ok(Self {
            inner: Arc::new(CoordinatorInner {
                config,
                schema,
                snapshot: MetaSnapshot::from_bounds(bounds),
                shards,
                offsets,
                occurrences: Mutex::new(HashMap::new()),
                scatter: Mutex::new(()),
                engines: Mutex::new(engines),
            }),
        })
    }

    /// The coordinator-wide federation configuration.
    pub fn config(&self) -> &FederationConfig {
        &self.inner.config
    }

    /// The public table schema.
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// Number of shards behind this coordinator.
    pub fn n_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Total providers across all shards.
    pub fn n_providers(&self) -> usize {
        self.inner.config.n_providers
    }

    /// The global pruning snapshot (shards' bounds concatenated).
    pub fn meta_snapshot(&self) -> &MetaSnapshot {
        &self.inner.snapshot
    }

    /// The default per-query budget from the configuration.
    pub fn default_budget(&self) -> Result<QueryBudget> {
        self.inner.config.query_budget()
    }

    /// Stops the in-process shard pools (no-op for remote backends,
    /// whose servers are shut down by their owners). Later submissions
    /// on any clone fail cleanly.
    pub fn shutdown(&self) {
        let mut engines = self
            .inner
            .engines
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for engine in engines.drain(..) {
            let _ = engine.shutdown();
        }
    }

    /// Validates a plan without dispatching (or charging) anything —
    /// the sharded twin of [`EngineHandle::validate_plan`].
    pub fn validate_plan(&self, plan: &QueryPlan) -> Result<()> {
        validate_plan_with(self, plan)
    }

    /// Compiles `plan` and scatters **all** of its sub-queries before
    /// returning — the sharded twin of [`EngineHandle::submit_plan`].
    pub fn submit_plan(&self, plan: &QueryPlan) -> Result<PendingPlan<ShardedFederation>> {
        self.validate_plan(plan)?;
        self.submit_plan_validated(plan)
    }

    /// [`Self::submit_plan`] minus the validation pass, for sessions
    /// that validate, charge atomically, then submit.
    pub(crate) fn submit_plan_validated(
        &self,
        plan: &QueryPlan,
    ) -> Result<PendingPlan<ShardedFederation>> {
        submit_plan_with(self, plan)
    }

    /// Submits a plan and waits it out.
    pub fn run_plan(&self, plan: &QueryPlan) -> Result<PlanAnswer> {
        self.submit_plan(plan)?.wait()
    }

    /// `EXPLAIN` on the coordinator: identical decisions to the 1-shard
    /// engine (same optimizer code over the same concatenated bounds).
    pub fn explain_plan(&self, plan: &QueryPlan) -> Result<PlanExplanation> {
        explain_plan_with(self, plan)
    }

    /// Submits one private scalar query under an explicit budget (the
    /// analyst-facing twin of [`EngineHandle::submit_with_budget`]).
    pub fn submit_with_budget(
        &self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
    ) -> Result<ShardedPendingAnswer> {
        let sub = self.scatter(query, sampling_rate, budget)?;
        Ok(ShardedPendingAnswer {
            federation: self.clone(),
            sub,
            cost: budget.cost(),
        })
    }

    /// Fetch-and-increment the occurrence counter for `key`.
    fn next_occurrence(&self, key: u64) -> u64 {
        let mut counts = self
            .inner
            .occurrences
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let slot = counts.entry(key).or_insert(0);
        let index = *slot;
        *slot += 1;
        index
    }

    /// Rebinds a shard-reported error to the coordinator's shard index.
    fn shard_error(&self, shard: usize, error: CoreError) -> CoreError {
        match error {
            CoreError::ShardUnavailable { reason, .. } => {
                obs::counter_add(obs::names::SHARD_UNAVAILABLE, 1);
                CoreError::ShardUnavailable { shard, reason }
            }
            other => other,
        }
    }

    /// The scatter half of one private sub-query: begin a fragment on
    /// every shard (under the global scatter lock), gather and
    /// concatenate the summaries, solve the global allocation, and feed
    /// each shard its slice — synchronously, so the returned handle only
    /// has partials left to gather.
    fn scatter(
        &self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
    ) -> Result<ShardedSub> {
        self.validate_sub(query, sampling_rate, budget)?;
        obs::counter_add(obs::names::SHARD_QUERIES, 1);
        let _span = obs::span("scatter", "shard", obs::SpanId::NONE);
        let scatter_start = Instant::now();
        let inner = &*self.inner;
        let occurrence = self.next_occurrence(private_content_hash(query, sampling_rate, budget));
        let spec = FragmentSpec {
            query: query.clone(),
            sampling_rate,
            budget: *budget,
            occurrence,
        };
        // Begin on every shard in shard order under the scatter lock —
        // and only the begins: holding it across the (blocking) summary
        // gathering would serialize concurrent plans for nothing.
        let mut fragments: Vec<Box<dyn FragmentHandle>> = Vec::with_capacity(inner.shards.len());
        {
            let _order = inner.scatter.lock().unwrap_or_else(PoisonError::into_inner);
            for (s, shard) in inner.shards.iter().enumerate() {
                // One immediate retry absorbs a transient fault (a dropped
                // connection, a mid-restart shard). The spec — and with it
                // the occurrence index — is reused verbatim, so a retried
                // fragment draws byte-identical noise.
                let begun = shard.begin(&spec).or_else(|e| {
                    if matches!(e, CoreError::ShardUnavailable { .. }) {
                        obs::counter_add(obs::names::SHARD_RETRIES, 1);
                        shard.begin(&spec)
                    } else {
                        Err(e)
                    }
                });
                match begun {
                    Ok(fragment) => fragments.push(fragment),
                    // Dropping the already-begun fragments aborts them,
                    // so healthy shards' parked workers unblock.
                    Err(e) => return Err(self.shard_error(s, e)),
                }
            }
        }
        // Gather summaries — in parallel across shards, so one shard's
        // transfer does not idle the others — and concatenate into
        // global provider order.
        let mut summaries = Vec::with_capacity(inner.config.n_providers);
        let mut summary_time = Duration::ZERO;
        let gathered = for_each_fragment(&mut fragments, |fragment| {
            let t = Instant::now();
            fragment.summaries().map(|r| (r, t.elapsed()))
        });
        for (s, result) in gathered.into_iter().enumerate() {
            let (result, wall) = match result.map_err(|e| self.shard_error(s, e)) {
                Ok((r, wall)) => (r, wall),
                Err(e) => return Err(e),
            };
            observe_per_shard(obs::names::SHARD_SCATTER, s, wall);
            let (mut shard_summaries, t) = result;
            if shard_summaries.len() != inner.shards[s].n_providers() {
                return Err(CoreError::ProtocolViolation(
                    "fragment summaries do not match the shard's provider count",
                ));
            }
            summary_time = summary_time.max(t);
            for (i, summary) in shard_summaries.iter_mut().enumerate() {
                summary.provider = inner.offsets[s] + i;
            }
            summaries.extend(shard_summaries);
        }
        // Step 3, globally: the allocation program over *all* summaries.
        // `allocate` is RNG-free, so any aggregator seed reproduces the
        // 1-shard solution exactly.
        let t = Instant::now();
        let aggregator = Aggregator::new(0, inner.config.cost_model);
        let allocations = match inner.config.allocation_policy {
            AllocationPolicy::Optimized => aggregator.allocate(&summaries, sampling_rate)?,
            AllocationPolicy::LocalUniform => {
                aggregator.allocate_local_uniform(&summaries, sampling_rate)?
            }
        };
        let allocation_time = t.elapsed();
        for (s, fragment) in fragments.iter_mut().enumerate() {
            let o = inner.offsets[s];
            let k = inner.shards[s].n_providers();
            fragment
                .allocate(&allocations[o..o + k])
                .map_err(|e| self.shard_error(s, e))?;
        }
        obs::observe_duration(obs::names::SHARD_SCATTER, scatter_start.elapsed());
        Ok(ShardedSub {
            shared: Arc::new(SubShared {
                state: Mutex::new(SubState::Scattered {
                    fragments,
                    summary_time,
                    allocation_time,
                    query_bytes: query_bytes(query),
                    allocations,
                }),
            }),
        })
    }

    /// The gather half: fetch every shard's partial, rebuild the global
    /// outcome rows, and re-run the 1-shard release fold.
    fn gather(
        &self,
        mut fragments: Vec<Box<dyn FragmentHandle>>,
        summary_time: Duration,
        allocation_time: Duration,
        query_bytes: u64,
        allocations: Vec<u64>,
    ) -> Result<SubResolved> {
        let _span = obs::span("gather", "shard", obs::SpanId::NONE);
        let gather_start = Instant::now();
        let inner = &*self.inner;
        let mut outcomes = Vec::with_capacity(inner.config.n_providers);
        let mut execution = Duration::ZERO;
        let gathered = for_each_fragment(&mut fragments, |fragment| {
            let t = Instant::now();
            fragment.partial().map(|r| (r, t.elapsed()))
        });
        for (s, result) in gathered.into_iter().enumerate() {
            let (partial, wall) = result.map_err(|e| self.shard_error(s, e))?;
            observe_per_shard(obs::names::SHARD_GATHER, s, wall);
            if partial.rows.len() != inner.shards[s].n_providers() {
                return Err(CoreError::ProtocolViolation(
                    "fragment partial does not match the shard's provider count",
                ));
            }
            execution = execution.max(partial.execution);
            for (i, row) in partial.rows.iter().enumerate() {
                // Raw estimates and smooth sensitivities never cross the
                // shard boundary; the fold below reads only `released`
                // (and the public variances for the CI).
                outcomes.push(LocalOutcome {
                    provider: inner.offsets[s] + i,
                    released: Some(row.released),
                    estimate: 0.0,
                    smooth_ls: 0.0,
                    variance: row.variance,
                    approximated: row.approximated,
                    clusters_scanned: row.clusters_scanned as usize,
                    n_covering: row.n_covering as usize,
                });
            }
        }
        let t = Instant::now();
        let aggregator = Aggregator::new(0, inner.config.cost_model);
        let value = aggregator.finalize_local(&outcomes)?;
        let release = t.elapsed();
        // Same simulated-network accounting as the 1-shard engine's
        // local-DP path: broadcast + summary + allocation + release.
        let cm = inner.config.cost_model;
        let network =
            cm.round_time(query_bytes) + cm.round_time(16) + cm.round_time(8) + cm.round_time(16);
        obs::observe_duration(obs::names::SHARD_GATHER, gather_start.elapsed());
        let clusters_scanned: usize = outcomes.iter().map(|o| o.clusters_scanned).sum();
        Ok(SubResolved {
            outcome: SubOutcome {
                value,
                ci_halfwidth: combined_ci_halfwidth(&outcomes),
                timings: PhaseTimings {
                    summary: summary_time,
                    allocation: allocation_time,
                    execution,
                    release,
                    network,
                },
                clusters_scanned: clusters_scanned as u64,
            },
            clusters_scanned,
            covering_total: outcomes.iter().map(|o| o.n_covering).sum(),
            approximated_providers: outcomes.iter().filter(|o| o.approximated).count(),
            allocations,
        })
    }

    /// Resolves a sharded sub-query, memoizing the merged outcome so
    /// every sharer (the dedup pass) observes byte-identical answers
    /// without re-gathering.
    fn wait_sharded(&self, sub: ShardedSub) -> Result<SubResolved> {
        let mut state = sub
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let SubState::Done(result) = &*state {
            return result.clone();
        }
        let taken = std::mem::replace(
            &mut *state,
            SubState::Done(Err(CoreError::ProtocolViolation(
                "sharded sub-query gather was interrupted",
            ))),
        );
        let SubState::Scattered {
            fragments,
            summary_time,
            allocation_time,
            query_bytes,
            allocations,
        } = taken
        else {
            unreachable!("Done was returned above");
        };
        let result = self.gather(
            fragments,
            summary_time,
            allocation_time,
            query_bytes,
            allocations,
        );
        *state = SubState::Done(result.clone());
        result
    }
}

/// Runs `op` on every fragment concurrently — one scoped thread per
/// shard when there is more than one — returning the results in shard
/// order. The blocking calls of a sub-query's fragments (summaries,
/// partials) are independent across shards once begun, so gathering
/// them serially would leave every other shard's uplink idle for the
/// duration of each reply; results are still merged in shard order, so
/// the release fold is unaffected.
/// Records one shard's scatter/gather wall time under the labeled family
/// `{base}.shard{s}` — public wall-clock only, like every obs sample. The
/// allocation is skipped entirely while telemetry is off.
fn observe_per_shard(base: &str, shard: usize, wall: Duration) {
    if obs::enabled() {
        obs::observe_duration(&format!("{base}.shard{shard}"), wall);
    }
}

fn for_each_fragment<T, F>(fragments: &mut [Box<dyn FragmentHandle>], op: F) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(&mut dyn FragmentHandle) -> Result<T> + Sync,
{
    if let [fragment] = fragments {
        return vec![op(&mut **fragment)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = fragments
            .iter_mut()
            .map(|fragment| scope.spawn(|| op(&mut **fragment)))
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle.join().unwrap_or_else(|_| {
                    Err(CoreError::ProtocolViolation(
                        "fragment gather thread panicked",
                    ))
                })
            })
            .collect()
    })
}

/// Rejects configurations the coordinator cannot serve.
fn reject_unshardable(config: &FederationConfig) -> Result<()> {
    if config.release_mode == ReleaseMode::Smc {
        return Err(CoreError::BadConfig(
            "SMC release is not shardable: the oblivious sum needs every provider's shares in one place",
        ));
    }
    Ok(())
}

/// A private sub-query in flight across the shards. Cloning via
/// [`PlanBackend::share_sub`] shares the underlying gather, so dedup'd
/// sub-queries resolve once and every sharer reads the memoized merge.
pub struct ShardedSub {
    shared: Arc<SubShared>,
}

struct SubShared {
    state: Mutex<SubState>,
}

enum SubState {
    Scattered {
        fragments: Vec<Box<dyn FragmentHandle>>,
        summary_time: Duration,
        allocation_time: Duration,
        query_bytes: u64,
        allocations: Vec<u64>,
    },
    Done(Result<SubResolved>),
}

/// A gathered sub-query: the released outcome plus the public scan
/// diagnostics an [`crate::EngineAnswer`] also reports.
#[derive(Clone)]
struct SubResolved {
    outcome: SubOutcome,
    clusters_scanned: usize,
    covering_total: usize,
    approximated_providers: usize,
    allocations: Vec<u64>,
}

impl PlanBackend for ShardedFederation {
    type Sub = ShardedSub;
    type Ext = ExtremeOutcome;

    fn config(&self) -> &FederationConfig {
        &self.inner.config
    }

    fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    fn snapshot(&self) -> &MetaSnapshot {
        &self.inner.snapshot
    }

    fn submit_sub(
        &self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
    ) -> Result<ShardedSub> {
        self.scatter(query, sampling_rate, budget)
    }

    fn share_sub(&self, sub: &ShardedSub) -> ShardedSub {
        ShardedSub {
            shared: Arc::clone(&sub.shared),
        }
    }

    fn wait_sub(&self, sub: ShardedSub) -> Result<SubOutcome> {
        self.wait_sharded(sub).map(|resolved| resolved.outcome)
    }

    fn submit_ext(&self, dim: usize, extreme: Extreme, epsilon: f64) -> Result<ExtremeOutcome> {
        // Extreme fragments carry no allocation barrier, so they cannot
        // deadlock across shards and resolve blocking right here; the
        // shard-local MIN/MAX folds are combined exactly (integer
        // domain), reproducing the 1-shard post-processing bit-for-bit.
        self.validate_ext(dim, epsilon)?;
        obs::counter_add(obs::names::SHARD_QUERIES, 1);
        let spec = ExtremeFragmentSpec {
            dim,
            extreme,
            epsilon,
            occurrence: self.next_occurrence(extreme_content_hash(dim, extreme, epsilon)),
        };
        let mut value: Option<Value> = None;
        let mut execution = Duration::ZERO;
        for (s, shard) in self.inner.shards.iter().enumerate() {
            let (v, t) = shard.extreme(&spec).map_err(|e| self.shard_error(s, e))?;
            execution = execution.max(t);
            value = Some(match (value, extreme) {
                (None, _) => v,
                (Some(a), Extreme::Max) => a.max(v),
                (Some(a), Extreme::Min) => a.min(v),
            });
        }
        let cm = self.inner.config.cost_model;
        Ok(ExtremeOutcome {
            value: value.expect("coordinator has at least one shard"),
            execution,
            network: cm.round_time(16) + cm.round_time(8),
        })
    }

    fn wait_ext(&self, ext: ExtremeOutcome) -> Result<ExtremeOutcome> {
        Ok(ext)
    }
}

/// A scalar query in flight on the coordinator (the sharded twin of
/// [`crate::PendingAnswer`], with the engine's simulation-boundary
/// diagnostics stripped — they never leave the shards).
pub struct ShardedPendingAnswer {
    federation: ShardedFederation,
    sub: ShardedSub,
    cost: PrivacyCost,
}

impl ShardedPendingAnswer {
    /// Blocks until every shard's partial landed and merges the release.
    pub fn wait(self) -> Result<ShardedAnswer> {
        let resolved = self.federation.wait_sharded(self.sub)?;
        Ok(ShardedAnswer {
            value: resolved.outcome.value,
            cost: self.cost,
            timings: resolved.outcome.timings,
            ci_halfwidth: resolved.outcome.ci_halfwidth,
            clusters_scanned: resolved.clusters_scanned,
            covering_total: resolved.covering_total,
            approximated_providers: resolved.approximated_providers,
            allocations: resolved.allocations,
        })
    }
}

/// The coordinator's answer to one scalar query. Field-for-field the
/// public face of [`crate::EngineAnswer`] — everything an analyst is
/// allowed to see — minus the simulation-boundary diagnostics
/// (`raw_estimate`, `smooth_ls`), which never leave the shards.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedAnswer {
    /// The DP-released answer (byte-identical to the 1-shard release).
    pub value: f64,
    /// The `(ε, δ)` charged.
    pub cost: PrivacyCost,
    /// Per-phase latency (maxima across shards, coordinator allocation).
    pub timings: PhaseTimings,
    /// 95% sampling confidence half-width, when estimable.
    pub ci_halfwidth: Option<f64>,
    /// Total clusters scanned across all shards' providers.
    pub clusters_scanned: usize,
    /// Total covering-set size across all shards' providers.
    pub covering_total: usize,
    /// How many providers took the approximate path.
    pub approximated_providers: usize,
    /// Per-provider sample-size allocations, in global provider order.
    pub allocations: Vec<u64>,
}

/// An analyst session over a [`ShardedFederation`]: the exact budget
/// semantics of [`crate::ConcurrentSession`] — validate before charging,
/// charge a plan's whole declared cost atomically before any fragment is
/// scattered, keep the charge if anything downstream fails (fail-closed;
/// a mid-plan shard failure must not refund, because released fragments
/// may already have leaked their sub-answers' budget worth).
#[derive(Debug, Clone)]
pub struct ShardedSession {
    federation: ShardedFederation,
    accountant: SharedAccountant,
    plan: SessionPlan,
    per_query: QueryBudget,
}

impl ShardedSession {
    /// Opens a session with total budget `(xi, psi)` under `plan`.
    pub fn open(
        federation: ShardedFederation,
        xi: f64,
        psi: f64,
        plan: SessionPlan,
    ) -> Result<Self> {
        let accountant = SharedAccountant::new(xi, psi).map_err(CoreError::Dp)?;
        Self::open_with_accountant(federation, accountant, plan)
    }

    /// Opens a session over an externally owned ledger (a serving
    /// endpoint keys ledgers by analyst identity, exactly as with
    /// [`crate::ConcurrentSession::open_with_accountant`]).
    pub fn open_with_accountant(
        federation: ShardedFederation,
        accountant: SharedAccountant,
        plan: SessionPlan,
    ) -> Result<Self> {
        let config = federation.config();
        let hp = config.hyperparams;
        let total = accountant.total();
        let per_query = match plan {
            SessionPlan::PayAsYouGo => config.query_budget()?,
            SessionPlan::AdvancedComposition { planned_queries } => {
                let per = advanced_per_query(total.eps, total.delta, planned_queries)?;
                QueryBudget::split(per.eps, per.delta, hp)?
            }
        };
        Ok(Self {
            federation,
            accountant,
            plan,
            per_query,
        })
    }

    /// The session's budget plan.
    #[inline]
    pub fn plan(&self) -> SessionPlan {
        self.plan
    }

    /// The `(ε, δ)` each scalar query costs under this session's plan.
    pub fn per_query_cost(&self) -> PrivacyCost {
        self.per_query.cost()
    }

    /// Remaining total budget.
    pub fn remaining(&self) -> PrivacyCost {
        self.accountant.remaining()
    }

    /// The budget consumed so far.
    pub fn spent(&self) -> PrivacyCost {
        self.accountant.spent()
    }

    /// Queries answered so far (successfully charged).
    pub fn queries_answered(&self) -> u64 {
        self.accountant.queries_answered()
    }

    /// Whether another scalar query still fits (advisory).
    pub fn can_query(&self) -> bool {
        self.accountant.can_afford(self.per_query.cost())
    }

    /// The coordinator this session queries through.
    pub fn federation(&self) -> &ShardedFederation {
        &self.federation
    }

    /// The shared ledger this session charges.
    pub fn accountant(&self) -> &SharedAccountant {
        &self.accountant
    }

    /// Atomically charges the session budget, then scatters the query.
    /// Validation runs *before* the charge (a rejected request touches
    /// no data and costs nothing); once scattered, the charge is kept
    /// even if a shard later fails (fail-closed).
    pub fn submit(&self, query: &RangeQuery, sampling_rate: f64) -> Result<ShardedPendingAnswer> {
        self.federation
            .validate_sub(query, sampling_rate, &self.per_query)?;
        self.accountant
            .charge(self.per_query.cost())
            .map_err(CoreError::Dp)?;
        self.federation
            .submit_with_budget(query, sampling_rate, &self.per_query)
    }

    /// Answers one private query, atomically charging first.
    pub fn query(&self, query: &RangeQuery, sampling_rate: f64) -> Result<ShardedAnswer> {
        self.submit(query, sampling_rate)?.wait()
    }

    /// Atomically charges a plan's *entire* declared cost up front, then
    /// scatters every sub-query. The whole charge is kept even if a
    /// shard drops mid-plan (fail-closed — pinned by tests).
    pub fn submit_plan(&self, plan: &QueryPlan) -> Result<PendingPlan<ShardedFederation>> {
        self.federation.validate_plan(plan)?;
        let (eps, delta) = plan.total_cost();
        self.accountant
            .charge(PrivacyCost { eps, delta })
            .map_err(CoreError::Dp)?;
        self.federation.submit_plan_validated(plan)
    }

    /// Answers one plan, atomically charging its whole cost first.
    pub fn run_plan(&self, plan: &QueryPlan) -> Result<PlanAnswer> {
        self.submit_plan(plan)?.wait()
    }

    /// `EXPLAIN` through a budgeted session — charges nothing.
    pub fn explain_plan(&self, plan: &QueryPlan) -> Result<PlanExplanation> {
        self.federation.explain_plan(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedaqp_model::{Aggregate, DerivedStatistic, Dimension, Domain, Range};
    use fedaqp_smc::CostModel;

    /// Two dimensions: `x` (clustered per provider, so the optimizer has
    /// real bounds to prune on) and a 5-value `cat` to group by.
    fn schema() -> Schema {
        Schema::new(vec![
            Dimension::new("x", Domain::new(0, 999).unwrap()),
            Dimension::new("cat", Domain::new(0, 4).unwrap()),
        ])
        .unwrap()
    }

    /// Provider `p` holds `x ∈ [250p, 250p + 249]`: a filter on the low
    /// band prunes providers 1–3 via metadata alone.
    fn partitions() -> Vec<Vec<Row>> {
        (0..4)
            .map(|p| {
                (0..600)
                    .map(|i| {
                        let x = (p * 250 + (i * 7) % 250) as i64;
                        Row::cell(vec![x, (i % 5) as i64], 1 + (i % 3) as u64)
                    })
                    .collect()
            })
            .collect()
    }

    fn config(seed: u64) -> FederationConfig {
        let mut cfg = FederationConfig::paper_default(50);
        cfg.n_min = 3;
        cfg.cost_model = CostModel::zero();
        cfg.epsilon = 4.0;
        cfg.seed = seed;
        cfg
    }

    fn count(lo: i64, hi: i64) -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(0, lo, hi).unwrap()]).unwrap()
    }

    /// Every plan kind the compiler knows, including one whose filter
    /// prunes three of the four providers (so the byte-identity claim
    /// covers the optimizer's pruned-provider path too).
    fn plans() -> Vec<QueryPlan> {
        vec![
            QueryPlan::Scalar {
                query: count(100, 900),
                sampling_rate: 0.3,
                epsilon: 2.0,
                delta: 1e-3,
            },
            QueryPlan::Scalar {
                query: count(0, 240),
                sampling_rate: 0.3,
                epsilon: 2.0,
                delta: 1e-3,
            },
            QueryPlan::Derived {
                query: count(50, 800),
                statistic: DerivedStatistic::StdDev,
                sampling_rate: 0.25,
                epsilon: 3.0,
                delta: 1e-3,
            },
            QueryPlan::GroupBy {
                base: count(0, 999),
                statistic: None,
                group_dim: 1,
                threshold: 0.0,
                sampling_rate: 0.3,
                epsilon: 10.0,
                delta: 1e-3,
            },
            QueryPlan::GroupBy {
                base: count(0, 999),
                statistic: Some(DerivedStatistic::Average),
                group_dim: 1,
                threshold: 0.0,
                sampling_rate: 0.3,
                epsilon: 12.0,
                delta: 1e-3,
            },
            QueryPlan::Extreme {
                dim: 0,
                extreme: Extreme::Max,
                epsilon: 50.0,
            },
        ]
    }

    #[test]
    fn sharded_answers_are_byte_identical_across_shard_counts() {
        for seed in [0xFEDA_u64, 7] {
            // The 1-engine ground truth: the whole plan sequence on one
            // pool, in order (the order matters — the occurrence ledger
            // advances per content hash).
            let reference: Vec<PlanAnswer> =
                Federation::build(config(seed), schema(), partitions())
                    .unwrap()
                    .with_engine(|e| {
                        plans()
                            .iter()
                            .map(|p| e.run_plan(p))
                            .collect::<Result<Vec<_>>>()
                    })
                    .unwrap();
            for n_shards in [1usize, 2, 4] {
                let coordinator =
                    ShardedFederation::in_process(config(seed), schema(), partitions(), n_shards)
                        .unwrap();
                for (plan, expected) in plans().iter().zip(&reference) {
                    let got = coordinator.run_plan(plan).unwrap();
                    assert_eq!(
                        got.result, expected.result,
                        "seed {seed:#x}, {n_shards} shards, plan {plan:?}"
                    );
                    assert_eq!(got.cost, expected.cost);
                }
                coordinator.shutdown();
            }
        }
    }

    /// The tentpole privacy property of the obs crate: telemetry is
    /// observation-only. With the same seeds, every plan kind, and 1/2/4
    /// shards, the released answers with telemetry enabled are
    /// bit-identical to the answers with telemetry disabled — recording
    /// counters, gauges, histograms, and spans touches no RNG lane, no
    /// occurrence ledger, and no release arithmetic.
    ///
    /// This is the only core test that toggles the global telemetry
    /// flag; every other test is flag-agnostic, so the toggle cannot
    /// race a sibling's assertions.
    #[test]
    fn released_bytes_identical_with_telemetry_on_and_off() {
        let run = |enabled: bool, seed: u64, n_shards: usize| -> Vec<PlanAnswer> {
            obs::set_enabled(enabled);
            let coordinator =
                ShardedFederation::in_process(config(seed), schema(), partitions(), n_shards)
                    .unwrap();
            let answers = plans()
                .iter()
                .map(|p| coordinator.run_plan(p))
                .collect::<Result<Vec<_>>>()
                .unwrap();
            coordinator.shutdown();
            answers
        };
        for seed in [0xFEDA_u64, 7] {
            for n_shards in [1usize, 2, 4] {
                let with_telemetry = run(true, seed, n_shards);
                let without = run(false, seed, n_shards);
                for ((on, off), plan) in with_telemetry.iter().zip(&without).zip(plans()) {
                    assert_eq!(
                        on.result, off.result,
                        "seed {seed:#x}, {n_shards} shards, plan {plan:?}"
                    );
                    assert_eq!(on.cost, off.cost);
                }
            }
        }
        obs::set_enabled(true);
    }

    #[test]
    fn coordinator_ledger_advances_like_the_engine() {
        let plan = QueryPlan::Scalar {
            query: count(100, 900),
            sampling_rate: 0.3,
            epsilon: 2.0,
            delta: 1e-3,
        };
        let (first, second) = Federation::build(config(0xFEDA), schema(), partitions())
            .unwrap()
            .with_engine(|e| (e.run_plan(&plan).unwrap(), e.run_plan(&plan).unwrap()));
        let coordinator =
            ShardedFederation::in_process(config(0xFEDA), schema(), partitions(), 2).unwrap();
        assert_eq!(coordinator.run_plan(&plan).unwrap().result, first.result);
        assert_eq!(coordinator.run_plan(&plan).unwrap().result, second.result);
        // The ledger really advanced: a repeat draws fresh noise.
        assert_ne!(first.result, second.result);
        coordinator.shutdown();
    }

    #[test]
    fn unshardable_configurations_are_rejected() {
        let mut smc = config(1);
        smc.release_mode = ReleaseMode::Smc;
        assert!(matches!(
            ShardedFederation::in_process(smc, schema(), partitions(), 2),
            Err(CoreError::BadConfig(_))
        ));
        assert!(matches!(
            ShardedFederation::in_process(config(1), schema(), partitions(), 0),
            Err(CoreError::BadConfig(_))
        ));
        assert!(matches!(
            ShardedFederation::in_process(config(1), schema(), partitions(), 5),
            Err(CoreError::BadConfig(_))
        ));
    }

    /// A shard whose engine is unreachable: every fragment fails the way
    /// the wire client fails when the TCP connect is refused.
    struct DeadShard {
        n: usize,
    }

    impl ShardBackend for DeadShard {
        fn n_providers(&self) -> usize {
            self.n
        }

        fn bounds(&self) -> Vec<ProviderBounds> {
            vec![ProviderBounds::new(vec![Some((0, 999)), Some((0, 4))], 1); self.n]
        }

        fn begin(&self, _spec: &FragmentSpec) -> Result<Box<dyn FragmentHandle>> {
            Err(CoreError::ShardUnavailable {
                shard: 0,
                reason: "connection refused",
            })
        }

        fn extreme(&self, _spec: &ExtremeFragmentSpec) -> Result<(Value, Duration)> {
            Err(CoreError::ShardUnavailable {
                shard: 0,
                reason: "connection refused",
            })
        }
    }

    #[test]
    fn dead_shard_yields_typed_error_and_keeps_the_charge() {
        // Shard 0 is a live two-provider engine; shard 1 refuses.
        let mut live_cfg = config(0xFEDA);
        live_cfg.n_providers = 2;
        let live_partitions: Vec<Vec<Row>> = partitions().into_iter().take(2).collect();
        let live = FederationEngine::start(
            Federation::build(live_cfg, schema(), live_partitions).unwrap(),
        );
        let coordinator = ShardedFederation::from_backends(
            config(0xFEDA),
            schema(),
            vec![Box::new(live.handle()), Box::new(DeadShard { n: 2 })],
        )
        .unwrap();
        let session =
            ShardedSession::open(coordinator, 100.0, 0.5, SessionPlan::PayAsYouGo).unwrap();
        let plan = QueryPlan::Scalar {
            query: count(100, 900),
            sampling_rate: 0.3,
            epsilon: 2.0,
            delta: 1e-3,
        };
        let err = match session.submit_plan(&plan) {
            Err(e) => e,
            Ok(_) => panic!("a dead shard must fail the plan"),
        };
        assert_eq!(
            err,
            CoreError::ShardUnavailable {
                shard: 1,
                reason: "connection refused",
            },
            "the coordinator rebinds the error to its own shard index"
        );
        // Fail-closed: the whole plan charge stays on the ledger even
        // though no answer was released.
        assert!((session.spent().eps - 2.0).abs() < 1e-12);
        assert!((session.spent().delta - 1e-3).abs() < 1e-12);
        // The live shard's begun fragment was aborted on drop, so its
        // workers are unparked and the pool shuts down cleanly.
        live.shutdown();
    }

    #[test]
    fn sharded_session_charges_like_a_concurrent_session() {
        let coordinator =
            ShardedFederation::in_process(config(0xFEDA), schema(), partitions(), 2).unwrap();
        let session =
            ShardedSession::open(coordinator.clone(), 100.0, 0.5, SessionPlan::PayAsYouGo).unwrap();
        let answer = session.query(&count(100, 900), 0.3).unwrap();
        assert_eq!(answer.cost, session.per_query_cost());
        assert_eq!(session.spent(), session.per_query_cost());
        assert_eq!(session.queries_answered(), 1);
        // A rejected submission (bad rate) touches no data and costs
        // nothing; neither does EXPLAIN.
        assert!(session.submit(&count(100, 900), 1.5).is_err());
        session
            .explain_plan(&QueryPlan::Scalar {
                query: count(100, 900),
                sampling_rate: 0.3,
                epsilon: 2.0,
                delta: 1e-3,
            })
            .unwrap();
        assert_eq!(session.spent(), session.per_query_cost());
        coordinator.shutdown();
    }

    #[test]
    fn sharded_explain_matches_the_engine() {
        // EXPLAIN reads only the concatenated metadata snapshot, so the
        // coordinator must reach exactly the 1-engine decisions —
        // including pruning three providers on the low band.
        let explained: Vec<PlanExplanation> = plans()
            .iter()
            .map(|p| {
                Federation::build(config(0xFEDA), schema(), partitions())
                    .unwrap()
                    .with_engine(|e| e.explain_plan(p))
                    .unwrap()
            })
            .collect();
        let coordinator =
            ShardedFederation::in_process(config(0xFEDA), schema(), partitions(), 4).unwrap();
        for (plan, expected) in plans().iter().zip(&explained) {
            assert_eq!(
                &coordinator.explain_plan(plan).unwrap(),
                expected,
                "{plan:?}"
            );
        }
        coordinator.shutdown();
    }
}
