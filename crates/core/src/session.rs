//! Analyst sessions: the interactive query interface of §5.4.
//!
//! "In the online query answering settings under DP, the end user is
//! limited by a total privacy budget of (ξ, ψ). … The analyst can continue
//! sending queries until their total budget is consumed." A session bundles
//! a federation with a [`BudgetAccountant`] and charges every query *before*
//! touching data. Two budget plans are offered:
//!
//! * [`SessionPlan::PayAsYouGo`] — every query costs the federation's
//!   configured `(ε, δ)` under plain sequential composition.
//! * [`SessionPlan::AdvancedComposition`] — the analyst pre-declares how
//!   many queries the session will serve; each gets the (larger) per-query
//!   budget of §6.6's advanced composition.

use fedaqp_dp::{advanced_per_query, BudgetAccountant, PrivacyCost, QueryBudget, SharedAccountant};
use fedaqp_model::{QueryPlan, RangeQuery};

use crate::derived::{run_derived, DerivedAnswer, DerivedStatistic};
use crate::engine::{EngineAnswer, EngineHandle, PendingAnswer};
use crate::federation::{Federation, QueryAnswer};
use crate::plan::{PendingPlan, PlanAnswer};
use crate::{CoreError, Result};

/// How the session stretches the analyst's `(ξ, ψ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionPlan {
    /// Each query spends the federation's default `(ε, δ)`; the session
    /// ends when the accountant rejects the next charge.
    PayAsYouGo,
    /// The session pre-plans `n` queries under advanced composition; each
    /// query gets `ε = ξ/(2√(2n·ln(1/δ)))`, `δ = ψ/n`.
    AdvancedComposition {
        /// The declared number of queries.
        planned_queries: u64,
    },
}

/// An interactive analyst session over a federation.
#[derive(Debug)]
pub struct AnalystSession {
    federation: Federation,
    accountant: BudgetAccountant,
    plan: SessionPlan,
    per_query: QueryBudget,
}

impl AnalystSession {
    /// Opens a session with total budget `(xi, psi)` under `plan`.
    pub fn open(federation: Federation, xi: f64, psi: f64, plan: SessionPlan) -> Result<Self> {
        let accountant = BudgetAccountant::new(xi, psi)?;
        let hp = federation.config().hyperparams;
        let per_query = match plan {
            SessionPlan::PayAsYouGo => {
                QueryBudget::split(federation.config().epsilon, federation.config().delta, hp)?
            }
            SessionPlan::AdvancedComposition { planned_queries } => {
                let per = advanced_per_query(xi, psi, planned_queries)?;
                QueryBudget::split(per.eps, per.delta, hp)?
            }
        };
        Ok(Self {
            federation,
            accountant,
            plan,
            per_query,
        })
    }

    /// The session's budget plan.
    #[inline]
    pub fn plan(&self) -> SessionPlan {
        self.plan
    }

    /// The `(ε, δ)` each query costs under this session's plan.
    pub fn per_query_cost(&self) -> PrivacyCost {
        self.per_query.cost()
    }

    /// Remaining total budget.
    pub fn remaining(&self) -> PrivacyCost {
        self.accountant.remaining()
    }

    /// Queries answered so far.
    pub fn queries_answered(&self) -> u64 {
        self.accountant.queries_answered()
    }

    /// Whether another query of this session's cost still fits.
    pub fn can_query(&self) -> bool {
        self.accountant.can_afford(self.per_query.cost())
    }

    /// Read access to the underlying federation (schema, providers, …).
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// Answers one private query, charging the session budget first.
    pub fn query(&mut self, query: &RangeQuery, sampling_rate: f64) -> Result<QueryAnswer> {
        self.accountant
            .charge(self.per_query.cost())
            .map_err(CoreError::Dp)?;
        self.federation
            .run_with_budget(query, sampling_rate, &self.per_query)
    }

    /// Answers a derived statistic (AVG/VAR/STD), charging the cost of its
    /// sub-queries (each sub-query costs one per-query budget).
    pub fn query_derived(
        &mut self,
        query: &RangeQuery,
        statistic: DerivedStatistic,
        sampling_rate: f64,
    ) -> Result<DerivedAnswer> {
        let n = statistic.sub_queries() as f64;
        let total = PrivacyCost {
            eps: self.per_query.cost().eps * n,
            delta: self.per_query.cost().delta * n,
        };
        if !self.accountant.can_afford(total) {
            // Surface the same error charge() would produce.
            self.accountant.charge(total).map_err(CoreError::Dp)?;
        }
        self.accountant.charge(total).map_err(CoreError::Dp)?;
        run_derived(
            &mut self.federation,
            query,
            statistic,
            sampling_rate,
            self.per_query.cost().eps * n,
            self.per_query.cost().delta * n,
        )
    }

    /// Closes the session, returning the federation and the spent budget.
    pub fn close(self) -> (Federation, PrivacyCost) {
        (self.federation, self.accountant.spent())
    }
}

/// An analyst session over a concurrent [`EngineHandle`]: the §5.4 budget
/// semantics of [`AnalystSession`], safe to clone across analyst threads.
///
/// The accountant sits behind a [`SharedAccountant`], so the affordability
/// check and the charge are one atomic step: N racing queries can never
/// jointly drive the session past its `(ξ, ψ)` — losers of the race are
/// rejected *before* any provider touches data. A charge is kept even if
/// the query subsequently fails inside the engine (fail-closed: the
/// conservative direction for privacy).
#[derive(Debug, Clone)]
pub struct ConcurrentSession {
    handle: EngineHandle,
    accountant: SharedAccountant,
    plan: SessionPlan,
    per_query: QueryBudget,
}

impl ConcurrentSession {
    /// Opens a session with total budget `(xi, psi)` under `plan`.
    pub fn open(handle: EngineHandle, xi: f64, psi: f64, plan: SessionPlan) -> Result<Self> {
        let accountant = SharedAccountant::new(xi, psi).map_err(CoreError::Dp)?;
        Self::open_with_accountant(handle, accountant, plan)
    }

    /// Opens a session over an externally owned ledger.
    ///
    /// A serving endpoint keys ledgers by analyst identity (e.g. through a
    /// [`fedaqp_dp::BudgetDirectory`]) so that reconnecting — or opening
    /// several parallel connections — can never reset or multiply an
    /// analyst's `(ξ, ψ)`: every session opened on the same accountant
    /// charges the same atomic ledger.
    pub fn open_with_accountant(
        handle: EngineHandle,
        accountant: SharedAccountant,
        plan: SessionPlan,
    ) -> Result<Self> {
        let config = handle.config();
        let hp = config.hyperparams;
        let total = accountant.total();
        let per_query = match plan {
            SessionPlan::PayAsYouGo => config.query_budget()?,
            SessionPlan::AdvancedComposition { planned_queries } => {
                let per = advanced_per_query(total.eps, total.delta, planned_queries)?;
                QueryBudget::split(per.eps, per.delta, hp)?
            }
        };
        Ok(Self {
            handle,
            accountant,
            plan,
            per_query,
        })
    }

    /// The session's budget plan.
    #[inline]
    pub fn plan(&self) -> SessionPlan {
        self.plan
    }

    /// The `(ε, δ)` each query costs under this session's plan.
    pub fn per_query_cost(&self) -> PrivacyCost {
        self.per_query.cost()
    }

    /// Remaining total budget.
    pub fn remaining(&self) -> PrivacyCost {
        self.accountant.remaining()
    }

    /// The budget consumed so far.
    pub fn spent(&self) -> PrivacyCost {
        self.accountant.spent()
    }

    /// Queries answered so far (successfully charged).
    pub fn queries_answered(&self) -> u64 {
        self.accountant.queries_answered()
    }

    /// Whether another query of this session's cost still fits (advisory:
    /// the authoritative gate is the atomic charge inside [`Self::query`]).
    pub fn can_query(&self) -> bool {
        self.accountant.can_afford(self.per_query.cost())
    }

    /// The engine handle this session queries through.
    pub fn handle(&self) -> &EngineHandle {
        &self.handle
    }

    /// The shared ledger this session charges.
    pub fn accountant(&self) -> &SharedAccountant {
        &self.accountant
    }

    /// Atomically charges the session budget, then submits the query to
    /// the engine *without* waiting for the answer. Submitting a whole
    /// batch before the first wait lets the worker pool pipeline one
    /// analyst's queries.
    ///
    /// A request the engine would reject up front (bad sampling rate,
    /// unknown dimension) is validated *before* the charge — it touches
    /// no data, so it must not cost budget. Once a query is dispatched,
    /// the charge is kept even if it later fails inside the engine
    /// (fail-closed: the conservative direction for privacy).
    pub fn submit(&self, query: &RangeQuery, sampling_rate: f64) -> Result<PendingAnswer> {
        self.handle
            .validate(query, sampling_rate, &self.per_query)?;
        self.accountant
            .charge(self.per_query.cost())
            .map_err(CoreError::Dp)?;
        self.handle
            .submit_with_budget(query, sampling_rate, &self.per_query)
    }

    /// Answers one private query, atomically charging the session budget
    /// first.
    pub fn query(&self, query: &RangeQuery, sampling_rate: f64) -> Result<EngineAnswer> {
        self.submit(query, sampling_rate)?.wait()
    }

    /// Atomically charges a plan's *entire* declared
    /// [`QueryPlan::total_cost`] up front, then compiles and submits every
    /// sub-query without waiting — so a group-by's per-group queries
    /// pipeline on the worker pool while the budget ledger already covers
    /// all of them (racing plans cannot jointly overspend `(ξ, ψ)`, and a
    /// plan can never be half-charged).
    ///
    /// A plan the engine would reject is validated *before* the charge —
    /// it touches no data, so it must not cost budget. Once dispatched,
    /// the whole charge is kept even if a sub-query later fails
    /// (fail-closed: the conservative direction for privacy).
    ///
    /// A plan always charges its *declared* cost: unlike [`Self::submit`],
    /// whose per-query `(ε, δ)` comes from the session's [`SessionPlan`]
    /// (including the advanced-composition discount), a [`QueryPlan`] is a
    /// self-contained privacy contract and spends exactly
    /// [`QueryPlan::total_cost`] regardless of the plan the session was
    /// opened with — the sequential-composition accounting, which is never
    /// an undercharge.
    pub fn submit_plan(&self, plan: &QueryPlan) -> Result<PendingPlan> {
        self.handle.validate_plan(plan)?;
        let (eps, delta) = plan.total_cost();
        self.accountant
            .charge(PrivacyCost { eps, delta })
            .map_err(CoreError::Dp)?;
        self.handle.submit_plan_validated(plan)
    }

    /// Answers one plan, atomically charging its whole cost first.
    pub fn run_plan(&self, plan: &QueryPlan) -> Result<PlanAnswer> {
        self.submit_plan(plan)?.wait()
    }

    /// `EXPLAIN` through a budgeted session — charges **nothing**. The
    /// explanation conditions only on the analyst's own plan and on public
    /// offline metadata (same rationale as validate-before-charge: a
    /// request that touches no data must not cost budget), so an analyst
    /// can inspect pruning/dedup/ordering decisions before committing
    /// their `(ξ, ψ)` to the plan itself.
    pub fn explain_plan(&self, plan: &QueryPlan) -> Result<crate::optimizer::PlanExplanation> {
        self.handle.explain_plan(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use fedaqp_model::{Aggregate, Dimension, Domain, Range, Row, Schema};

    fn federation(epsilon: f64) -> Federation {
        let schema = Schema::new(vec![Dimension::new("x", Domain::new(0, 99).unwrap())]).unwrap();
        let partitions: Vec<Vec<Row>> = (0..4)
            .map(|p| {
                (0..500)
                    .map(|i| Row::cell(vec![((i * 7 + p) % 100) as i64], 1))
                    .collect()
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(32);
        cfg.epsilon = epsilon;
        cfg.cost_model = fedaqp_smc::CostModel::zero();
        Federation::build(cfg, schema, partitions).unwrap()
    }

    fn query() -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(0, 10, 90).unwrap()]).unwrap()
    }

    #[test]
    fn pay_as_you_go_exhausts_after_xi_over_eps_queries() {
        let mut session =
            AnalystSession::open(federation(1.0), 3.0, 1e-2, SessionPlan::PayAsYouGo).unwrap();
        let mut answered = 0;
        while session.can_query() {
            session.query(&query(), 0.2).unwrap();
            answered += 1;
            assert!(answered < 50);
        }
        assert_eq!(answered, 3);
        assert!(session.query(&query(), 0.2).is_err());
        assert_eq!(session.queries_answered(), 3);
    }

    #[test]
    fn advanced_plan_gives_larger_per_query_epsilon() {
        let n = 1000u64;
        let adv = AnalystSession::open(
            federation(1.0),
            10.0,
            1e-4,
            SessionPlan::AdvancedComposition { planned_queries: n },
        )
        .unwrap();
        let seq_eps = 10.0 / n as f64;
        assert!(
            adv.per_query_cost().eps > seq_eps,
            "advanced {} should beat sequential {seq_eps}",
            adv.per_query_cost().eps
        );
    }

    #[test]
    fn failed_charge_leaves_budget_untouched() {
        let mut session =
            AnalystSession::open(federation(5.0), 1.0, 1e-3, SessionPlan::PayAsYouGo).unwrap();
        // ε per query = 5 > ξ = 1: first query already unaffordable.
        assert!(!session.can_query());
        assert!(session.query(&query(), 0.2).is_err());
        assert_eq!(session.remaining().eps, 1.0);
    }

    #[test]
    fn derived_queries_charge_multiples() {
        let mut session =
            AnalystSession::open(federation(1.0), 10.0, 1e-2, SessionPlan::PayAsYouGo).unwrap();
        let before = session.remaining().eps;
        session
            .query_derived(&query(), DerivedStatistic::Average, 0.2)
            .unwrap();
        let after = session.remaining().eps;
        assert!(
            (before - after - 2.0).abs() < 1e-9,
            "charged {}",
            before - after
        );
    }

    #[test]
    fn sessions_on_one_accountant_share_the_ledger() {
        // Two "connections" of one analyst: sessions opened over the same
        // shared accountant cannot jointly overspend its (ξ, ψ).
        let fed = federation(1.0);
        fed.with_engine(|engine| {
            let ledger = SharedAccountant::new(2.0, 1e-2).unwrap();
            let s1 = ConcurrentSession::open_with_accountant(
                engine.clone(),
                ledger.clone(),
                SessionPlan::PayAsYouGo,
            )
            .unwrap();
            let s2 = ConcurrentSession::open_with_accountant(
                engine.clone(),
                ledger,
                SessionPlan::PayAsYouGo,
            )
            .unwrap();
            s1.query(&query(), 0.2).unwrap();
            s2.query(&query(), 0.2).unwrap();
            assert!(s1.query(&query(), 0.2).is_err());
            assert!(s2.query(&query(), 0.2).is_err());
            assert_eq!(s1.queries_answered(), 2);
            assert!((s2.accountant().spent().eps - 2.0).abs() < 1e-9);
        });
    }

    #[test]
    fn submit_charges_before_waiting() {
        let fed = federation(1.0);
        fed.with_engine(|engine| {
            let session =
                ConcurrentSession::open(engine.clone(), 1.0, 1e-2, SessionPlan::PayAsYouGo)
                    .unwrap();
            let pending = session.submit(&query(), 0.2).unwrap();
            // The charge landed at submission time, before the wait.
            assert!((session.spent().eps - 1.0).abs() < 1e-9);
            assert!(pending.wait().unwrap().value.is_finite());
            assert!(session.submit(&query(), 0.2).is_err());
        });
    }

    #[test]
    fn rejected_submissions_cost_no_budget() {
        // A request the engine rejects up front touches no data, so the
        // session must not charge for it — otherwise a couple of typos
        // (sampling rate 1.5, a bogus dimension) would burn a remote
        // analyst's whole ξ with zero queries answered.
        let fed = federation(1.0);
        fed.with_engine(|engine| {
            let session =
                ConcurrentSession::open(engine.clone(), 2.0, 1e-2, SessionPlan::PayAsYouGo)
                    .unwrap();
            assert!(matches!(
                session.submit(&query(), 1.5),
                Err(CoreError::InvalidSamplingRate(_))
            ));
            let bad_dim =
                RangeQuery::new(Aggregate::Count, vec![Range::new(9, 0, 1).unwrap()]).unwrap();
            assert!(session.submit(&bad_dim, 0.2).is_err());
            assert_eq!(session.spent().eps, 0.0);
            assert_eq!(session.queries_answered(), 0);
            // The budget is still whole: both valid queries fit.
            session.query(&query(), 0.2).unwrap();
            session.query(&query(), 0.2).unwrap();
        });
    }

    #[test]
    fn close_reports_spend() {
        let mut session =
            AnalystSession::open(federation(1.0), 5.0, 1e-2, SessionPlan::PayAsYouGo).unwrap();
        session.query(&query(), 0.2).unwrap();
        let (_fed, spent) = session.close();
        assert!((spent.eps - 1.0).abs() < 1e-9);
    }
}
