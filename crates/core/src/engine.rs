//! The concurrent multi-query federation engine.
//!
//! [`crate::Federation`] answers one query at a time. This module turns the
//! same protocol into a long-lived, shared, concurrent service: a
//! **persistent per-provider worker pool** (one OS thread per data
//! provider, alive across queries) executes many in-flight queries at
//! once, pipelining provider phases across queries while each query's
//! allocation barrier (protocol step 3) synchronizes only its own job.
//!
//! Architecture:
//!
//! ```text
//!  analysts ──submit──▶ EngineHandle ──(job fan-out)──▶ provider workers
//!     ▲                                                   │ prepare+summary
//!     │                                                   ▼
//!     │                 per-job barrier: last summary computes allocation
//!     │                                                   │ execute
//!     └──── PendingAnswer::wait ◀──(job fan-in)───────────┘ finalize
//! ```
//!
//! Determinism: every `(query, provider)` pair draws from an RNG derived
//! from `(config.seed, job content, occurrence, provider id)`, where
//! *occurrence* counts how many times this exact job content has been
//! submitted on this engine. Distinct requests therefore have noise
//! streams that are fully determined by their content — independent of
//! global submission order, of which connection carried them, and of how
//! queries interleave on the shared providers — so a seeded workload of
//! distinct queries is bit-reproducible even when raced across analyst
//! connections. Repeated *identical* requests advance their occurrence
//! counter and draw fresh noise each time (averaging repeats must not be
//! free), while two *different* requests never share a stream:
//! differencing two different releases always faces independent draws.
//!
//! Privacy: the engine never relaxes the serial path's accounting. Each
//! query runs under a validated [`QueryBudget`]; session-level budgets are
//! enforced by [`crate::session::ConcurrentSession`], whose
//! [`fedaqp_dp::SharedAccountant`] makes check-and-charge atomic so racing
//! queries cannot jointly overspend `(ξ, ψ)`.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fedaqp_dp::{PrivacyCost, QueryBudget};
use fedaqp_model::{Extreme, RangeQuery, Schema};
use fedaqp_obs as obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::aggregator::Aggregator;
use crate::config::{AllocationPolicy, FederationConfig, ReleaseMode};
use crate::federation::{Federation, PlainAnswer};
use crate::optimizer::MetaSnapshot;
use crate::protocol::{query_bytes, LocalOutcome, PhaseTimings, ProviderSummary};
use crate::provider::{DataProvider, PreparedQuery, ProviderShadow};
use crate::{CoreError, Result};

/// SplitMix64 finalizer over `(seed, index, lane)` — the per-job RNG
/// derivation. `lane` is the provider id (or [`AGGREGATOR_LANE`]).
fn derive_seed(seed: u64, index: u64, lane: u64) -> u64 {
    let mut z = seed
        ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (lane.wrapping_add(1)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG lane of the per-job aggregator (must differ from any provider id).
const AGGREGATOR_LANE: u64 = u64::MAX;

/// Derivation lane that folds a job's content hash into its seed (a
/// separate derivation *level* from the per-provider lanes, which are
/// applied to the result).
const CONTENT_LANE: u64 = u64::MAX - 1;

/// FNV-1a accumulation of `bytes` into `h`.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// One query of a [`QueryBatch`].
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The range query.
    pub query: RangeQuery,
    /// The sampling rate `sr ∈ (0, 1)`.
    pub sampling_rate: f64,
}

/// An ordered set of queries submitted together. Noise is derived from
/// each query's content and occurrence count, so `run_batch` and
/// `run_batch_serial` are comparable draw-for-draw; only the relative
/// order of *repeated identical* queries affects which draw each one gets.
#[derive(Debug, Clone, Default)]
pub struct QueryBatch {
    specs: Vec<QuerySpec>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one query at `sampling_rate`.
    pub fn push(&mut self, query: RangeQuery, sampling_rate: f64) {
        self.specs.push(QuerySpec {
            query,
            sampling_rate,
        });
    }

    /// The batch contents, in submission order.
    pub fn specs(&self) -> &[QuerySpec] {
        &self.specs
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

impl FromIterator<QuerySpec> for QueryBatch {
    fn from_iter<T: IntoIterator<Item = QuerySpec>>(iter: T) -> Self {
        Self {
            specs: iter.into_iter().collect(),
        }
    }
}

/// The engine's answer to one private query.
///
/// Unlike [`crate::QueryAnswer`] it carries no exact oracle / relative
/// error: the engine is the serving path, and computing the exact answer
/// would scan every provider per query. Experiments that need the oracle
/// submit a plain job (same worker pool) and compare.
#[derive(Debug, Clone)]
pub struct EngineAnswer {
    /// The DP-released answer.
    pub value: f64,
    /// The `(ε, δ)` charged for this query.
    pub cost: PrivacyCost,
    /// Per-phase latency breakdown (per-provider phases are charged the
    /// slowest provider's time, matching the serial runtime's accounting).
    pub timings: PhaseTimings,
    /// Total clusters scanned across providers.
    pub clusters_scanned: usize,
    /// Total covering-set size across providers (`Σ N^Q_i`).
    pub covering_total: usize,
    /// How many providers took the approximate path.
    pub approximated_providers: usize,
    /// The per-provider sample-size allocations.
    pub allocations: Vec<u64>,
    /// Σ of the providers' raw (pre-noise) estimates (simulation-boundary
    /// diagnostic; never released to an analyst).
    pub raw_estimate: f64,
    /// Per-provider smooth sensitivities (simulation-boundary diagnostic).
    pub smooth_ls: Vec<f64>,
    /// 95% confidence half-width of `raw_estimate` from the providers'
    /// Hansen–Hurwitz variances; `None` when any provider's variance was
    /// inestimable (single draw).
    pub ci_halfwidth: Option<f64>,
}

/// What a job asks of the providers.
#[derive(Debug)]
enum JobKind {
    /// The full private protocol.
    Private {
        query: RangeQuery,
        sampling_rate: f64,
        budget: QueryBudget,
    },
    /// A full plain scan (the speed-up baseline), on the same pool.
    Plain { query: RangeQuery },
    /// A private MIN/MAX: per-provider Exponential-mechanism selection
    /// over the dimension's public domain, answered from Algorithm 1
    /// metadata alone (no data scan, no allocation barrier).
    Extreme {
        dim: usize,
        extreme: Extreme,
        epsilon: f64,
    },
}

impl JobKind {
    /// A stable hash of everything that shapes the job's mechanisms —
    /// query ranges, aggregate, sampling rate, and budget.
    ///
    /// Folded into the job seed so that *different* requests never share
    /// a noise stream — differencing two different releases must face
    /// independent draws, not cancelling ones. It also keys the engine's
    /// per-content occurrence counter, which replaces a global submission
    /// index: a request's noise depends only on its content and on how
    /// many identical copies preceded it, never on unrelated traffic, so
    /// concurrent multi-analyst workloads of distinct queries are
    /// bit-reproducible. Repeated identical requests still advance the
    /// counter and draw fresh noise (each is charged, each is noisy).
    fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let put_u64 = |h: &mut u64, v: u64| fnv1a(h, &v.to_le_bytes());
        match self {
            JobKind::Private {
                query,
                sampling_rate,
                budget,
            } => {
                fnv1a(&mut h, &[1, query.aggregate() as u8]);
                for r in query.ranges() {
                    put_u64(&mut h, r.dim as u64);
                    put_u64(&mut h, r.lo as u64);
                    put_u64(&mut h, r.hi as u64);
                }
                put_u64(&mut h, sampling_rate.to_bits());
                put_u64(&mut h, budget.eps_o.to_bits());
                put_u64(&mut h, budget.eps_s.to_bits());
                put_u64(&mut h, budget.eps_e.to_bits());
                put_u64(&mut h, budget.delta.to_bits());
            }
            // Plain scans draw no noise; any constant works.
            JobKind::Plain { .. } => fnv1a(&mut h, &[2]),
            JobKind::Extreme {
                dim,
                extreme,
                epsilon,
            } => {
                fnv1a(&mut h, &[3, matches!(extreme, Extreme::Max) as u8]);
                put_u64(&mut h, *dim as u64);
                put_u64(&mut h, epsilon.to_bits());
            }
        }
        h
    }
}

/// Mutable per-job progress, guarded by the job mutex.
#[derive(Debug)]
struct JobProgress {
    summaries: Vec<Option<ProviderSummary>>,
    summaries_done: usize,
    allocations: Option<Arc<Vec<u64>>>,
    outcomes: Vec<Option<LocalOutcome>>,
    done: usize,
    error: Option<CoreError>,
    summary_time: Duration,
    allocation_time: Duration,
    execution_time: Duration,
}

/// One in-flight query job, shared between the submitting analyst and the
/// provider workers.
#[derive(Debug)]
pub(crate) struct JobState {
    kind: JobKind,
    index: u64,
    seed: u64,
    /// Per-provider pruning verdicts from the engine's public metadata
    /// snapshot (`true` ⇒ provably empty covering set, skip the step-1
    /// walk). Empty when the pruning pass is off. Deliberately *not* part
    /// of [`JobKind::content_hash`]: pruning is derived from the query and
    /// public metadata, so the job's noise streams must not depend on it.
    pruned: Vec<bool>,
    n_providers: usize,
    /// RNG-lane offset for this engine's providers (see
    /// [`FederationConfig::provider_lane_base`]): local provider `id`
    /// draws from lane `lane_base + id`, so a shard holding global
    /// providers `[o, o+k)` reproduces exactly the 1-shard streams.
    lane_base: u64,
    /// When set, step 3 is solved *outside* this engine: the last summary
    /// only wakes the fragment's waiter, and workers park until
    /// [`PendingFragment::provide_allocation`] delivers the coordinator's
    /// globally solved allocation.
    external_allocation: bool,
    allocation_policy: AllocationPolicy,
    release_mode: ReleaseMode,
    cost_model: fedaqp_smc::CostModel,
    progress: Mutex<JobProgress>,
    cond: Condvar,
}

impl JobState {
    fn new(kind: JobKind, index: u64, config: &FederationConfig) -> Self {
        let n = config.n_providers;
        // The job seed mixes the configured seed with the job's content
        // (see [`JobKind::content_hash`]); the per-provider lanes then
        // derive from the result.
        let seed = derive_seed(config.seed, kind.content_hash(), CONTENT_LANE);
        Self {
            kind,
            index,
            seed,
            pruned: Vec::new(),
            n_providers: n,
            lane_base: config.provider_lane_base,
            external_allocation: false,
            allocation_policy: config.allocation_policy,
            release_mode: config.release_mode,
            cost_model: config.cost_model,
            progress: Mutex::new(JobProgress {
                summaries: vec![None; n],
                summaries_done: 0,
                allocations: None,
                outcomes: vec![None; n],
                done: 0,
                error: None,
                summary_time: Duration::ZERO,
                allocation_time: Duration::ZERO,
                execution_time: Duration::ZERO,
            }),
            cond: Condvar::new(),
        }
    }

    fn fail(&self, progress: &mut JobProgress, error: CoreError) {
        progress.error.get_or_insert(error);
        self.cond.notify_all();
    }

    /// Locks the job progress, recovering from poisoning: a worker that
    /// panicked mid-job marks the job failed (see [`worker_loop`]), so the
    /// state behind a poisoned lock is still consistent for waiters.
    fn lock_progress(&self) -> MutexGuard<'_, JobProgress> {
        self.progress.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// [`Condvar::wait`] with the same poison recovery.
    fn wait_on<'a>(&self, guard: MutexGuard<'a, JobProgress>) -> MutexGuard<'a, JobProgress> {
        self.cond
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// The per-provider half of one job. Runs on the provider's worker thread;
/// the last provider to deliver its summary also solves the allocation
/// program, so the whole step-1→6 pipeline needs no dedicated coordinator
/// thread.
fn run_provider_job(job: &JobState, provider: &DataProvider) {
    let id = provider.id();
    let mut rng = StdRng::seed_from_u64(derive_seed(
        job.seed,
        job.index,
        job.lane_base.wrapping_add(id as u64),
    ));
    match &job.kind {
        JobKind::Plain { query } => {
            let t = Instant::now();
            let value = provider.exact_answer(query);
            let elapsed = t.elapsed();
            let mut progress = job.lock_progress();
            let n_clusters = provider.store().n_clusters();
            progress.outcomes[id] = Some(LocalOutcome {
                provider: id,
                released: None,
                estimate: value as f64,
                smooth_ls: 0.0,
                variance: Some(0.0),
                approximated: false,
                clusters_scanned: n_clusters,
                n_covering: n_clusters,
            });
            progress.execution_time = progress.execution_time.max(elapsed);
            progress.done += 1;
            job.cond.notify_all();
        }
        JobKind::Extreme {
            dim,
            extreme,
            epsilon,
        } => {
            // One EM selection from metadata; no allocation barrier, no
            // data touched. The selection is parked in the outcome's
            // `estimate` slot for the waiter to combine.
            let t = Instant::now();
            let selected =
                crate::extremes::provider_select(provider, *dim, *extreme, *epsilon, &mut rng);
            let elapsed = t.elapsed();
            let mut progress = job.lock_progress();
            progress.execution_time = progress.execution_time.max(elapsed);
            match selected {
                Ok(value) => {
                    progress.outcomes[id] = Some(LocalOutcome {
                        provider: id,
                        released: None,
                        estimate: value as f64,
                        smooth_ls: 0.0,
                        variance: None,
                        approximated: false,
                        clusters_scanned: 0,
                        n_covering: 0,
                    })
                }
                Err(e) => job.fail(&mut progress, e),
            }
            progress.done += 1;
            job.cond.notify_all();
        }
        JobKind::Private {
            query,
            sampling_rate,
            budget,
        } => {
            // ---- Steps 1–2: prepare + DP summary. A provider the
            // optimizer pruned never reaches this arm — the engine answers
            // its noise-only turn inline at submission (see
            // [`EngineHandle::answer_for_pruned`]). ----
            let t = Instant::now();
            let prep = provider.prepare(query);
            let summary = provider.summary_with_rng(query, &prep, budget.eps_o, &mut rng);
            deliver_summary(job, id, summary, t.elapsed(), *sampling_rate);

            // Barrier: wait until the allocation (or a failure) lands.
            let Some(allocation) = await_allocation(job, id) else {
                return;
            };

            // ---- Steps 4–6: local execution ----
            let release_local = job.release_mode == ReleaseMode::LocalDp;
            let t = Instant::now();
            let outcome = provider.execute_with_rng(
                query,
                &prep,
                allocation,
                budget,
                release_local,
                &mut rng,
            );
            deliver_outcome(job, id, outcome, t.elapsed());
        }
    }
}

/// Delivers provider `id`'s step-2 summary into the job. The last summary
/// in solves the allocation program (Eq. 6) for everyone — the step-3
/// barrier needs no dedicated coordinator thread. Shared by the worker
/// path and the inline pruned path so both feed the barrier identically.
fn deliver_summary(
    job: &JobState,
    id: usize,
    summary: Result<ProviderSummary>,
    elapsed: Duration,
    sampling_rate: f64,
) {
    let mut progress = job.lock_progress();
    progress.summary_time = progress.summary_time.max(elapsed);
    match summary {
        Ok(s) => progress.summaries[id] = Some(s),
        Err(e) => job.fail(&mut progress, e),
    }
    progress.summaries_done += 1;
    // ---- Step 3: the last provider in solves the allocation program
    // (Eq. 6) for everyone. ----
    if progress.summaries_done == job.n_providers && progress.error.is_none() {
        if job.external_allocation {
            // A fragment's allocation is solved by the coordinator over
            // *every* shard's summaries: wake the fragment waiter gathering
            // them and leave the workers parked at the barrier until
            // [`PendingFragment::provide_allocation`] lands.
            job.cond.notify_all();
            return;
        }
        let summaries: Vec<ProviderSummary> = progress
            .summaries
            .iter()
            .map(|s| s.expect("all summaries delivered"))
            .collect();
        let t = Instant::now();
        let aggregator = Aggregator::new(
            derive_seed(job.seed, job.index, AGGREGATOR_LANE),
            job.cost_model,
        );
        let allocated = match job.allocation_policy {
            AllocationPolicy::Optimized => aggregator.allocate(&summaries, sampling_rate),
            AllocationPolicy::LocalUniform => {
                aggregator.allocate_local_uniform(&summaries, sampling_rate)
            }
        };
        progress.allocation_time = t.elapsed();
        match allocated {
            Ok(a) => {
                progress.allocations = Some(Arc::new(a));
                job.cond.notify_all();
            }
            Err(e) => job.fail(&mut progress, e),
        }
    }
}

/// Parks until the job's allocation — or a failure — lands. Returns
/// provider `id`'s cluster allocation, or `None` on the failure path
/// (after performing the provider's `done` bookkeeping, so the waiter
/// still unblocks).
fn await_allocation(job: &JobState, id: usize) -> Option<u64> {
    let mut progress = job.lock_progress();
    loop {
        if progress.error.is_some() {
            progress.done += 1;
            job.cond.notify_all();
            return None;
        }
        if let Some(allocations) = &progress.allocations {
            return Some(allocations[id]);
        }
        progress = job.wait_on(progress);
    }
}

/// Delivers provider `id`'s steps-4–6 outcome into the job and performs
/// the final `done` bookkeeping that unblocks the waiter.
fn deliver_outcome(job: &JobState, id: usize, outcome: Result<LocalOutcome>, elapsed: Duration) {
    let mut progress = job.lock_progress();
    progress.execution_time = progress.execution_time.max(elapsed);
    match outcome {
        Ok(o) => progress.outcomes[id] = Some(o),
        Err(e) => job.fail(&mut progress, e),
    }
    progress.done += 1;
    job.cond.notify_all();
}

/// The worker loop a provider's pool thread runs: drain jobs until every
/// engine handle (sender) is gone.
///
/// A panic inside the protocol (provider code, or a poisoned job mutex
/// cascading from a sibling worker) is contained per job: the job is
/// marked failed so waiting analysts get an error instead of blocking
/// forever, and the worker moves on to its next job.
pub(crate) fn worker_loop(provider: &DataProvider, jobs: Receiver<Arc<JobState>>) {
    while let Ok(job) = jobs.recv() {
        obs::gauge_dec(obs::names::ENGINE_QUEUE_DEPTH);
        obs::gauge_inc(obs::names::ENGINE_WORKERS_BUSY);
        let _busy = ObsGaugeDecOnDrop(obs::names::ENGINE_WORKERS_BUSY);
        // `run_provider_job` mutates only the mutex-guarded JobProgress
        // (consistent at every unlock) and reads the provider immutably,
        // so resuming after an unwind observes no broken invariants.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_provider_job(&job, provider)
        }));
        if outcome.is_err() {
            let mut progress = job.lock_progress();
            job.fail(
                &mut progress,
                CoreError::ProtocolViolation("provider worker panicked mid-query"),
            );
        }
    }
}

/// Decrements the named gauge when dropped — keeps the worker-occupancy
/// gauge honest even when a provider job unwinds.
struct ObsGaugeDecOnDrop(&'static str);

impl Drop for ObsGaugeDecOnDrop {
    fn drop(&mut self) {
        obs::gauge_dec(self.0);
    }
}

/// Shared interior of [`EngineHandle`].
#[derive(Debug)]
struct HandleInner {
    /// One job queue per provider; `None` once the engine is shut down.
    ///
    /// A `Mutex` (not `RwLock`): a job fan-out must hold the lock for the
    /// whole send loop so every provider queue observes jobs in the *same*
    /// order. Interleaved fan-outs (provider 0 sees `[a, b]`, provider 1
    /// sees `[b, a]`) would deadlock the pool — each worker blocks at its
    /// first job's allocation barrier waiting for the other.
    senders: Mutex<Option<Vec<Sender<Arc<JobState>>>>>,
    config: FederationConfig,
    schema: Schema,
    /// Public per-provider pruning bounds, captured at engine start. Read
    /// by the optimizer (pruning, cost estimates, `EXPLAIN`) — offline
    /// Algorithm 1 metadata only, never sampled data.
    snapshot: MetaSnapshot,
    /// Per-content submission counts, keyed by [`JobKind::content_hash`].
    /// The job index for a submission is the number of identical
    /// submissions that preceded it, so noise derivation is independent
    /// of unrelated traffic (see the module docs).
    occurrences: Mutex<HashMap<u64, u64>>,
    /// Public scalar facets of each provider (id, `n_min`, regime, agreed
    /// smooth-sensitivity order, arity, SUM cap) — everything the
    /// noise-only turn of a *pruned* provider reads. Lets the engine
    /// answer for pruned providers inline instead of paying a queue
    /// round-trip for a provably empty covering set (see
    /// [`EngineHandle`]'s pruning notes on `submit_with_budget`).
    shadows: Vec<ProviderShadow>,
}

/// A cloneable, thread-safe handle analysts use to submit queries to the
/// worker pool. All clones share one per-content occurrence ledger (the
/// noise derivation) and one set of job queues.
#[derive(Debug, Clone)]
pub struct EngineHandle {
    inner: Arc<HandleInner>,
}

/// Creates the pool plumbing for `config`: a handle plus one job receiver
/// per provider (in provider-id order).
pub(crate) fn pool_channels(
    config: &FederationConfig,
    schema: &Schema,
    snapshot: MetaSnapshot,
    shadows: Vec<ProviderShadow>,
) -> (EngineHandle, Vec<Receiver<Arc<JobState>>>) {
    let (senders, receivers) = (0..config.n_providers).map(|_| channel()).unzip();
    let handle = EngineHandle {
        inner: Arc::new(HandleInner {
            senders: Mutex::new(Some(senders)),
            config: config.clone(),
            schema: schema.clone(),
            snapshot,
            occurrences: Mutex::new(HashMap::new()),
            shadows,
        }),
    };
    (handle, receivers)
}

impl EngineHandle {
    /// The federation configuration the engine serves.
    pub fn config(&self) -> &FederationConfig {
        &self.inner.config
    }

    /// The public table schema.
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// Number of providers (== worker threads) behind this engine.
    pub fn n_providers(&self) -> usize {
        self.inner.config.n_providers
    }

    /// The engine's public metadata snapshot: per-provider pruning bounds
    /// captured at start-up. Offline Algorithm 1 metadata only — reading
    /// (or publishing) it reveals nothing beyond the one-time metadata
    /// release the protocol already accounts for.
    pub fn meta_snapshot(&self) -> &MetaSnapshot {
        &self.inner.snapshot
    }

    /// The default per-query budget from the configuration.
    pub fn default_budget(&self) -> Result<QueryBudget> {
        self.inner.config.query_budget()
    }

    /// Closes the job queues: workers drain what is in flight and exit;
    /// later submissions on any clone of this handle fail cleanly.
    pub(crate) fn close(&self) {
        self.inner
            .senders
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
    }

    /// Fans a job out to every *un-pruned* provider queue. The lock is
    /// held across the whole loop so concurrent submissions cannot
    /// interleave — every provider queue observes the same subsequence of
    /// the global submission order, which is what makes the per-job
    /// allocation barrier deadlock-free (see [`HandleInner::senders`]).
    /// Pruned providers never see the job at all: their noise-only turn
    /// is answered inline by [`Self::answer_for_pruned`], which delivers
    /// into the job directly and never blocks on a queue.
    fn dispatch(&self, job: &Arc<JobState>) -> Result<()> {
        let guard = self
            .inner
            .senders
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let senders = guard
            .as_ref()
            .ok_or(CoreError::ProtocolViolation("engine is shut down"))?;
        for (id, sender) in senders.iter().enumerate() {
            if job.pruned.get(id).copied().unwrap_or(false) {
                continue;
            }
            if sender.send(Arc::clone(job)).is_err() {
                // A worker died (panicked); fail the job so providers that
                // did receive it cannot block at the barrier forever.
                let mut progress = job.lock_progress();
                job.fail(
                    &mut progress,
                    CoreError::ProtocolViolation("engine worker terminated"),
                );
                return Err(CoreError::ProtocolViolation("engine worker terminated"));
            }
            obs::gauge_inc(obs::names::ENGINE_QUEUE_DEPTH);
        }
        Ok(())
    }

    /// Fetch-and-increment the occurrence count for `kind`'s content: the
    /// returned index is the number of identical submissions seen before
    /// this one, which (with the content hash) fully determines the job's
    /// noise streams.
    fn next_occurrence(&self, kind: &JobKind) -> u64 {
        let mut counts = self
            .inner
            .occurrences
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let slot = counts.entry(kind.content_hash()).or_insert(0);
        let index = *slot;
        *slot += 1;
        index
    }

    /// Submits one private query under the configured default budget.
    pub fn submit(&self, query: &RangeQuery, sampling_rate: f64) -> Result<PendingAnswer> {
        let budget = self.default_budget()?;
        self.submit_with_budget(query, sampling_rate, &budget)
    }

    /// Validates a submission without dispatching it: sampling rate in
    /// `(0, 1)`, query dimensions in the schema, budget phases positive.
    /// Stateless, so budget-charging sessions can check a request *before*
    /// charging for it — a request the engine would reject touches no
    /// data and must not cost budget.
    pub fn validate(
        &self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
    ) -> Result<()> {
        if !(sampling_rate.is_finite() && 0.0 < sampling_rate && sampling_rate < 1.0) {
            return Err(CoreError::InvalidSamplingRate(sampling_rate));
        }
        query.check_schema(&self.inner.schema)?;
        crate::plan::check_budget(budget)
    }

    /// Submits one private query under an explicit per-query budget.
    ///
    /// Validation happens here, before any provider sees the job, so a
    /// malformed query costs nothing.
    pub fn submit_with_budget(
        &self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
    ) -> Result<PendingAnswer> {
        self.validate(query, sampling_rate, budget)?;
        // The pruning pass: providers whose public bounds prove an empty
        // covering set skip the step-1 metadata walk. An O(dims) check per
        // provider against start-up bounds — never the per-cluster walk
        // it avoids, and never anything data-derived.
        let pruned = if self.inner.config.optimizer.prune_providers {
            self.inner.snapshot.pruned_flags(query)
        } else {
            Vec::new()
        };
        obs::counter_add(
            obs::names::OPTIMIZER_PRUNED,
            pruned.iter().filter(|&&p| p).count() as u64,
        );
        let kind = JobKind::Private {
            query: query.clone(),
            sampling_rate,
            budget: *budget,
        };
        let index = self.next_occurrence(&kind);
        let mut job = JobState::new(kind, index, &self.inner.config);
        job.pruned = pruned;
        let job = Arc::new(job);
        obs::counter_add(obs::names::ENGINE_QUERIES, 1);
        let _span = obs::span("submit", "engine", obs::SpanId::NONE);
        self.dispatch(&job)?;
        self.answer_for_pruned(&job);
        Ok(PendingAnswer { job })
    }

    /// Answers the noise-only turn of every pruned provider inline, on the
    /// submitting thread, so pruned providers pay no queue round-trip.
    ///
    /// Byte-identical to the worker path by construction: a pruned
    /// provider's covering set is provably empty, so its turn reads only
    /// public scalars — captured in [`ProviderShadow`], the *same* code the
    /// worker path delegates to — and its noise lanes are content-derived
    /// (`derive_seed(job.seed, job.index, id)`), independent of which
    /// thread draws them.
    ///
    /// Ordering is free of the barrier: the empty-prep execution ignores
    /// its allocation, so the inline path delivers its summary *and*
    /// outcome immediately instead of parking at the step-3 barrier —
    /// waiting there would block `submit` and deadlock the all-pruned
    /// case, where no worker thread ever sees the job.
    fn answer_for_pruned(&self, job: &JobState) {
        if !job.pruned.iter().any(|&p| p) {
            return;
        }
        obs::counter_add(
            obs::names::ENGINE_PRUNED_INLINE,
            job.pruned.iter().filter(|&&p| p).count() as u64,
        );
        let JobKind::Private {
            query,
            sampling_rate,
            budget,
        } = &job.kind
        else {
            return;
        };
        let release_local = job.release_mode == ReleaseMode::LocalDp;
        let empty = PreparedQuery {
            covering: Vec::new(),
            proportions: Vec::new(),
            sum_r: 0.0,
        };
        for shadow in &self.inner.shadows {
            let id = shadow.id();
            if !job.pruned.get(id).copied().unwrap_or(false) {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(derive_seed(
                job.seed,
                job.index,
                job.lane_base.wrapping_add(id as u64),
            ));
            let t = Instant::now();
            let summary = shadow.summary(query, &empty, budget.eps_o, &mut rng);
            deliver_summary(job, id, summary, t.elapsed(), *sampling_rate);
            // Check the failure path under the lock exactly as a worker
            // would at the barrier: once the job has failed, only the
            // `done` bookkeeping remains.
            let failed = {
                let mut progress = job.lock_progress();
                if progress.error.is_some() {
                    progress.done += 1;
                    job.cond.notify_all();
                    true
                } else {
                    false
                }
            };
            if failed {
                continue;
            }
            let t = Instant::now();
            let outcome = shadow.empty_outcome(query, budget, release_local, &mut rng);
            deliver_outcome(job, id, Ok(outcome), t.elapsed());
        }
    }

    /// Submits one *fragment* of a sharded private query: the same job as
    /// [`Self::submit_with_budget`], except that (a) the occurrence index
    /// comes from the coordinator's ledger (this engine's own ledger is
    /// untouched — in a sharded deployment the coordinator sees the full
    /// analyst stream, the shards only their fragments), and (b) step 3 is
    /// externalized: providers park after their summaries until the
    /// coordinator feeds back the globally solved allocation through
    /// [`PendingFragment::provide_allocation`].
    ///
    /// Because the job seed is content-derived and the provider lanes are
    /// `lane_base + id`, a shard configured with the 1-shard seed and its
    /// global lane offset produces byte-identical noise to the providers
    /// it replaced.
    pub fn submit_fragment(
        &self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
        occurrence: u64,
    ) -> Result<PendingFragment> {
        self.validate(query, sampling_rate, budget)?;
        let pruned = if self.inner.config.optimizer.prune_providers {
            self.inner.snapshot.pruned_flags(query)
        } else {
            Vec::new()
        };
        obs::counter_add(
            obs::names::OPTIMIZER_PRUNED,
            pruned.iter().filter(|&&p| p).count() as u64,
        );
        let kind = JobKind::Private {
            query: query.clone(),
            sampling_rate,
            budget: *budget,
        };
        let mut job = JobState::new(kind, occurrence, &self.inner.config);
        job.pruned = pruned;
        job.external_allocation = true;
        let job = Arc::new(job);
        obs::counter_add(obs::names::ENGINE_QUERIES, 1);
        let _span = obs::span("submit_fragment", "engine", obs::SpanId::NONE);
        self.dispatch(&job)?;
        self.answer_for_pruned(&job);
        Ok(PendingFragment { job })
    }

    /// Submits one fragment of a sharded MIN/MAX: identical to
    /// [`Self::submit_extreme`] except the occurrence index is supplied by
    /// the coordinator's ledger instead of this engine's.
    pub fn submit_extreme_fragment(
        &self,
        dim: usize,
        extreme: Extreme,
        epsilon: f64,
        occurrence: u64,
    ) -> Result<PendingExtreme> {
        self.validate_extreme(dim, epsilon)?;
        let kind = JobKind::Extreme {
            dim,
            extreme,
            epsilon,
        };
        let job = Arc::new(JobState::new(kind, occurrence, &self.inner.config));
        obs::counter_add(obs::names::ENGINE_EXTREMES, 1);
        self.dispatch(&job)?;
        Ok(PendingExtreme { job })
    }

    /// Validates an extreme-query submission without dispatching it.
    pub fn validate_extreme(&self, dim: usize, epsilon: f64) -> Result<()> {
        self.inner.schema.dimension(dim)?;
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(CoreError::BadConfig(
                "extreme-query epsilon must be positive",
            ));
        }
        Ok(())
    }

    /// Submits a private MIN/MAX of dimension `dim` to the worker pool:
    /// every provider runs one Exponential-mechanism selection over the
    /// domain (from metadata alone) under its job-derived RNG, so extreme
    /// queries are deterministic and concurrent like every other job.
    pub fn submit_extreme(
        &self,
        dim: usize,
        extreme: Extreme,
        epsilon: f64,
    ) -> Result<PendingExtreme> {
        self.validate_extreme(dim, epsilon)?;
        let kind = JobKind::Extreme {
            dim,
            extreme,
            epsilon,
        };
        let index = self.next_occurrence(&kind);
        let job = Arc::new(JobState::new(kind, index, &self.inner.config));
        obs::counter_add(obs::names::ENGINE_EXTREMES, 1);
        self.dispatch(&job)?;
        Ok(PendingExtreme { job })
    }

    /// Submits a plain (non-private, exact) execution of `query` on the
    /// same worker pool — the like-for-like baseline of the speed-up
    /// metric: both paths run on identical threads and are charged the
    /// slowest provider's time.
    pub fn submit_plain(&self, query: &RangeQuery) -> Result<PendingPlain> {
        query.check_schema(&self.inner.schema)?;
        let kind = JobKind::Plain {
            query: query.clone(),
        };
        let index = self.next_occurrence(&kind);
        let job = Arc::new(JobState::new(kind, index, &self.inner.config));
        obs::counter_add(obs::names::ENGINE_PLAIN, 1);
        self.dispatch(&job)?;
        Ok(PendingPlain { job })
    }

    /// Runs a batch concurrently: every query is submitted before any
    /// answer is awaited, so provider workers pipeline across queries.
    pub fn run_batch(&self, batch: &QueryBatch) -> Vec<Result<EngineAnswer>> {
        let pending: Vec<Result<PendingAnswer>> = batch
            .specs()
            .iter()
            .map(|spec| self.submit(&spec.query, spec.sampling_rate))
            .collect();
        pending
            .into_iter()
            .map(|p| p.and_then(PendingAnswer::wait))
            .collect()
    }

    /// Runs a batch one query at a time (each answer awaited before the
    /// next submission). Under a fixed seed this returns exactly the same
    /// answers as [`Self::run_batch`] — the determinism contract of the
    /// per-job RNG derivation.
    pub fn run_batch_serial(&self, batch: &QueryBatch) -> Vec<Result<EngineAnswer>> {
        batch
            .specs()
            .iter()
            .map(|spec| {
                self.submit(&spec.query, spec.sampling_rate)
                    .and_then(PendingAnswer::wait)
            })
            .collect()
    }
}

/// A private query in flight on the pool.
#[derive(Debug)]
pub struct PendingAnswer {
    job: Arc<JobState>,
}

impl PendingAnswer {
    /// A second waiter on the same in-flight job — the dedup pass's
    /// release reuse. [`Self::wait`] only reads job progress and
    /// *recomputes* the release from the job's derived aggregator seed,
    /// so every sharer observes byte-identical answers; nothing is
    /// resubmitted, re-noised, or re-charged.
    pub(crate) fn share(&self) -> PendingAnswer {
        PendingAnswer {
            job: Arc::clone(&self.job),
        }
    }

    /// Blocks until every provider reported, then finalizes the release
    /// (protocol step 6/7) on the calling thread.
    pub fn wait(self) -> Result<EngineAnswer> {
        let job = &self.job;
        let mut progress = job.lock_progress();
        while progress.error.is_none() && progress.done < job.n_providers {
            progress = job.wait_on(progress);
        }
        if let Some(error) = progress.error.clone() {
            return Err(error);
        }
        let outcomes: Vec<LocalOutcome> = progress
            .outcomes
            .iter()
            .map(|o| o.expect("all providers reported"))
            .collect();
        let allocations = progress
            .allocations
            .as_ref()
            .expect("allocation computed")
            .to_vec();
        let (query, budget) = match &job.kind {
            JobKind::Private { query, budget, .. } => (query, *budget),
            _ => unreachable!("only private jobs resolve via PendingAnswer"),
        };

        // ---- Step 6/7: release ----
        let mut aggregator = Aggregator::new(
            derive_seed(job.seed, job.index, AGGREGATOR_LANE),
            job.cost_model,
        );
        let t = Instant::now();
        let (value, smc_network) = match job.release_mode {
            ReleaseMode::LocalDp => (aggregator.finalize_local(&outcomes)?, Duration::ZERO),
            ReleaseMode::Smc => aggregator.finalize_smc(&outcomes, budget.eps_e)?,
        };
        let release_time = t.elapsed();

        // Simulated network rounds — same accounting as the serial runtime.
        let cost_model = job.cost_model;
        let mut network = cost_model.round_time(query_bytes(query))
            + cost_model.round_time(16)
            + cost_model.round_time(8);
        network += match job.release_mode {
            ReleaseMode::LocalDp => cost_model.round_time(16),
            ReleaseMode::Smc => smc_network,
        };

        let timings = PhaseTimings {
            summary: progress.summary_time,
            allocation: progress.allocation_time,
            execution: progress.execution_time,
            release: release_time,
            network,
        };
        // Telemetry reads *only* phase wall-times — public by the threat
        // model (the analyst observes them anyway). Never estimates or
        // sensitivities.
        obs::observe_duration(obs::names::PHASE_SUMMARY, timings.summary);
        obs::observe_duration(obs::names::PHASE_ALLOCATION, timings.allocation);
        obs::observe_duration(obs::names::PHASE_EXECUTION, timings.execution);
        obs::observe_duration(obs::names::PHASE_RELEASE, timings.release);
        obs::observe_duration(obs::names::PHASE_NETWORK, timings.network);

        Ok(EngineAnswer {
            value,
            cost: budget.cost(),
            timings,
            clusters_scanned: outcomes.iter().map(|o| o.clusters_scanned).sum(),
            covering_total: outcomes.iter().map(|o| o.n_covering).sum(),
            approximated_providers: outcomes.iter().filter(|o| o.approximated).count(),
            allocations,
            raw_estimate: outcomes.iter().map(|o| o.estimate).sum(),
            smooth_ls: outcomes.iter().map(|o| o.smooth_ls).collect(),
            ci_halfwidth: crate::protocol::combined_ci_halfwidth(&outcomes),
        })
    }
}

/// Content hash of a private job — the coordinator's occurrence-ledger
/// key. Identical to the key the 1-shard engine uses internally, so the
/// coordinator's occurrence indices reproduce the 1-shard indices exactly.
pub(crate) fn private_content_hash(
    query: &RangeQuery,
    sampling_rate: f64,
    budget: &QueryBudget,
) -> u64 {
    JobKind::Private {
        query: query.clone(),
        sampling_rate,
        budget: *budget,
    }
    .content_hash()
}

/// Content hash of an extreme job (coordinator occurrence-ledger key).
pub(crate) fn extreme_content_hash(dim: usize, extreme: Extreme, epsilon: f64) -> u64 {
    JobKind::Extreme {
        dim,
        extreme,
        epsilon,
    }
    .content_hash()
}

/// One shard's half of a sharded private query: summaries out, allocation
/// in, partial out. Created by [`EngineHandle::submit_fragment`];
/// dropping it before the allocation lands aborts the job so parked
/// workers unblock instead of waiting forever on a coordinator that gave
/// up (a failed sibling shard, a dropped connection).
#[derive(Debug)]
pub struct PendingFragment {
    job: Arc<JobState>,
}

impl PendingFragment {
    /// Blocks until every local provider delivered its step-2 summary,
    /// then returns them in local provider order together with the
    /// slowest provider's summary time.
    pub fn summaries(&self) -> Result<(Vec<ProviderSummary>, Duration)> {
        let job = &self.job;
        let mut progress = job.lock_progress();
        while progress.error.is_none() && progress.summaries_done < job.n_providers {
            progress = job.wait_on(progress);
        }
        if let Some(error) = progress.error.clone() {
            return Err(error);
        }
        let summaries = progress
            .summaries
            .iter()
            .map(|s| s.expect("all summaries delivered"))
            .collect();
        Ok((summaries, progress.summary_time))
    }

    /// Feeds the coordinator's globally solved allocation (this shard's
    /// slice, in local provider order) to the parked workers.
    pub fn provide_allocation(&self, allocations: Vec<u64>) -> Result<()> {
        let job = &self.job;
        if allocations.len() != job.n_providers {
            return Err(CoreError::ProtocolViolation(
                "fragment allocation length does not match shard providers",
            ));
        }
        let mut progress = job.lock_progress();
        if progress.allocations.is_some() {
            return Err(CoreError::ProtocolViolation(
                "fragment allocation delivered twice",
            ));
        }
        progress.allocations = Some(Arc::new(allocations));
        job.cond.notify_all();
        Ok(())
    }

    /// Blocks until every local provider executed, then returns the
    /// shard's mergeable partial (per-provider released values in local
    /// provider order — the coordinator re-runs the 1-shard release fold
    /// over the global concatenation, so merging is bit-exact).
    pub fn partial(&self) -> Result<crate::shard::FragmentPartial> {
        let job = &self.job;
        let mut progress = job.lock_progress();
        while progress.error.is_none() && progress.done < job.n_providers {
            progress = job.wait_on(progress);
        }
        if let Some(error) = progress.error.clone() {
            return Err(error);
        }
        let rows = progress
            .outcomes
            .iter()
            .map(|o| {
                let o = o.expect("all providers reported");
                let released = o.released.ok_or(CoreError::ProtocolViolation(
                    "fragment provider withheld its release (SMC mode is not shardable)",
                ))?;
                Ok(crate::shard::PartialRow {
                    released,
                    variance: o.variance,
                    approximated: o.approximated,
                    clusters_scanned: o.clusters_scanned as u64,
                    n_covering: o.n_covering as u64,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(crate::shard::FragmentPartial {
            rows,
            execution: progress.execution_time,
        })
    }
}

impl Drop for PendingFragment {
    fn drop(&mut self) {
        // Abort an incomplete fragment: workers parked at the allocation
        // barrier would otherwise wait forever once the coordinator is
        // gone. Completed fragments (allocation delivered) finish on
        // their own; failed ones are already unblocked.
        let mut progress = self.job.lock_progress();
        if progress.allocations.is_none() && progress.error.is_none() {
            self.job.fail(
                &mut progress,
                CoreError::ProtocolViolation("fragment aborted before allocation"),
            );
        }
    }
}

/// A plain (baseline) execution in flight on the pool.
#[derive(Debug)]
pub struct PendingPlain {
    job: Arc<JobState>,
}

impl PendingPlain {
    /// Blocks until every provider scanned, then combines the exact sum.
    pub fn wait(self) -> Result<PlainAnswer> {
        let job = &self.job;
        let mut progress = job.lock_progress();
        while progress.error.is_none() && progress.done < job.n_providers {
            progress = job.wait_on(progress);
        }
        if let Some(error) = progress.error.clone() {
            return Err(error);
        }
        let value: u64 = progress
            .outcomes
            .iter()
            .map(|o| o.expect("all providers reported").estimate as u64)
            .sum();
        let query = match &job.kind {
            JobKind::Plain { query } => query,
            _ => unreachable!("only plain jobs resolve via PendingPlain"),
        };
        let network = job.cost_model.round_time(query_bytes(query)) + job.cost_model.round_time(16);
        Ok(PlainAnswer {
            value,
            duration: progress.execution_time + network,
        })
    }
}

/// The engine's answer to one private MIN/MAX job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineExtreme {
    /// The combined (post-processed) selection across providers.
    pub value: fedaqp_model::Value,
    /// ε charged (per provider; parallel composition across providers).
    pub epsilon: f64,
    /// Wall time of the slowest provider's selection.
    pub execution: Duration,
    /// Simulated network time (query broadcast + one result round).
    pub network: Duration,
}

/// A private extreme query in flight on the pool.
#[derive(Debug)]
pub struct PendingExtreme {
    job: Arc<JobState>,
}

impl PendingExtreme {
    /// Blocks until every provider selected, then combines the per-provider
    /// DP selections by post-processing (max of outputs for MAX, min for
    /// MIN — Thm. 3.3, free).
    pub fn wait(self) -> Result<EngineExtreme> {
        let job = &self.job;
        let mut progress = job.lock_progress();
        while progress.error.is_none() && progress.done < job.n_providers {
            progress = job.wait_on(progress);
        }
        if let Some(error) = progress.error.clone() {
            return Err(error);
        }
        let (extreme, epsilon) = match &job.kind {
            JobKind::Extreme {
                extreme, epsilon, ..
            } => (*extreme, *epsilon),
            _ => unreachable!("only extreme jobs resolve via PendingExtreme"),
        };
        let selections = progress
            .outcomes
            .iter()
            .map(|o| o.expect("all providers reported").estimate as fedaqp_model::Value);
        let value = match extreme {
            Extreme::Max => selections.max(),
            Extreme::Min => selections.min(),
        }
        .expect("non-empty providers");
        let network = job.cost_model.round_time(16) + job.cost_model.round_time(8);
        Ok(EngineExtreme {
            value,
            epsilon,
            execution: progress.execution_time,
            network,
        })
    }
}

/// An owned, long-lived engine: consumes a [`Federation`], moves each
/// provider onto a dedicated worker thread, and serves queries through
/// cloneable [`EngineHandle`]s until [`FederationEngine::shutdown`] hands
/// the federation back.
#[derive(Debug)]
pub struct FederationEngine {
    handle: EngineHandle,
    workers: Vec<JoinHandle<DataProvider>>,
}

impl FederationEngine {
    /// Starts the worker pool (one thread per provider).
    pub fn start(federation: Federation) -> Self {
        let (config, schema, providers) = federation.into_parts();
        let snapshot = MetaSnapshot::from_providers(&providers);
        let shadows = providers.iter().map(DataProvider::shadow).collect();
        let (handle, receivers) = pool_channels(&config, &schema, snapshot, shadows);
        let workers = providers
            .into_iter()
            .zip(receivers)
            .map(|(provider, jobs)| {
                std::thread::spawn(move || {
                    worker_loop(&provider, jobs);
                    provider
                })
            })
            .collect();
        Self { handle, workers }
    }

    /// A new handle onto this engine (cheap; clone freely across threads).
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Drains in-flight jobs, stops the workers, and reassembles the
    /// federation (providers return in id order).
    pub fn shutdown(self) -> Federation {
        self.handle.close();
        let mut providers: Vec<DataProvider> = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("engine worker panicked"))
            .collect();
        providers.sort_by_key(DataProvider::id);
        Federation::from_parts(
            self.handle.config().clone(),
            self.handle.schema().clone(),
            providers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use fedaqp_model::{Aggregate, Dimension, Domain, Range, Row};
    use fedaqp_smc::CostModel;

    fn schema() -> Schema {
        Schema::new(vec![
            Dimension::new("x", Domain::new(0, 999).unwrap()),
            Dimension::new("y", Domain::new(0, 99).unwrap()),
        ])
        .unwrap()
    }

    fn partitions(rows_per: usize, n: usize) -> Vec<Vec<Row>> {
        (0..n)
            .map(|p| {
                (0..rows_per)
                    .map(|i| {
                        let v = (i * 7 + p * 13) % 1000;
                        Row::cell(vec![v as i64, ((i + p) % 100) as i64], 1 + (i % 3) as u64)
                    })
                    .collect()
            })
            .collect()
    }

    fn config(capacity: usize) -> FederationConfig {
        let mut cfg = FederationConfig::paper_default(capacity);
        cfg.cost_model = CostModel::zero();
        cfg.n_min = 3;
        cfg
    }

    fn federation() -> Federation {
        Federation::build(config(50), schema(), partitions(2000, 4)).unwrap()
    }

    fn count_query(lo: i64, hi: i64) -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(0, lo, hi).unwrap()]).unwrap()
    }

    fn batch() -> QueryBatch {
        let mut batch = QueryBatch::new();
        for i in 0..6 {
            batch.push(count_query(50 * i, 500 + 50 * i), 0.2);
        }
        batch
    }

    #[test]
    fn scoped_engine_answers_are_consistent() {
        let fed = federation();
        let q = count_query(100, 800);
        let ans = fed
            .with_engine(|engine| engine.submit(&q, 0.2).unwrap().wait())
            .unwrap();
        assert!(ans.value.is_finite());
        assert_eq!(ans.allocations.len(), 4);
        assert_eq!(ans.smooth_ls.len(), 4);
        assert!(ans.clusters_scanned > 0);
        assert!(ans.covering_total >= ans.clusters_scanned);
        assert!((ans.cost.eps - 1.0).abs() < 1e-9);
        assert!(ans.raw_estimate.is_finite());
    }

    #[test]
    fn plain_jobs_run_on_the_pool_and_are_exact() {
        let fed = federation();
        let q = count_query(100, 700);
        let exact = fed.exact(&q);
        let plain = fed
            .with_engine(|engine| engine.submit_plain(&q).unwrap().wait())
            .unwrap();
        assert_eq!(plain.value, exact);
    }

    #[test]
    fn batch_is_deterministic_serial_vs_concurrent() {
        let serial: Vec<_> = federation()
            .with_engine(|engine| engine.run_batch_serial(&batch()))
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let concurrent: Vec<_> = federation()
            .with_engine(|engine| engine.run_batch(&batch()))
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(serial.len(), concurrent.len());
        for (a, b) in serial.iter().zip(&concurrent) {
            assert_eq!(a.value, b.value);
            assert_eq!(a.allocations, b.allocations);
            assert_eq!(a.raw_estimate, b.raw_estimate);
            assert_eq!(a.smooth_ls, b.smooth_ls);
        }
    }

    #[test]
    fn smc_release_works_through_the_engine() {
        let mut cfg = config(50);
        cfg.release_mode = ReleaseMode::Smc;
        cfg.epsilon = 100.0;
        let fed = Federation::build(cfg, schema(), partitions(3000, 4)).unwrap();
        let q = count_query(0, 999);
        let exact = fed.exact(&q) as f64;
        let ans = fed
            .with_engine(|engine| engine.submit(&q, 0.2).unwrap().wait())
            .unwrap();
        assert!(ans.value.is_finite());
        assert!(
            (ans.value - exact).abs() < 0.3 * exact,
            "value {}",
            ans.value
        );
    }

    #[test]
    fn invalid_submissions_fail_before_touching_workers() {
        let fed = federation();
        fed.with_engine(|engine| {
            let q = count_query(0, 999);
            assert!(matches!(
                engine.submit(&q, 0.0),
                Err(CoreError::InvalidSamplingRate(_))
            ));
            assert!(matches!(
                engine.submit(&q, 1.0),
                Err(CoreError::InvalidSamplingRate(_))
            ));
            let bad_dim =
                RangeQuery::new(Aggregate::Count, vec![Range::new(7, 0, 1).unwrap()]).unwrap();
            assert!(engine.submit(&bad_dim, 0.2).is_err());
            let mut bad_budget = engine.default_budget().unwrap();
            bad_budget.eps_s = 0.0;
            assert!(engine.submit_with_budget(&q, 0.2, &bad_budget).is_err());
        });
    }

    #[test]
    fn handle_clones_error_after_close() {
        let fed = federation();
        let escaped = fed.with_engine(|engine| engine.clone());
        let q = count_query(0, 999);
        assert!(matches!(
            escaped.submit(&q, 0.2),
            Err(CoreError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn owned_engine_round_trips_the_federation() {
        let fed = federation();
        let q = count_query(100, 800);
        let engine = FederationEngine::start(fed);
        let handle = engine.handle();
        let ans = handle.submit(&q, 0.2).unwrap().wait().unwrap();
        assert!(ans.value.is_finite());
        let mut fed = engine.shutdown();
        // The reassembled federation still answers queries, and its
        // providers are back in id order.
        for (i, p) in fed.providers().iter().enumerate() {
            assert_eq!(p.id(), i);
        }
        let again = fed.run(&q, 0.2).unwrap();
        assert!(again.value.is_finite());
        // The handle is dead after shutdown.
        assert!(handle.submit(&q, 0.2).is_err());
    }

    #[test]
    fn many_analysts_share_one_engine() {
        let fed = federation();
        let answers = fed.with_engine(|engine| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..8)
                    .map(|a| {
                        let engine = engine.clone();
                        scope.spawn(move || {
                            let q = count_query(10 * a, 400 + 40 * a);
                            engine.submit(&q, 0.2).unwrap().wait().unwrap().value
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<f64>>()
            })
        });
        assert_eq!(answers.len(), 8);
        assert!(answers.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn heavy_interleaved_submission_does_not_deadlock() {
        // Regression: the fan-out used to run under a shared read lock, so
        // two analysts' sends could interleave and land in different orders
        // on different provider queues — each worker then blocked at a
        // different job's allocation barrier, deadlocking the pool. The
        // fan-out is now serialized; 8 analysts × 25 queries must drain.
        let fed = Federation::build(config(50), schema(), partitions(400, 4)).unwrap();
        fed.with_engine(|engine| {
            std::thread::scope(|scope| {
                for analyst in 0..8usize {
                    let engine = engine.clone();
                    scope.spawn(move || {
                        for i in 0..25usize {
                            let lo = ((i * 7 + analyst) % 200) as i64;
                            let hi = (500 + (i * 11) % 400) as i64;
                            let q = count_query(lo, hi);
                            engine.submit(&q, 0.2).unwrap().wait().unwrap();
                        }
                    });
                }
            });
        });
    }

    #[test]
    fn panic_inside_with_engine_propagates_instead_of_hanging() {
        // Regression: a panic in the closure used to skip handle.close(),
        // leaving the scoped workers blocked in recv() while thread::scope
        // waited to join them — a process-wide deadlock. The drop guard
        // must close the pool on unwind so the panic propagates.
        let fed = federation();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fed.with_engine(|_engine| panic!("analyst code failed"));
        }));
        assert!(result.is_err(), "panic must propagate out of with_engine");
        // The federation (and a fresh pool) still works afterwards.
        let q = count_query(100, 800);
        let ans = fed
            .with_engine(|engine| engine.submit(&q, 0.2).unwrap().wait())
            .unwrap();
        assert!(ans.value.is_finite());
    }

    #[test]
    fn job_seeds_differ_across_different_requests_at_the_same_index() {
        // Regression: routing the serial extension APIs through fresh
        // scoped engines means many jobs land on index 0 with the same
        // configured seed. Different requests must still draw independent
        // noise, so the job seed mixes the request content.
        let cfg = config(50);
        let budget = cfg.query_budget().unwrap();
        let seed_of = |kind: JobKind| JobState::new(kind, 0, &cfg).seed;
        let private = |lo: i64, hi: i64, sr: f64| JobKind::Private {
            query: count_query(lo, hi),
            sampling_rate: sr,
            budget,
        };
        let base = seed_of(private(0, 500, 0.2));
        // Identical request → identical seed (repeating a release reveals
        // no more than one release).
        assert_eq!(base, seed_of(private(0, 500, 0.2)));
        // Different ranges, sampling rate, or budget → different stream.
        assert_ne!(base, seed_of(private(0, 501, 0.2)));
        assert_ne!(base, seed_of(private(0, 500, 0.3)));
        let mut other_budget = budget;
        other_budget.eps_e *= 2.0;
        assert_ne!(
            base,
            seed_of(JobKind::Private {
                query: count_query(0, 500),
                sampling_rate: 0.2,
                budget: other_budget,
            })
        );
        // Extreme jobs separate by dimension and direction.
        let extreme = |dim: usize, extreme: Extreme| JobKind::Extreme {
            dim,
            extreme,
            epsilon: 1.0,
        };
        assert_ne!(
            seed_of(extreme(0, Extreme::Max)),
            seed_of(extreme(0, Extreme::Min))
        );
        assert_ne!(
            seed_of(extreme(0, Extreme::Max)),
            seed_of(extreme(1, Extreme::Max))
        );
        assert_ne!(base, seed_of(extreme(0, Extreme::Max)));
    }

    #[test]
    fn different_queries_draw_independent_noise_at_index_zero() {
        // Two fresh scoped engines over identical federations: index 0 on
        // both, but the queries differ, so the realized noise must too.
        let noise_of = |lo: i64, hi: i64| {
            let ans = federation()
                .with_engine(|engine| engine.submit(&count_query(lo, hi), 0.2).unwrap().wait())
                .unwrap();
            ans.value - ans.raw_estimate
        };
        assert_ne!(noise_of(0, 500).to_bits(), noise_of(1, 500).to_bits());
    }

    #[test]
    fn distinct_queries_are_independent_of_submission_order() {
        // The attack-gate determinism contract: a workload of *distinct*
        // queries returns bit-identical answers no matter which order (or
        // which analyst thread) submitted them — each job's noise derives
        // from its content and occurrence count, not a global counter.
        let run_in_order = |order: &[usize]| -> Vec<(i64, f64, f64)> {
            let fed = federation();
            let mut out: Vec<(i64, f64, f64)> = fed.with_engine(|engine| {
                order
                    .iter()
                    .map(|&i| {
                        let lo = 10 * i as i64;
                        let ans = engine
                            .submit(&count_query(lo, 700), 0.2)
                            .unwrap()
                            .wait()
                            .unwrap();
                        (lo, ans.value, ans.raw_estimate)
                    })
                    .collect()
            });
            out.sort_by_key(|(lo, _, _)| *lo);
            out
        };
        let forward = run_in_order(&[0, 1, 2, 3, 4]);
        let reversed = run_in_order(&[4, 3, 2, 1, 0]);
        let shuffled = run_in_order(&[2, 0, 4, 1, 3]);
        for ((a, b), c) in forward.iter().zip(&reversed).zip(&shuffled) {
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "order-dependent noise");
            assert_eq!(a.1.to_bits(), c.1.to_bits(), "order-dependent noise");
            assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
        // Repeats of an identical query still draw fresh noise: averaging
        // a query by resubmitting it is never free.
        let fed = federation();
        let (first, second) = fed.with_engine(|engine| {
            let q = count_query(100, 800);
            let a = engine.submit(&q, 0.2).unwrap().wait().unwrap();
            let b = engine.submit(&q, 0.2).unwrap().wait().unwrap();
            (a.value - a.raw_estimate, b.value - b.raw_estimate)
        });
        assert_ne!(first.to_bits(), second.to_bits(), "repeat reused noise");
    }

    #[test]
    fn derive_seed_separates_lanes_and_indices() {
        let a = derive_seed(7, 0, 0);
        let b = derive_seed(7, 1, 0);
        let c = derive_seed(7, 0, 1);
        let d = derive_seed(7, 0, AGGREGATOR_LANE);
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn batch_builder_basics() {
        let mut b = QueryBatch::new();
        assert!(b.is_empty());
        b.push(count_query(0, 10), 0.1);
        assert_eq!(b.len(), 1);
        let collected: QueryBatch = b.specs().to_vec().into_iter().collect();
        assert_eq!(collected.len(), 1);
    }
}
