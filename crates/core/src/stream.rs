//! Live federation: streaming ingest with incremental metadata.
//!
//! The paper's offline phase (clustering + Algorithm 1 metadata) assumes a
//! frozen table. This module lets a provider keep accepting rows *while
//! serving queries*:
//!
//! - **Incremental maintenance.** Each appended row lands in the provider's
//!   open tail cluster ([`fedaqp_storage::ClusterStore::append_row`]) and
//!   bumps the Algorithm 1 tail counters in place
//!   ([`fedaqp_storage::ProviderMeta::append_row`]). On uncoarsened metadata
//!   this is property-tested byte-equivalent to a from-scratch recompute; on
//!   bucketed metadata the min/max stay exact while interior tails drift.
//! - **Staleness-bounded refresh.** A [`RefreshPolicy`] bounds that drift:
//!   once `max_stale_rows` rows or `max_stale_age` wall time accumulate
//!   since the last full recompute, the next ingest triggers Algorithm 1
//!   from scratch (plus the configured coarsening) on every provider.
//! - **Epoch-salted noise.** Every accepted batch bumps the data **epoch**
//!   and re-derives the federation seed from the base seed and the epoch
//!   (SplitMix64 finalizer). Scoped engines reset their occurrence ledgers,
//!   so without the salt an analyst could replay the same query before and
//!   after an ingest, get *identical* noise on *different* data, and
//!   subtract it — a differencing attack. Epoch 0 keeps the base seed
//!   bit-for-bit, so a frozen federation stays byte-identical to the
//!   serial / concurrent / remote paths.
//! - **Snapshot consistency.** Queries run through
//!   [`Federation::with_engine`], which pins the provider set, metadata
//!   snapshot, and seed for the whole scope — an in-flight plan reads one
//!   consistent version. The TCP server wraps a [`LiveFederation`] in a
//!   reader–writer lock: queries share the read side, ingest takes the
//!   write side between plans.

use std::time::{Duration, Instant};

use fedaqp_model::Row;
use fedaqp_obs as obs;

use crate::error::CoreError;
use crate::federation::Federation;
use crate::Result;

/// Bounds on how stale incrementally-maintained metadata may get before an
/// ingest forces a full Algorithm 1 recompute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshPolicy {
    /// Recompute after this many rows appended since the last refresh.
    pub max_stale_rows: usize,
    /// Recompute once this much wall time passed since the last refresh.
    pub max_stale_age: Duration,
}

impl Default for RefreshPolicy {
    fn default() -> Self {
        Self {
            max_stale_rows: 4096,
            max_stale_age: Duration::from_secs(60),
        }
    }
}

/// What one [`LiveFederation::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Rows appended (the whole batch, or zero — batches are atomic).
    pub accepted: u64,
    /// Data epoch after the ingest (bumped once per accepted batch).
    pub epoch: u64,
    /// Whether the staleness policy triggered a full metadata recompute.
    pub refreshed: bool,
}

/// A federation that accepts streaming ingest while serving queries.
#[derive(Debug)]
pub struct LiveFederation {
    federation: Federation,
    policy: RefreshPolicy,
    base_seed: u64,
    epoch: u64,
    stale_rows: usize,
    last_refresh: Instant,
}

/// SplitMix64 finalizer: derives the epoch-salted noise seed. Epoch 0 is
/// the identity so a never-ingested federation keeps its configured seed.
fn epoch_seed(base: u64, epoch: u64) -> u64 {
    if epoch == 0 {
        return base;
    }
    let mut z = base ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LiveFederation {
    /// Wraps a built federation for live serving under `policy`.
    pub fn new(federation: Federation, policy: RefreshPolicy) -> Self {
        let base_seed = federation.config().seed;
        Self {
            federation,
            policy,
            base_seed,
            epoch: 0,
            stale_rows: 0,
            last_refresh: Instant::now(),
        }
    }

    /// Read access to the wrapped federation (queries, schema, oracle).
    #[inline]
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// Unwraps the federation (e.g. to hand it to a long-lived engine).
    pub fn into_inner(self) -> Federation {
        self.federation
    }

    /// Current data epoch (0 until the first accepted batch).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rows appended since the last full metadata recompute.
    #[inline]
    pub fn stale_rows(&self) -> usize {
        self.stale_rows
    }

    /// The staleness policy in force.
    #[inline]
    pub fn policy(&self) -> &RefreshPolicy {
        &self.policy
    }

    /// Appends `rows` to `provider`'s live store.
    ///
    /// The batch is atomic: every row is schema-checked *before* anything
    /// mutates, so a bad batch is rejected whole (no partial appends, no
    /// epoch bump). An accepted batch maintains the metadata incrementally,
    /// bumps the data epoch, re-salts the noise seed, and — if the
    /// [`RefreshPolicy`] bounds are exceeded — recomputes Algorithm 1
    /// metadata from scratch on every provider.
    pub fn ingest(&mut self, provider: usize, rows: Vec<Row>) -> Result<IngestReport> {
        if provider >= self.federation.providers().len() {
            return Err(CoreError::BadConfig("ingest provider id out of range"));
        }
        if rows.is_empty() {
            return Ok(IngestReport {
                accepted: 0,
                epoch: self.epoch,
                refreshed: false,
            });
        }
        for row in &rows {
            self.federation.schema().check_row(row)?;
        }
        let accepted = rows.len() as u64;
        for row in rows {
            self.federation.providers_mut()[provider].append_row(row)?;
        }
        obs::counter_add(obs::names::STREAM_INGESTED_ROWS, accepted);
        self.stale_rows += accepted as usize;
        self.epoch += 1;
        let refreshed = self.stale_rows >= self.policy.max_stale_rows
            || self.last_refresh.elapsed() >= self.policy.max_stale_age;
        if refreshed {
            obs::counter_add(obs::names::STREAM_REFRESHES, 1);
            self.recompute_meta();
        }
        self.federation
            .set_seed(epoch_seed(self.base_seed, self.epoch));
        Ok(IngestReport {
            accepted,
            epoch: self.epoch,
            refreshed,
        })
    }

    /// Forces a full Algorithm 1 recompute now, regardless of staleness.
    /// Counts as a new epoch (the metadata — hence the sampling
    /// distribution — changes, so the noise seed is re-salted too).
    pub fn refresh(&mut self) {
        obs::counter_add(obs::names::STREAM_REFRESHES, 1);
        self.recompute_meta();
        self.epoch += 1;
        self.federation
            .set_seed(epoch_seed(self.base_seed, self.epoch));
    }

    fn recompute_meta(&mut self) {
        let config = self.federation.config().clone();
        for p in self.federation.providers_mut() {
            p.rebuild_meta(&config);
        }
        self.stale_rows = 0;
        self.last_refresh = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use fedaqp_model::{Aggregate, Dimension, Domain, Range, RangeQuery, Schema};
    use fedaqp_storage::ProviderMeta;

    fn schema() -> Schema {
        Schema::new(vec![Dimension::new("x", Domain::new(0, 99).unwrap())]).unwrap()
    }

    fn federation(metadata_buckets: Option<usize>) -> Federation {
        let partitions: Vec<Vec<Row>> = (0..2)
            .map(|p| {
                (0..600)
                    .map(|i| Row::cell(vec![((i * 7 + p) % 100) as i64], 1))
                    .collect()
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(32);
        cfg.n_providers = 2;
        cfg.cost_model = fedaqp_smc::CostModel::zero();
        cfg.metadata_buckets = metadata_buckets;
        Federation::build(cfg, schema(), partitions).unwrap()
    }

    fn query() -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(0, 10, 80).unwrap()]).unwrap()
    }

    #[test]
    fn frozen_federation_keeps_base_seed() {
        let fed = federation(None);
        let base = fed.config().seed;
        let live = LiveFederation::new(fed, RefreshPolicy::default());
        assert_eq!(live.epoch(), 0);
        assert_eq!(live.federation().config().seed, base);
        assert_eq!(epoch_seed(base, 0), base);
    }

    #[test]
    fn ingest_appends_rows_and_maintains_exact_metadata() {
        let mut live = LiveFederation::new(federation(None), RefreshPolicy::default());
        let before = live.federation().exact(&query());
        let rows: Vec<Row> = (0..40)
            .map(|i| Row::cell(vec![(i % 71) as i64], 1))
            .collect();
        let report = live.ingest(0, rows).unwrap();
        assert_eq!(report.accepted, 40);
        assert_eq!(report.epoch, 1);
        assert!(!report.refreshed);
        assert!(live.federation().exact(&query()) > before);
        // Uncoarsened incremental metadata is exactly a full recompute.
        let agreed_s = live.federation().config().agreed_s;
        for p in live.federation().providers() {
            assert_eq!(p.meta(), &ProviderMeta::build(p.store(), agreed_s));
        }
        // Queries still run through the engine on the new version.
        let budget = live.federation().default_budget().unwrap();
        let ans = live
            .federation()
            .with_engine(|engine| engine.submit_with_budget(&query(), 0.3, &budget)?.wait())
            .unwrap();
        assert!(ans.value.is_finite());
    }

    #[test]
    fn ingest_bumps_epoch_and_resalts_seed() {
        let mut live = LiveFederation::new(federation(None), RefreshPolicy::default());
        let base = live.federation().config().seed;
        live.ingest(1, vec![Row::cell(vec![5], 1)]).unwrap();
        assert_eq!(live.epoch(), 1);
        let salted = live.federation().config().seed;
        assert_ne!(salted, base);
        assert_eq!(salted, epoch_seed(base, 1));
        live.ingest(1, vec![Row::cell(vec![6], 1)]).unwrap();
        assert_eq!(live.federation().config().seed, epoch_seed(base, 2));
    }

    #[test]
    fn row_bound_triggers_full_recompute_on_coarse_metadata() {
        let policy = RefreshPolicy {
            max_stale_rows: 5,
            max_stale_age: Duration::from_secs(3600),
        };
        let mut live = LiveFederation::new(federation(Some(4)), policy);
        let r1 = live
            .ingest(0, (0..3).map(|i| Row::cell(vec![i], 1)).collect())
            .unwrap();
        assert!(!r1.refreshed);
        assert_eq!(live.stale_rows(), 3);
        let r2 = live
            .ingest(0, (0..3).map(|i| Row::cell(vec![i + 10], 1)).collect())
            .unwrap();
        assert!(r2.refreshed);
        assert_eq!(live.stale_rows(), 0);
        // After the refresh the metadata is exactly the from-scratch
        // coarsened build — no residual drift.
        let cfg = live.federation().config().clone();
        for p in live.federation().providers() {
            let full = ProviderMeta::build(p.store(), cfg.agreed_s);
            assert_eq!(p.meta(), &full.coarsened(cfg.metadata_buckets.unwrap()));
        }
    }

    #[test]
    fn age_bound_triggers_full_recompute() {
        let policy = RefreshPolicy {
            max_stale_rows: usize::MAX,
            max_stale_age: Duration::ZERO,
        };
        let mut live = LiveFederation::new(federation(None), policy);
        let report = live.ingest(0, vec![Row::cell(vec![7], 1)]).unwrap();
        assert!(report.refreshed);
        assert_eq!(live.stale_rows(), 0);
    }

    #[test]
    fn manual_refresh_counts_as_an_epoch() {
        let mut live = LiveFederation::new(federation(Some(4)), RefreshPolicy::default());
        let base = live.federation().config().seed;
        live.refresh();
        assert_eq!(live.epoch(), 1);
        assert_eq!(live.federation().config().seed, epoch_seed(base, 1));
    }

    #[test]
    fn bad_batches_are_rejected_atomically() {
        let mut live = LiveFederation::new(federation(None), RefreshPolicy::default());
        let before = live.federation().exact(&query());
        // Unknown provider.
        assert!(live.ingest(9, vec![Row::cell(vec![5], 1)]).is_err());
        // Second row violates the schema: whole batch refused, nothing
        // appended, epoch unchanged.
        let bad = vec![Row::cell(vec![5], 1), Row::cell(vec![500], 1)];
        assert!(live.ingest(0, bad).is_err());
        assert_eq!(live.epoch(), 0);
        assert_eq!(live.federation().exact(&query()), before);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut live = LiveFederation::new(federation(None), RefreshPolicy::default());
        let report = live.ingest(0, vec![]).unwrap();
        assert_eq!(
            report,
            IngestReport {
                accepted: 0,
                epoch: 0,
                refreshed: false
            }
        );
    }

    #[test]
    fn epoch_seed_is_stable_and_well_spread() {
        assert_eq!(epoch_seed(0xFEDA, 0), 0xFEDA);
        let a = epoch_seed(0xFEDA, 1);
        let b = epoch_seed(0xFEDA, 2);
        assert_ne!(a, b);
        assert_eq!(a, epoch_seed(0xFEDA, 1));
    }
}
