//! Metadata-driven plan optimization: prune, dedup, reorder — and explain.
//!
//! Algorithm 1's offline metadata exists precisely so the federation can
//! reason about a query *without touching data*. This module puts that to
//! work between plan construction and submission:
//!
//! 1. **Provider pruning.** A provider whose public per-dimension
//!    `[v_min, v_max]` bounds miss any queried range provably has an empty
//!    covering set `C^Q` (Eq. 2): every cluster's band is contained in the
//!    provider band, so no cluster can intersect either. The engine then
//!    skips protocol step 1 (the per-cluster metadata walk) on that
//!    provider and substitutes the empty [`crate::provider::PreparedQuery`]
//!    that `prepare` would have returned — the *same value*, so every
//!    downstream draw (DP summary, allocation, release) is bit-identical
//!    to the exhaustive path.
//! 2. **Sub-query dedup.** VAR/STD plans re-issue the cell's COUNT as a
//!    budget-carrying second moment whose released *value* is never read
//!    (see [`crate::derived`]). Re-reading the already-released COUNT is
//!    post-processing (Thm. 3.3): zero extra ξ, zero extra work. The plan
//!    still declares (and sessions still charge) the conservative
//!    [`fedaqp_model::QueryPlan::total_cost`].
//! 3. **Cost-ordered submission.** A GROUP-BY's cells are submitted
//!    costliest-first, by the metadata-estimated surviving cluster count,
//!    so the slowest cells start pipelining across the worker pool
//!    earliest. Distinct sub-queries draw content-derived noise, so
//!    submission order cannot change released bytes.
//!
//! **Why this is DP-safe.** Every decision above conditions only on the
//! query (the analyst's own input) and on Algorithm 1 metadata — which the
//! protocol already treats as public once released (Thm. 5.1's one-time
//! ΔR accounting). No pass looks at sampled data, at noisy summaries, or
//! at any released answer's *value*; the optimizer could be run by the
//! analyst themselves without interacting with the federation. See
//! `docs/privacy-model.md` for the full argument.
//!
//! The decisions are surfaced as a structured [`PlanExplanation`] —
//! `EXPLAIN` in SQL, `--explain` on the CLI, and an `Explain` frame pair
//! on wire protocol v3 — computed by [`crate::EngineHandle::explain_plan`]
//! without dispatching work or charging budget.

use fedaqp_model::{RangeQuery, Value};

use crate::config::OptimizerConfig;
use crate::provider::DataProvider;

/// One provider's public pruning bounds: per-dimension global
/// `[v_min, v_max]` (the elementwise min/max over its clusters' Algorithm 1
/// bands) plus its cluster count. Metadata coarsening keeps first/last
/// values exact, so these bounds are exact at any resolution.
#[derive(Debug, Clone)]
pub struct ProviderBounds {
    /// Per-dimension bounds; `None` when no cluster has values there.
    dims: Vec<Option<(Value, Value)>>,
    /// Number of clusters behind the bounds (the step-1 walk length, i.e.
    /// what pruning saves and what the cost estimate counts).
    n_clusters: usize,
}

impl ProviderBounds {
    /// Builds bounds from already-public per-dimension `[v_min, v_max]`
    /// pairs — the constructor a sharded coordinator uses to rebuild a
    /// remote shard's snapshot from its wire-served bounds.
    pub fn new(dims: Vec<Option<(Value, Value)>>, n_clusters: usize) -> Self {
        Self { dims, n_clusters }
    }

    /// Per-dimension bounds (`None` where no cluster has values).
    pub fn dims(&self) -> &[Option<(Value, Value)>] {
        &self.dims
    }

    fn of(provider: &DataProvider) -> Self {
        let meta = provider.meta();
        let n_dims = meta.clusters().first().map_or(0, |c| c.dims().len());
        let mut dims: Vec<Option<(Value, Value)>> = vec![None; n_dims];
        for cluster in meta.clusters() {
            for (d, dim) in cluster.dims().iter().enumerate() {
                if let (Some(lo), Some(hi)) = (dim.min(), dim.max()) {
                    let slot = &mut dims[d];
                    *slot = Some(match *slot {
                        Some((a, b)) => (a.min(lo), b.max(hi)),
                        None => (lo, hi),
                    });
                }
            }
        }
        Self {
            dims,
            n_clusters: meta.n_clusters(),
        }
    }

    /// Whether any cluster of this provider *could* cover `query`: every
    /// queried range must intersect the provider's bounds on that
    /// dimension. `false` proves `C^Q = ∅` (Eq. 2) — the sound direction;
    /// `true` is merely "cannot rule it out".
    pub fn may_cover(&self, query: &RangeQuery) -> bool {
        query.ranges().iter().all(|r| {
            matches!(self.dims.get(r.dim).copied().flatten(),
                     Some((lo, hi)) if r.intersects(lo, hi))
        })
    }

    /// Number of clusters behind these bounds.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }
}

/// The public, offline pruning metadata of a whole federation, captured
/// when an engine starts. One [`ProviderBounds`] per provider, in id
/// order.
#[derive(Debug, Clone, Default)]
pub struct MetaSnapshot {
    providers: Vec<ProviderBounds>,
}

impl MetaSnapshot {
    /// Captures the bounds of every provider (engine start-up).
    pub(crate) fn from_providers(providers: &[DataProvider]) -> Self {
        Self {
            providers: providers.iter().map(ProviderBounds::of).collect(),
        }
    }

    /// Assembles a snapshot from per-provider bounds in id order — how a
    /// sharded coordinator concatenates its shards' public bounds into
    /// the global federation snapshot.
    pub fn from_bounds(providers: Vec<ProviderBounds>) -> Self {
        Self { providers }
    }

    /// Per-provider bounds, in provider-id order.
    pub fn providers(&self) -> &[ProviderBounds] {
        &self.providers
    }

    /// `flags[i] == true` ⇔ provider `i` is *proven* to contribute nothing
    /// to `query`'s covering set.
    pub fn pruned_flags(&self, query: &RangeQuery) -> Vec<bool> {
        self.providers.iter().map(|p| !p.may_cover(query)).collect()
    }

    /// Metadata-derived cost estimate for `query`: the number of clusters
    /// the step-1 walk still has to visit after pruning (Σ `n_clusters`
    /// over surviving providers). An upper bound on `Σ N^Q_i`.
    pub fn estimated_cost(&self, query: &RangeQuery) -> u64 {
        self.providers
            .iter()
            .filter(|p| p.may_cover(query))
            .map(|p| p.n_clusters as u64)
            .sum()
    }
}

/// The submission order of a plan's cells: `costs[i]` is cell `i`'s
/// metadata cost estimate; the result is a permutation of `0..costs.len()`
/// — costliest first when `reorder`, identity otherwise. Ties keep key
/// order (stable), so the order is deterministic.
pub(crate) fn submission_order(costs: &[u64], reorder: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    if reorder {
        order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
    }
    order
}

/// What the optimizer decided about one sub-query of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct SubQueryExplanation {
    /// Human-readable role: `"query"`, `"count"`, `"sum"`,
    /// `"second-moment"`, `"group 3"`, `"group 3 count"`, `"extreme"`, …
    pub label: String,
    /// Provider ids proven (from public bounds alone) to have `C^Q = ∅`.
    pub pruned_providers: Vec<u64>,
    /// Metadata cost estimate: clusters the step-1 walk still visits
    /// across surviving providers.
    pub estimated_cost: u64,
    /// `Some(i)` when this sub-query is answered by re-reading sub-query
    /// `i`'s release instead of executing (the dedup pass).
    pub reuses: Option<u64>,
    /// Position in the submission order after reordering (0 = first).
    pub order: u64,
}

/// A structured, serializable account of every optimizer decision for one
/// plan — the payload of `EXPLAIN` locally, over SQL, and on the wire.
///
/// Computed from the plan and public metadata only: producing (or
/// transmitting) an explanation touches no data and costs no budget.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExplanation {
    /// Plan shape: `"scalar"`, `"derived"`, `"group-by"`, or `"extreme"`.
    pub plan_kind: String,
    /// Providers in the federation.
    pub n_providers: u64,
    /// Which optimizer passes were active when the plan would run.
    pub optimizer: OptimizerConfig,
    /// The plan's declared total ε (what a session charges — unchanged by
    /// any optimization).
    pub eps: f64,
    /// The plan's declared total δ.
    pub delta: f64,
    /// One entry per sub-query, in canonical (pre-reorder) plan order.
    pub sub_queries: Vec<SubQueryExplanation>,
}

impl PlanExplanation {
    /// Total pruned `(provider × sub-query)` slots.
    pub fn pruned_total(&self) -> u64 {
        self.sub_queries
            .iter()
            .map(|s| s.pruned_providers.len() as u64)
            .sum()
    }

    /// Sub-queries answered by release reuse instead of execution.
    pub fn reused_total(&self) -> u64 {
        self.sub_queries
            .iter()
            .filter(|s| s.reuses.is_some())
            .count() as u64
    }

    /// Multi-line human rendering (the CLI's `--explain` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let on = |b: bool| if b { "on" } else { "off" };
        out.push_str(&format!(
            "plan        : {} ({} sub-quer{}, {} providers)\n",
            self.plan_kind,
            self.sub_queries.len(),
            if self.sub_queries.len() == 1 {
                "y"
            } else {
                "ies"
            },
            self.n_providers,
        ));
        out.push_str(&format!(
            "cost        : epsilon {} delta {} (charged in full; optimization never changes cost)\n",
            self.eps, self.delta
        ));
        out.push_str(&format!(
            "optimizer   : prune {} | dedup {} | reorder {}\n",
            on(self.optimizer.prune_providers),
            on(self.optimizer.dedup_subqueries),
            on(self.optimizer.reorder_subqueries),
        ));
        out.push_str(&format!(
            "pruned      : {} provider slot(s) proven empty from public bounds; {} sub-query(ies) reuse a prior release\n",
            self.pruned_total(),
            self.reused_total(),
        ));
        for s in &self.sub_queries {
            let pruned = if s.pruned_providers.is_empty() {
                "-".to_string()
            } else {
                s.pruned_providers
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let mode = match s.reuses {
                Some(i) => format!("reuses #{i}"),
                None => format!("cost ~{} clusters", s.estimated_cost),
            };
            out.push_str(&format!(
                "  #{:<3} {:<18} order {:<3} pruned [{}]  {}\n",
                s.order, s.label, s.order, pruned, mode
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedaqp_model::{Aggregate, Range};

    fn bounds(dims: Vec<Option<(Value, Value)>>, n_clusters: usize) -> ProviderBounds {
        ProviderBounds { dims, n_clusters }
    }

    fn query(dim: usize, lo: Value, hi: Value) -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(dim, lo, hi).unwrap()]).unwrap()
    }

    #[test]
    fn bounds_miss_proves_empty_covering() {
        let p = bounds(vec![Some((10, 20))], 7);
        assert!(p.may_cover(&query(0, 15, 30)));
        assert!(p.may_cover(&query(0, 20, 25)));
        assert!(!p.may_cover(&query(0, 21, 30)));
        assert!(!p.may_cover(&query(0, 0, 9)));
        // A dimension with no values can cover nothing.
        let empty = bounds(vec![None], 3);
        assert!(!empty.may_cover(&query(0, 0, 100)));
        // A queried dimension outside the known dims can cover nothing.
        assert!(!p.may_cover(&query(3, 0, 100)));
    }

    #[test]
    fn snapshot_prunes_and_costs_per_provider() {
        let snap = MetaSnapshot {
            providers: vec![
                bounds(vec![Some((0, 9))], 4),
                bounds(vec![Some((10, 19))], 6),
                bounds(vec![Some((20, 29))], 8),
            ],
        };
        assert_eq!(
            snap.pruned_flags(&query(0, 12, 14)),
            vec![true, false, true]
        );
        assert_eq!(snap.estimated_cost(&query(0, 12, 14)), 6);
        assert_eq!(snap.estimated_cost(&query(0, 5, 25)), 18);
        assert_eq!(snap.estimated_cost(&query(0, 40, 50)), 0);
    }

    #[test]
    fn submission_order_is_stable_and_identity_when_off() {
        assert_eq!(submission_order(&[1, 5, 3], false), vec![0, 1, 2]);
        assert_eq!(submission_order(&[1, 5, 3], true), vec![1, 2, 0]);
        // Ties keep key order.
        assert_eq!(submission_order(&[2, 2, 9, 2], true), vec![2, 0, 1, 3]);
    }

    #[test]
    fn explanation_totals_and_rendering() {
        let expl = PlanExplanation {
            plan_kind: "group-by".into(),
            n_providers: 4,
            optimizer: OptimizerConfig::enabled(),
            eps: 2.0,
            delta: 1e-3,
            sub_queries: vec![
                SubQueryExplanation {
                    label: "group 0".into(),
                    pruned_providers: vec![1, 3],
                    estimated_cost: 12,
                    reuses: None,
                    order: 1,
                },
                SubQueryExplanation {
                    label: "group 1".into(),
                    pruned_providers: vec![],
                    estimated_cost: 40,
                    reuses: Some(0),
                    order: 0,
                },
            ],
        };
        assert_eq!(expl.pruned_total(), 2);
        assert_eq!(expl.reused_total(), 1);
        let text = expl.render();
        assert!(text.contains("group-by"));
        assert!(text.contains("pruned [1,3]"));
        assert!(text.contains("reuses #0"));
    }
}
