//! Private MIN/MAX queries (extension; §7: "to handle other aggregations
//! (such as Min, Max and Mode), different estimators are required").
//!
//! MIN/MAX have unbounded global sensitivity under Laplace, so the
//! standard private approach is an **Exponential-mechanism selection over
//! the domain**, scored by rank counts: for MAX, `score(v) = #rows ≥ v`
//! (monotone, sensitivity 1). The federation already stores exactly those
//! tail counts in its Algorithm 1 metadata, so each provider answers from
//! metadata alone — no data scan — and the aggregator combines the
//! per-provider selections by post-processing (max of DP outputs for MAX,
//! min for MIN).
//!
//! Execution is plan compilation onto the concurrent engine: an extreme
//! query is one [`crate::engine::EngineHandle::submit_extreme`] job, so
//! every provider's selection runs on its own worker thread under the
//! per-`(query, provider)` derived RNG — deterministic regardless of how
//! jobs interleave, and identical whether the plan arrives in-process or
//! over the wire.

use fedaqp_dp::ExponentialMechanism;
pub use fedaqp_model::Extreme;
use fedaqp_model::{QueryPlan, Value};
use rand::rngs::StdRng;

use crate::federation::Federation;
use crate::plan::PlanResult;
use crate::Result;

/// The result of a private extreme query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtremeAnswer {
    /// The selected (privately released) domain value.
    pub value: Value,
    /// The exact extreme (experiment oracle).
    pub exact: Option<Value>,
    /// ε charged (per provider; parallel composition across providers).
    pub epsilon: f64,
}

/// Scores every domain value for one provider from its metadata.
///
/// The rank-target utility: for MAX, `u(v) = −| (#rows ≥ v) − 1 |` — zero
/// exactly where the upper tail holds one row (the maximum when it is
/// unique), decaying linearly on both sides; symmetrically for MIN with
/// the lower tail. Tail counts move by at most 1 when one row is
/// added/removed, so `Δu = 1`. When the true extreme is heavily
/// duplicated, unoccupied values just beyond it (score −1) may outscore it
/// — a known, privacy-benign bias of rank-target selection (the release
/// drifts marginally outward, never inward into dense data).
fn provider_scores(
    provider: &crate::provider::DataProvider,
    dim: usize,
    extreme: Extreme,
) -> Vec<f64> {
    let domain = provider
        .store()
        .schema()
        .dimension(dim)
        .expect("validated dimension")
        .domain();
    let metas = provider.meta().clusters();
    let total: u64 = provider.store().total_rows() as u64;
    domain
        .iter()
        .map(|v| {
            let tail: u64 = match extreme {
                Extreme::Max => metas
                    .iter()
                    .map(|m| m.dims()[dim].tail_count(v) as u64)
                    .sum(),
                Extreme::Min => {
                    let geq_next: u64 = metas
                        .iter()
                        .map(|m| m.dims()[dim].tail_count(fedaqp_model::value::succ(v)) as u64)
                        .sum();
                    total - geq_next
                }
            };
            -((tail as f64) - 1.0).abs()
        })
        .collect()
}

/// One provider's DP extreme selection: scores from metadata, one
/// Exponential-mechanism draw from `rng` (the engine passes the job's
/// derived RNG). Runs on the provider's worker thread.
pub(crate) fn provider_select(
    provider: &crate::provider::DataProvider,
    dim: usize,
    extreme: Extreme,
    epsilon: f64,
    rng: &mut StdRng,
) -> Result<Value> {
    let scores = provider_scores(provider, dim, extreme);
    let mechanism = ExponentialMechanism::new(&scores, 1.0, epsilon)?;
    let idx = mechanism.select(rng);
    let domain = provider
        .store()
        .schema()
        .dimension(dim)
        .expect("validated dimension")
        .domain();
    Ok(domain.min() + idx as Value)
}

/// The exact extreme over every provider's metadata (experiment oracle;
/// never released).
pub(crate) fn exact_extreme(
    federation: &Federation,
    dim: usize,
    extreme: Extreme,
) -> Option<Value> {
    federation
        .providers()
        .iter()
        .flat_map(|p| {
            p.meta()
                .clusters()
                .iter()
                .filter_map(move |m| match extreme {
                    Extreme::Max => m.dims()[dim].max(),
                    Extreme::Min => m.dims()[dim].min(),
                })
        })
        .fold(None, |acc: Option<Value>, v| match (acc, extreme) {
            (None, _) => Some(v),
            (Some(a), Extreme::Max) => Some(a.max(v)),
            (Some(a), Extreme::Min) => Some(a.min(v)),
        })
}

/// Releases a private MIN or MAX of dimension `dim` with per-provider
/// budget `epsilon` (the federation-wide cost is `epsilon` by parallel
/// composition over disjoint providers).
///
/// Compiles to a [`QueryPlan::Extreme`] executed on a scoped engine, so
/// the serial convenience API and the concurrent/remote paths share one
/// implementation (and one noise derivation).
pub fn private_extreme(
    federation: &mut Federation,
    dim: usize,
    extreme: Extreme,
    epsilon: f64,
) -> Result<ExtremeAnswer> {
    let plan = QueryPlan::Extreme {
        dim,
        extreme,
        epsilon,
    };
    let answer = federation.with_engine(|engine| engine.run_plan(&plan))?;
    let PlanResult::Extreme { value } = answer.result else {
        unreachable!("extreme plans produce extreme results");
    };
    Ok(ExtremeAnswer {
        value,
        exact: exact_extreme(federation, dim, extreme),
        epsilon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use fedaqp_model::{Dimension, Domain, Row, Schema};

    fn federation() -> Federation {
        let schema = Schema::new(vec![
            Dimension::new("x", Domain::new(0, 99).unwrap()),
            Dimension::new("y", Domain::new(0, 49).unwrap()),
        ])
        .unwrap();
        // Values concentrated in [10, 60] on x with a single row at 85.
        let partitions: Vec<Vec<Row>> = (0..4)
            .map(|p| {
                let mut rows: Vec<Row> = (0..400)
                    .map(|i| Row::cell(vec![10 + ((i * 3 + p) % 51) as i64, (i % 50) as i64], 1))
                    .collect();
                if p == 2 {
                    rows.push(Row::cell(vec![85, 7], 1));
                }
                rows
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(64);
        cfg.cost_model = fedaqp_smc::CostModel::zero();
        Federation::build(cfg, schema, partitions).unwrap()
    }

    #[test]
    fn loose_budget_finds_true_extremes() {
        let mut fed = federation();
        let max = private_extreme(&mut fed, 0, Extreme::Max, 500.0).unwrap();
        assert_eq!(max.exact, Some(85));
        // With a huge ε the EM picks (near-)extreme values; the selection
        // is biased by the rank scores, so allow slack but require closeness.
        assert!(max.value >= 55, "max selection {} too low", max.value);

        let min = private_extreme(&mut fed, 0, Extreme::Min, 500.0).unwrap();
        assert_eq!(min.exact, Some(10));
        assert!(min.value <= 25, "min selection {} too high", min.value);
    }

    #[test]
    fn tight_budget_still_returns_domain_value() {
        let mut fed = federation();
        let ans = private_extreme(&mut fed, 0, Extreme::Max, 0.001).unwrap();
        assert!((0..=99).contains(&ans.value));
        assert_eq!(ans.epsilon, 0.001);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut fed = federation();
        assert!(private_extreme(&mut fed, 0, Extreme::Max, 0.0).is_err());
        assert!(private_extreme(&mut fed, 99, Extreme::Max, 1.0).is_err());
    }

    #[test]
    fn scores_peak_at_unique_extremes() {
        let fed = federation();
        // Provider 2 holds the unique global max 85 on dim 0: its score
        // there is exactly 0 (tail = 1), the global optimum of the utility.
        let scores = provider_scores(&fed.providers()[2], 0, Extreme::Max);
        let argmax = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i as i64)
            .expect("non-empty scores");
        assert_eq!(argmax, 85);
        assert_eq!(scores[85], 0.0);
        // All scores are ≤ 0 with sensitivity-1 structure.
        assert!(scores.iter().all(|&s| s <= 0.0));
    }

    #[test]
    fn second_dimension_works_too() {
        let mut fed = federation();
        let ans = private_extreme(&mut fed, 1, Extreme::Max, 200.0).unwrap();
        assert_eq!(ans.exact, Some(49));
        assert!((0..=49).contains(&ans.value));
    }

    #[test]
    fn serial_convenience_matches_engine_plan_byte_for_byte() {
        // One implementation, one noise derivation: the &mut Federation
        // API and a direct engine submission must agree exactly.
        let mut fed = federation();
        let serial = private_extreme(&mut fed, 0, Extreme::Max, 2.0).unwrap();
        let engine = fed
            .with_engine(|engine| engine.submit_extreme(0, Extreme::Max, 2.0).unwrap().wait())
            .unwrap();
        assert_eq!(serial.value, engine.value);
    }
}
