//! Private MIN/MAX queries (extension; §7: "to handle other aggregations
//! (such as Min, Max and Mode), different estimators are required").
//!
//! MIN/MAX have unbounded global sensitivity under Laplace, so the
//! standard private approach is an **Exponential-mechanism selection over
//! the domain**, scored by rank counts: for MAX, `score(v) = #rows ≥ v`
//! (monotone, sensitivity 1). The federation already stores exactly those
//! tail counts in its Algorithm 1 metadata, so each provider answers from
//! metadata alone — no data scan — and the aggregator combines the
//! per-provider selections by post-processing (max of DP outputs for MAX,
//! min for MIN).

use fedaqp_dp::ExponentialMechanism;
use fedaqp_model::Value;

use crate::federation::Federation;
use crate::{CoreError, Result};

/// Which extreme to release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extreme {
    /// Smallest stored value of the dimension.
    Min,
    /// Largest stored value of the dimension.
    Max,
}

/// The result of a private extreme query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtremeAnswer {
    /// The selected (privately released) domain value.
    pub value: Value,
    /// The exact extreme (experiment oracle).
    pub exact: Option<Value>,
    /// ε charged (per provider; parallel composition across providers).
    pub epsilon: f64,
}

/// Scores every domain value for one provider from its metadata.
///
/// The rank-target utility: for MAX, `u(v) = −| (#rows ≥ v) − 1 |` — zero
/// exactly where the upper tail holds one row (the maximum when it is
/// unique), decaying linearly on both sides; symmetrically for MIN with
/// the lower tail. Tail counts move by at most 1 when one row is
/// added/removed, so `Δu = 1`. When the true extreme is heavily
/// duplicated, unoccupied values just beyond it (score −1) may outscore it
/// — a known, privacy-benign bias of rank-target selection (the release
/// drifts marginally outward, never inward into dense data).
fn provider_scores(
    provider: &crate::provider::DataProvider,
    dim: usize,
    extreme: Extreme,
) -> Vec<f64> {
    let domain = provider
        .store()
        .schema()
        .dimension(dim)
        .expect("validated dimension")
        .domain();
    let metas = provider.meta().clusters();
    let total: u64 = provider.store().total_rows() as u64;
    domain
        .iter()
        .map(|v| {
            let tail: u64 = match extreme {
                Extreme::Max => metas
                    .iter()
                    .map(|m| m.dims()[dim].tail_count(v) as u64)
                    .sum(),
                Extreme::Min => {
                    let geq_next: u64 = metas
                        .iter()
                        .map(|m| m.dims()[dim].tail_count(fedaqp_model::value::succ(v)) as u64)
                        .sum();
                    total - geq_next
                }
            };
            -((tail as f64) - 1.0).abs()
        })
        .collect()
}

/// Releases a private MIN or MAX of dimension `dim` with per-provider
/// budget `epsilon` (the federation-wide cost is `epsilon` by parallel
/// composition over disjoint providers).
pub fn private_extreme(
    federation: &mut Federation,
    dim: usize,
    extreme: Extreme,
    epsilon: f64,
) -> Result<ExtremeAnswer> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(CoreError::BadConfig(
            "extreme-query epsilon must be positive",
        ));
    }
    let schema = federation.schema().clone();
    let domain = schema.dimension(dim)?.domain();
    let mut selections: Vec<Value> = Vec::with_capacity(federation.providers().len());
    // Split into an immutable pass (scores) and a RNG pass via the
    // aggregator's RNG — provider RNGs are reserved for the query protocol.
    let scores: Vec<Vec<f64>> = federation
        .providers()
        .iter()
        .map(|p| provider_scores(p, dim, extreme))
        .collect();
    let rng = federation.aggregator_rng();
    for s in &scores {
        let mechanism = ExponentialMechanism::new(s, 1.0, epsilon)?;
        let idx = mechanism.select(rng);
        selections.push(domain.min() + idx as Value);
    }
    let value = match extreme {
        Extreme::Max => *selections.iter().max().expect("non-empty providers"),
        Extreme::Min => *selections.iter().min().expect("non-empty providers"),
    };
    // Oracle: exact extreme over all providers' metadata.
    let exact = federation
        .providers()
        .iter()
        .flat_map(|p| {
            p.meta()
                .clusters()
                .iter()
                .filter_map(move |m| match extreme {
                    Extreme::Max => m.dims()[dim].max(),
                    Extreme::Min => m.dims()[dim].min(),
                })
        })
        .fold(None, |acc: Option<Value>, v| match (acc, extreme) {
            (None, _) => Some(v),
            (Some(a), Extreme::Max) => Some(a.max(v)),
            (Some(a), Extreme::Min) => Some(a.min(v)),
        });
    Ok(ExtremeAnswer {
        value,
        exact,
        epsilon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use fedaqp_model::{Dimension, Domain, Row, Schema};

    fn federation() -> Federation {
        let schema = Schema::new(vec![
            Dimension::new("x", Domain::new(0, 99).unwrap()),
            Dimension::new("y", Domain::new(0, 49).unwrap()),
        ])
        .unwrap();
        // Values concentrated in [10, 60] on x with a single row at 85.
        let partitions: Vec<Vec<Row>> = (0..4)
            .map(|p| {
                let mut rows: Vec<Row> = (0..400)
                    .map(|i| Row::cell(vec![10 + ((i * 3 + p) % 51) as i64, (i % 50) as i64], 1))
                    .collect();
                if p == 2 {
                    rows.push(Row::cell(vec![85, 7], 1));
                }
                rows
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(64);
        cfg.cost_model = fedaqp_smc::CostModel::zero();
        Federation::build(cfg, schema, partitions).unwrap()
    }

    #[test]
    fn loose_budget_finds_true_extremes() {
        let mut fed = federation();
        let max = private_extreme(&mut fed, 0, Extreme::Max, 500.0).unwrap();
        assert_eq!(max.exact, Some(85));
        // With a huge ε the EM picks (near-)extreme values; the selection
        // is biased by the rank scores, so allow slack but require closeness.
        assert!(max.value >= 55, "max selection {} too low", max.value);

        let min = private_extreme(&mut fed, 0, Extreme::Min, 500.0).unwrap();
        assert_eq!(min.exact, Some(10));
        assert!(min.value <= 25, "min selection {} too high", min.value);
    }

    #[test]
    fn tight_budget_still_returns_domain_value() {
        let mut fed = federation();
        let ans = private_extreme(&mut fed, 0, Extreme::Max, 0.001).unwrap();
        assert!((0..=99).contains(&ans.value));
        assert_eq!(ans.epsilon, 0.001);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut fed = federation();
        assert!(private_extreme(&mut fed, 0, Extreme::Max, 0.0).is_err());
        assert!(private_extreme(&mut fed, 99, Extreme::Max, 1.0).is_err());
    }

    #[test]
    fn scores_peak_at_unique_extremes() {
        let fed = federation();
        // Provider 2 holds the unique global max 85 on dim 0: its score
        // there is exactly 0 (tail = 1), the global optimum of the utility.
        let scores = provider_scores(&fed.providers()[2], 0, Extreme::Max);
        let argmax = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i as i64)
            .expect("non-empty scores");
        assert_eq!(argmax, 85);
        assert_eq!(scores[85], 0.0);
        // All scores are ≤ 0 with sensitivity-1 structure.
        assert!(scores.iter().all(|&s| s <= 0.0));
    }

    #[test]
    fn second_dimension_works_too() {
        let mut fed = federation();
        let ans = private_extreme(&mut fed, 1, Extreme::Max, 200.0).unwrap();
        assert_eq!(ans.exact, Some(49));
        assert!((0..=49).contains(&ans.value));
    }
}
