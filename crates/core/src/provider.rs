//! A data provider: local cluster store + metadata + the per-query local
//! protocol (steps 1–6 of Fig. 3).

use fedaqp_dp::{laplace_noise, QueryBudget, SmoothSensitivity};
use fedaqp_model::{Aggregate, RangeQuery, Row, Schema};
use fedaqp_sampling::em::{delta_p, em_sample};
use fedaqp_sampling::hansen_hurwitz::{hh_estimate, hh_variance, HansenHurwitz};
use fedaqp_storage::codec::meta_space_report;
use fedaqp_storage::{ClusterId, ClusterStore, MetaSpaceReport, ProviderMeta};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{
    EstimatorCalibration, FederationConfig, ProportionSource, SamplingPolicy, SensitivityRegime,
};
use crate::protocol::{LocalOutcome, ProviderSummary};
use crate::sensitivity::{
    delta_avg_r, delta_r_for, smooth_estimator_sensitivity, ClusterSensitivityInput,
    SensitivityContext,
};
use crate::{CoreError, Result};

/// The covering set and proportions a provider computes once per query
/// (protocol step 1) and reuses across phases.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// `C^Q` — ids of covering clusters (Eq. 2).
    pub covering: Vec<ClusterId>,
    /// `R̂` — approximated proportions, aligned with `covering`.
    pub proportions: Vec<f64>,
    /// `Σ R̂` (used by the summary and by Thm. 5.4).
    pub sum_r: f64,
}

impl PreparedQuery {
    /// `N^Q` — the covering-set size.
    #[inline]
    pub fn n_q(&self) -> usize {
        self.covering.len()
    }

    /// `Avg(R̂)` — the exact (pre-noise) summary average.
    pub fn avg_r(&self) -> f64 {
        if self.covering.is_empty() {
            0.0
        } else {
            self.sum_r / self.covering.len() as f64
        }
    }
}

/// The provider-independent scalars of protocol steps 2 and 4–6:
/// everything a provider's *noise-only* turn (a provably empty covering
/// set) reads. All of it is public — configuration plus the agreed
/// cluster size — never data.
///
/// [`crate::engine`] captures one shadow per provider at pool start so a
/// pruned provider's turn can be answered on the analyst thread without a
/// worker round trip; the provider's own summary and exact-release
/// methods route through the same shadow, so the inline and worker paths
/// share one implementation and cannot drift apart byte-wise.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProviderShadow {
    id: usize,
    n_min: usize,
    regime: SensitivityRegime,
    agreed_s: usize,
    arity: usize,
    sum_measure_cap: u64,
}

impl ProviderShadow {
    /// The provider id this shadow answers for.
    pub(crate) fn id(&self) -> usize {
        self.id
    }

    /// Protocol step 2: the DP summary `(Ñ^Q, Avg(R̂)~)` under `ε_O`
    /// (Eq. 5); each component gets `ε_O/2`.
    pub(crate) fn summary(
        &self,
        query: &RangeQuery,
        prep: &PreparedQuery,
        eps_o: f64,
        rng: &mut StdRng,
    ) -> Result<ProviderSummary> {
        if !(eps_o.is_finite() && eps_o > 0.0) {
            return Err(CoreError::BadConfig("summary budget must be positive"));
        }
        let dr = delta_r_for(
            self.regime,
            self.agreed_s,
            self.arity,
            query.dimensionality(),
        );
        let d_avg = delta_avg_r(dr, self.n_min);
        let half = eps_o / 2.0;
        let noisy_avg_r = prep.avg_r() + laplace_noise(rng, d_avg / half);
        let noisy_n_q = prep.n_q() as f64 + laplace_noise(rng, 1.0 / half);
        Ok(ProviderSummary {
            provider: self.id,
            noisy_n_q,
            noisy_avg_r,
        })
    }

    /// The exact-path release (the `N^Q < N_min` branch of steps 4–6)
    /// over an already-computed scan `value`.
    pub(crate) fn exact_outcome(
        &self,
        query: &RangeQuery,
        value: f64,
        covering: usize,
        budget: &QueryBudget,
        release_local: bool,
        rng: &mut StdRng,
    ) -> LocalOutcome {
        let sensitivity = match query.aggregate() {
            Aggregate::Count => 1.0,
            Aggregate::Sum => self.sum_measure_cap as f64,
        };
        // The EM budget is unspent on this path; fold it into the release
        // so the per-query total stays ε_O + ε_S + ε_E.
        let eps_release = budget.eps_s + budget.eps_e;
        let released = if release_local {
            Some(value + laplace_noise(rng, sensitivity / eps_release))
        } else {
            None
        };
        LocalOutcome {
            provider: self.id,
            released,
            estimate: value,
            smooth_ls: sensitivity,
            // A full covering-set scan has genuinely zero sampling variance.
            variance: Some(0.0),
            approximated: false,
            clusters_scanned: covering,
            n_covering: covering,
        }
    }

    /// A pruned provider's whole steps-4–6 turn: an empty covering set
    /// always takes the exact path (`N^Q = 0 < N_min`, since `N_min ≥ 1`)
    /// and scans zero clusters, so only the release noise remains.
    pub(crate) fn empty_outcome(
        &self,
        query: &RangeQuery,
        budget: &QueryBudget,
        release_local: bool,
        rng: &mut StdRng,
    ) -> LocalOutcome {
        self.exact_outcome(query, 0.0, 0, budget, release_local, rng)
    }
}

/// One data provider of the federation.
#[derive(Debug)]
pub struct DataProvider {
    id: usize,
    store: ClusterStore,
    meta: ProviderMeta,
    n_min: usize,
    regime: SensitivityRegime,
    sum_measure_cap: u64,
    sampling_policy: SamplingPolicy,
    proportion_source: ProportionSource,
    calibration: EstimatorCalibration,
    rng: StdRng,
}

impl DataProvider {
    /// Builds a provider: partitions `rows` into clusters (offline phase)
    /// and constructs the Algorithm 1 metadata.
    pub fn build(
        id: usize,
        schema: Schema,
        rows: Vec<Row>,
        config: &FederationConfig,
    ) -> Result<Self> {
        let store = ClusterStore::build(
            schema,
            rows,
            config.cluster_capacity,
            config.partition_strategy,
        )?;
        let meta = {
            let full = ProviderMeta::build(&store, config.agreed_s);
            match config.metadata_buckets {
                Some(buckets) => full.coarsened(buckets),
                None => full,
            }
        };
        Ok(Self {
            id,
            store,
            meta,
            n_min: config.n_min.max(1),
            regime: config.sensitivity_regime,
            sum_measure_cap: config.sum_measure_cap.max(1),
            sampling_policy: config.sampling_policy,
            proportion_source: config.proportion_source,
            calibration: config.estimator_calibration,
            rng: StdRng::seed_from_u64(
                config.seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        })
    }

    /// Provider id.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The local cluster store.
    #[inline]
    pub fn store(&self) -> &ClusterStore {
        &self.store
    }

    /// The local metadata.
    #[inline]
    pub fn meta(&self) -> &ProviderMeta {
        &self.meta
    }

    /// The provider's approximation threshold `N_min`.
    #[inline]
    pub fn n_min(&self) -> usize {
        self.n_min
    }

    /// Encoded metadata footprint (for the §6.1 space report).
    pub fn meta_space(&self) -> MetaSpaceReport {
        meta_space_report(&self.meta)
    }

    /// Streaming ingest: appends `row` to the live store and maintains the
    /// Algorithm 1 metadata incrementally (tail counters bumped in place; a
    /// freshly opened cluster gets empty per-dimension metadata first). On
    /// uncoarsened metadata this is exactly equivalent to a from-scratch
    /// rebuild; on bucketed metadata the min/max stay exact while interior
    /// tails drift, which is why [`crate::stream::LiveFederation`] bounds
    /// staleness with a full-recompute policy.
    pub(crate) fn append_row(&mut self, row: Row) -> Result<()> {
        let arity = self.store.schema().arity();
        let outcome = self.store.append_row(row.clone())?;
        self.meta
            .append_row(outcome.cluster, outcome.new_cluster, &row, arity);
        Ok(())
    }

    /// Full Algorithm 1 metadata recompute (plus the configured coarsening),
    /// exactly as [`DataProvider::build`] does — the staleness-triggered
    /// refresh path of [`crate::stream::LiveFederation`].
    pub(crate) fn rebuild_meta(&mut self, config: &FederationConfig) {
        let full = ProviderMeta::build(&self.store, config.agreed_s);
        self.meta = match config.metadata_buckets {
            Some(buckets) => full.coarsened(buckets),
            None => full,
        };
    }

    /// Temporarily moves the provider's own RNG out so `&self` methods can
    /// draw from it (the `_with_rng` variants take the RNG by parameter).
    fn take_rng(&mut self) -> StdRng {
        std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0))
    }

    /// Protocol step 1: identify `C^Q` and compute `R̂`.
    ///
    /// With [`ProportionSource::Metadata`] (the paper) proportions come from
    /// the Algorithm 1 tail structures without touching data; the
    /// [`ProportionSource::ExactScan`] ablation instead scans every covering
    /// cluster — as expensive as answering the query, which is exactly the
    /// overhead §5.2 argues the metadata avoids.
    pub fn prepare(&self, query: &RangeQuery) -> PreparedQuery {
        let covering = self.meta.covering(query);
        let proportions = match self.proportion_source {
            ProportionSource::Metadata => self.meta.proportions(query, &covering),
            ProportionSource::ExactScan => covering
                .iter()
                .map(|&id| {
                    let cluster = self.store.cluster(id).expect("covering id valid");
                    cluster.matching_rows(query.ranges()) as f64 / self.meta.agreed_s() as f64
                })
                .collect(),
        };
        let sum_r = proportions.iter().sum();
        PreparedQuery {
            covering,
            proportions,
            sum_r,
        }
    }

    /// Protocol step 2: release the DP summary `(Ñ^Q, Avg(R̂)~)` under
    /// `ε_O` (Eq. 5); each component gets `ε_O/2`.
    pub fn summary(
        &mut self,
        query: &RangeQuery,
        prep: &PreparedQuery,
        eps_o: f64,
    ) -> Result<ProviderSummary> {
        let mut rng = self.take_rng();
        let out = self.summary_with_rng(query, prep, eps_o, &mut rng);
        self.rng = rng;
        out
    }

    /// [`Self::summary`] with the noise drawn from an explicit RNG.
    ///
    /// The engine derives one RNG per `(query, provider)` pair so that
    /// concurrent query execution stays deterministic under a seed; the
    /// provider's own RNG (used by [`Self::summary`]) would make results
    /// depend on the interleaving of queries.
    pub fn summary_with_rng(
        &self,
        query: &RangeQuery,
        prep: &PreparedQuery,
        eps_o: f64,
        rng: &mut StdRng,
    ) -> Result<ProviderSummary> {
        self.shadow().summary(query, prep, eps_o, rng)
    }

    /// This provider's [`ProviderShadow`] — the public protocol scalars
    /// the engine needs to answer a pruned turn without the provider.
    pub(crate) fn shadow(&self) -> ProviderShadow {
        ProviderShadow {
            id: self.id,
            n_min: self.n_min,
            regime: self.regime,
            agreed_s: self.meta.agreed_s(),
            arity: self.store.schema().arity(),
            sum_measure_cap: self.sum_measure_cap,
        }
    }

    /// Protocol steps 4–6: answer the query locally.
    ///
    /// * `N^Q < N_min` → exact path: scan the covering clusters and release
    ///   with plain Laplace noise (sensitivity 1 for COUNT, the configured
    ///   measure cap for SUM) under the unspent `ε_S + ε_E`.
    /// * Otherwise → approximate path: EM-sample `allocation` clusters
    ///   (Alg. 2, `ε_S`), Hansen–Hurwitz estimate (Eq. 3), smooth
    ///   sensitivity (Alg. 3), and—in local-DP mode—release with
    ///   `Lap(2·S_LS/ε_E)`.
    ///
    /// `release_local` selects whether the provider perturbs its own value
    /// (local-DP mode) or leaves `released = None` for the SMC path.
    pub fn execute(
        &mut self,
        query: &RangeQuery,
        prep: &PreparedQuery,
        allocation: u64,
        budget: &QueryBudget,
        release_local: bool,
    ) -> Result<LocalOutcome> {
        let mut rng = self.take_rng();
        let out = self.execute_with_rng(query, prep, allocation, budget, release_local, &mut rng);
        self.rng = rng;
        out
    }

    /// [`Self::execute`] with all randomness (EM sampling, release noise)
    /// drawn from an explicit RNG — see [`Self::summary_with_rng`].
    pub fn execute_with_rng(
        &self,
        query: &RangeQuery,
        prep: &PreparedQuery,
        allocation: u64,
        budget: &QueryBudget,
        release_local: bool,
        rng: &mut StdRng,
    ) -> Result<LocalOutcome> {
        let n_q = prep.n_q();
        if n_q < self.n_min {
            return self.execute_exact(query, prep, budget, release_local, rng);
        }
        let s = (allocation.max(1) as usize).min(n_q);
        // Uniform ablation: every covering cluster scores equally, turning
        // the EM draw into DP-uniform cluster sampling.
        let uniform_weights;
        let weights: &[f64] = match self.sampling_policy {
            SamplingPolicy::Pps => &prep.proportions,
            SamplingPolicy::Uniform => {
                uniform_weights = vec![1.0; n_q];
                &uniform_weights
            }
        };
        let dp_score = delta_p(self.n_min);
        let sample = em_sample(rng, weights, s, budget.eps_s, dp_score)?;
        // Scan each *distinct* drawn cluster once; repeats reuse the value.
        let mut value_cache: Vec<Option<u64>> = vec![None; n_q];
        let mut scanned = 0usize;
        let dr = delta_r_for(
            self.regime,
            self.meta.agreed_s(),
            self.store.schema().arity(),
            query.dimensionality(),
        );
        // The sampler's *actual* minimum draw probability. Under
        // `EmCalibrated` (the default) every Hansen–Hurwitz draw is divided
        // by its own exact EM probability — the distribution the sampler
        // actually used — which makes the estimator unbiased by
        // construction and keeps the scenario-4 slope at `1/q_i ≤
        // 1/p_floor`. Under `PpsEq3` (the paper's Eq. 3) the divisor is
        // the raw PPS probability floored at `p_floor`: dividing by less
        // would inflate both the estimate and the sensitivity without
        // statistical meaning (metadata can assign `R̂ ≈ 0` to a cluster
        // the privacy-noised sampler nevertheless selected).
        let p_floor = sample.min_draw_probability()?;
        let ctx = SensitivityContext::new(
            prep.sum_r,
            dr,
            self.meta.agreed_s(),
            p_floor,
            self.calibration,
        );
        let mut draws = Vec::with_capacity(s);
        let mut sens_inputs = Vec::with_capacity(s);
        for &pos in &sample.chosen {
            let q_c = match value_cache[pos] {
                Some(v) => v,
                None => {
                    let v = self.store.cluster(prep.covering[pos])?.evaluate(query);
                    value_cache[pos] = Some(v);
                    scanned += 1;
                    v
                }
            };
            let p = ctx.divisor(sample.pps[pos], sample.em_probabilities[pos]);
            draws.push(HansenHurwitz {
                value: q_c as f64,
                probability: p,
            });
            sens_inputs.push(ClusterSensitivityInput {
                q_c: q_c as f64,
                r: prep.proportions[pos],
                p,
            });
        }
        let estimate = hh_estimate(&draws)?;
        let variance = hh_variance(&draws, estimate);
        let smooth = SmoothSensitivity::new(budget.eps_e, budget.delta)?;
        let smooth_ls = smooth_estimator_sensitivity(&smooth, &sens_inputs, &ctx);
        let released = if release_local {
            Some(smooth.release(rng, estimate, smooth_ls))
        } else {
            None
        };
        Ok(LocalOutcome {
            provider: self.id,
            released,
            estimate,
            smooth_ls,
            variance,
            approximated: true,
            clusters_scanned: scanned,
            n_covering: n_q,
        })
    }

    /// The exact ("regular") path of protocol step 4.
    fn execute_exact(
        &self,
        query: &RangeQuery,
        prep: &PreparedQuery,
        budget: &QueryBudget,
        release_local: bool,
        rng: &mut StdRng,
    ) -> Result<LocalOutcome> {
        let value = self.store.evaluate_clusters(query, &prep.covering)? as f64;
        Ok(self.shadow().exact_outcome(
            query,
            value,
            prep.covering.len(),
            budget,
            release_local,
            rng,
        ))
    }

    /// Exact full-partition answer (test oracle / plain baseline).
    pub fn exact_answer(&self, query: &RangeQuery) -> u64 {
        self.store.evaluate_full(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedaqp_dp::HyperParams;
    use fedaqp_model::{Dimension, Domain, Range};

    fn schema() -> Schema {
        Schema::new(vec![
            Dimension::new("x", Domain::new(0, 999).unwrap()),
            Dimension::new("y", Domain::new(0, 99).unwrap()),
        ])
        .unwrap()
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::cell(
                    vec![(i % 1000) as i64, ((i * 13) % 100) as i64],
                    1 + (i % 4) as u64,
                )
            })
            .collect()
    }

    fn provider(n_rows: usize, capacity: usize, n_min: usize, seed: u64) -> DataProvider {
        let mut cfg = FederationConfig::paper_default(capacity);
        cfg.n_min = n_min;
        cfg.seed = seed;
        cfg.sum_measure_cap = 4;
        cfg.partition_strategy = fedaqp_storage::PartitionStrategy::SortedBy(0);
        cfg.sensitivity_regime = SensitivityRegime::QueryDims;
        DataProvider::build(0, schema(), rows(n_rows), &cfg).unwrap()
    }

    fn query(lo: i64, hi: i64, agg: Aggregate) -> RangeQuery {
        RangeQuery::new(agg, vec![Range::new(0, lo, hi).unwrap()]).unwrap()
    }

    fn budget() -> QueryBudget {
        QueryBudget::split(1.0, 1e-3, HyperParams::paper_default()).unwrap()
    }

    #[test]
    fn prepare_matches_metadata() {
        let p = provider(2000, 100, 5, 1);
        let q = query(100, 400, Aggregate::Count);
        let prep = p.prepare(&q);
        assert_eq!(prep.covering, p.meta().covering(&q));
        assert_eq!(prep.n_q(), prep.covering.len());
        assert!((prep.sum_r - prep.proportions.iter().sum::<f64>()).abs() < 1e-12);
        assert!(prep.avg_r() >= 0.0);
    }

    #[test]
    fn summary_concentrates_with_big_budget() {
        let mut p = provider(2000, 100, 5, 2);
        let q = query(100, 400, Aggregate::Count);
        let prep = p.prepare(&q);
        let mut n_sum = 0.0;
        let mut a_sum = 0.0;
        let trials = 400;
        for _ in 0..trials {
            let s = p.summary(&q, &prep, 50.0).unwrap();
            n_sum += s.noisy_n_q;
            a_sum += s.noisy_avg_r;
        }
        assert!((n_sum / trials as f64 - prep.n_q() as f64).abs() < 0.5);
        assert!((a_sum / trials as f64 - prep.avg_r()).abs() < 0.05);
    }

    #[test]
    fn summary_rejects_zero_budget() {
        let mut p = provider(100, 50, 5, 3);
        let q = query(0, 999, Aggregate::Count);
        let prep = p.prepare(&q);
        assert!(p.summary(&q, &prep, 0.0).is_err());
    }

    #[test]
    fn small_queries_take_exact_path() {
        // N_min larger than any covering set ⇒ exact path always.
        let mut p = provider(500, 100, 100, 4);
        let q = query(0, 999, Aggregate::Sum);
        let prep = p.prepare(&q);
        let exact = p.exact_answer(&q) as f64;
        let out = p.execute(&q, &prep, 3, &budget(), true).unwrap();
        assert!(!out.approximated);
        assert_eq!(out.estimate, exact);
        assert_eq!(out.clusters_scanned, prep.n_q());
        // Released value carries Laplace noise but centres on the truth.
        let mut acc = 0.0;
        let trials = 200;
        for _ in 0..trials {
            acc += p
                .execute(&q, &prep, 3, &budget(), true)
                .unwrap()
                .released
                .unwrap();
        }
        assert!((acc / trials as f64 - exact).abs() < 0.15 * exact.max(10.0));
    }

    #[test]
    fn approximate_path_samples_and_estimates() {
        let mut p = provider(5000, 100, 5, 5);
        let q = query(100, 800, Aggregate::Sum);
        let prep = p.prepare(&q);
        assert!(prep.n_q() >= 5, "test needs a large covering set");
        let out = p.execute(&q, &prep, 10, &budget(), true).unwrap();
        assert!(out.approximated);
        assert!(out.clusters_scanned <= 10);
        assert!(out.clusters_scanned >= 1);
        assert!(out.smooth_ls > 0.0);
        assert!(out.released.is_some());
        assert!(out.estimate.is_finite());
        assert_eq!(out.n_covering, prep.n_q());
    }

    #[test]
    fn estimator_is_unbiased_over_seeds() {
        // Average the raw estimate over many runs: it should approach the
        // exact covering-set answer (HH unbiasedness through the whole
        // provider pipeline, EM bias notwithstanding at loose ε).
        let q = query(100, 800, Aggregate::Sum);
        let mut acc = 0.0;
        let trials = 300;
        let exact = {
            let p = provider(5000, 100, 5, 0);
            let prep = p.prepare(&q);
            prep.covering
                .iter()
                .map(|&id| p.store().cluster(id).unwrap().evaluate(&q))
                .sum::<u64>() as f64
        };
        for seed in 0..trials {
            let mut p = provider(5000, 100, 5, seed);
            let prep = p.prepare(&q);
            // Large allocation + loose sampling budget: EM ≈ PPS.
            let loose = QueryBudget::split(50.0, 1e-3, HyperParams::paper_default()).unwrap();
            let out = p.execute(&q, &prep, 20, &loose, false).unwrap();
            acc += out.estimate;
        }
        let mean = acc / trials as f64;
        assert!(
            (mean - exact).abs() < 0.25 * exact,
            "mean estimate {mean} too far from exact {exact}"
        );
    }

    #[test]
    fn smc_mode_returns_no_released_value() {
        let mut p = provider(3000, 100, 5, 6);
        let q = query(0, 999, Aggregate::Count);
        let prep = p.prepare(&q);
        let out = p.execute(&q, &prep, 5, &budget(), false).unwrap();
        assert!(out.released.is_none());
        assert!(out.estimate.is_finite());
    }

    #[test]
    fn empty_covering_set_is_handled() {
        let mut p = provider(500, 100, 5, 7);
        // Query outside any stored value range on dim 1.
        let q = RangeQuery::new(
            Aggregate::Count,
            vec![
                Range::new(0, 0, 999).unwrap(),
                Range::new(1, 10_000, 20_000).unwrap(),
            ],
        )
        .unwrap();
        let prep = p.prepare(&q);
        // Pruning may or may not drop everything depending on layout; if it
        // did, the execute path must still answer.
        let out = p.execute(&q, &prep, 2, &budget(), true).unwrap();
        assert!(out.estimate.is_finite());
    }

    #[test]
    fn meta_space_reports_bytes() {
        let p = provider(1000, 100, 5, 8);
        let r = p.meta_space();
        assert!(r.total_bytes > 0);
        assert_eq!(r.n_clusters, p.store().n_clusters());
    }
}
