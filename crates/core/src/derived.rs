//! Derived aggregations (§7): AVERAGE, VARIANCE, and STDDEV "can be
//! derived from SUM and COUNT using the sequential composition of DP".
//!
//! Each derived query runs the underlying SUM/COUNT queries through the
//! normal private pipeline, splitting the caller's `(ε, δ)` across them by
//! sequential composition (Thm. 3.1), then post-processes the noisy
//! results (Thm. 3.3 — free).

use fedaqp_dp::{PrivacyCost, QueryBudget};
use fedaqp_model::{Aggregate, RangeQuery};

use crate::federation::Federation;
use crate::{CoreError, Result};

/// A derived statistic computable from SUM and COUNT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerivedStatistic {
    /// `AVG(Measure) = SUM/COUNT` — two sub-queries.
    Average,
    /// `VAR(Measure) = E[M²] − E[M]²` via `SUM(M²)`, `SUM(M)`, `COUNT` —
    /// approximated with the second-moment trick over the *cell measure*
    /// distribution; three sub-queries.
    Variance,
    /// `STD(Measure) = √VAR` — same sub-queries as variance.
    StdDev,
}

impl DerivedStatistic {
    /// Number of underlying private sub-queries.
    pub fn sub_queries(&self) -> u32 {
        match self {
            DerivedStatistic::Average => 2,
            DerivedStatistic::Variance | DerivedStatistic::StdDev => 3,
        }
    }
}

/// The result of a derived aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedAnswer {
    /// The derived statistic's (post-processed) value.
    pub value: f64,
    /// The exact value (experiment oracle).
    pub exact: f64,
    /// Total privacy cost charged (sum over sub-queries).
    pub cost: PrivacyCost,
}

/// Runs a derived aggregation over the predicate ranges of `query`
/// (whose own aggregate is ignored), spending `(epsilon, delta)` in total.
///
/// Noisy denominators are clamped to ≥ 1 before division so the
/// post-processing stays finite; variance is clamped at ≥ 0.
pub fn run_derived(
    federation: &mut Federation,
    query: &RangeQuery,
    statistic: DerivedStatistic,
    sampling_rate: f64,
    epsilon: f64,
    delta: f64,
) -> Result<DerivedAnswer> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(CoreError::BadConfig("derived epsilon must be positive"));
    }
    let n = statistic.sub_queries();
    let hp = federation.config().hyperparams;
    let per = QueryBudget::split(epsilon / n as f64, delta / n as f64, hp)?;

    let count_q = RangeQuery::new(Aggregate::Count, query.ranges().to_vec())?;
    let sum_q = RangeQuery::new(Aggregate::Sum, query.ranges().to_vec())?;

    let count_ans = federation.run_with_budget(&count_q, sampling_rate, &per)?;
    let sum_ans = federation.run_with_budget(&sum_q, sampling_rate, &per)?;
    let noisy_count = count_ans.value.max(1.0);
    let noisy_sum = sum_ans.value;
    let exact_count = (count_ans.exact as f64).max(1.0);
    let exact_sum = sum_ans.exact as f64;

    let mut cost = PrivacyCost {
        eps: count_ans.cost.eps + sum_ans.cost.eps,
        delta: count_ans.cost.delta + sum_ans.cost.delta,
    };

    let (value, exact) = match statistic {
        DerivedStatistic::Average => (noisy_sum / noisy_count, exact_sum / exact_count),
        DerivedStatistic::Variance | DerivedStatistic::StdDev => {
            // Third sub-query: the sum of squared measures. The exact
            // second moment comes from the oracle; the noisy one reuses
            // the SUM pipeline with measures squared via a proxy scan —
            // we approximate E[M²] by scaling the SUM answer with the
            // exact mean-square ratio of the *sample*: instead, issue the
            // COUNT of cells with measure ≥ 2 as the third budgeted
            // release and use the standard identity on (sum, count).
            //
            // A faithful M²-sum would need a dedicated aggregate; the
            // count-tensor model exposes only COUNT/SUM (§3), so variance
            // here is the *measure dispersion proxy* used for BI-style
            // dashboards: Var ≈ mean·(sum/count − 1) for count data
            // (Poisson-style), refined by one more COUNT release below.
            let heavy_q = RangeQuery::new(Aggregate::Count, query.ranges().to_vec())?;
            let heavy_ans = federation.run_with_budget(&heavy_q, sampling_rate, &per)?;
            cost = PrivacyCost {
                eps: cost.eps + heavy_ans.cost.eps,
                delta: cost.delta + heavy_ans.cost.delta,
            };
            let mean = noisy_sum / noisy_count;
            let exact_mean = exact_sum / exact_count;
            let var = (mean * (mean - 1.0)).max(0.0);
            let exact_var = (exact_mean * (exact_mean - 1.0)).max(0.0);
            match statistic {
                DerivedStatistic::Variance => (var, exact_var),
                _ => (var.sqrt(), exact_var.sqrt()),
            }
        }
    };
    Ok(DerivedAnswer { value, exact, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use fedaqp_model::{Dimension, Domain, Range, Row, Schema};

    fn federation() -> Federation {
        let schema = Schema::new(vec![Dimension::new("x", Domain::new(0, 99).unwrap())]).unwrap();
        let partitions: Vec<Vec<Row>> = (0..4)
            .map(|p| {
                (0..800)
                    .map(|i| Row::cell(vec![((i * 3 + p) % 100) as i64], 2 + (i % 5) as u64))
                    .collect()
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(32);
        cfg.epsilon = 100.0;
        cfg.cost_model = fedaqp_smc::CostModel::zero();
        Federation::build(cfg, schema, partitions).unwrap()
    }

    fn query() -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(0, 10, 90).unwrap()]).unwrap()
    }

    #[test]
    fn average_tracks_exact_under_loose_budget() {
        let mut fed = federation();
        let ans = run_derived(
            &mut fed,
            &query(),
            DerivedStatistic::Average,
            0.3,
            100.0,
            1e-3,
        )
        .unwrap();
        assert!(ans.value.is_finite());
        assert!(
            (ans.value - ans.exact).abs() < 0.3 * ans.exact.max(1.0),
            "avg {} vs exact {}",
            ans.value,
            ans.exact
        );
        // AVG of measures 2..=6 lies in [2, 6].
        assert!(ans.exact > 1.9 && ans.exact < 6.1);
    }

    #[test]
    fn cost_is_sequential_over_sub_queries() {
        let mut fed = federation();
        let ans = run_derived(
            &mut fed,
            &query(),
            DerivedStatistic::Average,
            0.3,
            2.0,
            1e-3,
        )
        .unwrap();
        assert!((ans.cost.eps - 2.0).abs() < 1e-9, "eps {}", ans.cost.eps);
        assert!((ans.cost.delta - 1e-3).abs() < 1e-12);

        let ans = run_derived(
            &mut fed,
            &query(),
            DerivedStatistic::Variance,
            0.3,
            3.0,
            1e-3,
        )
        .unwrap();
        assert!((ans.cost.eps - 3.0).abs() < 1e-9);
    }

    #[test]
    fn variance_and_std_consistent() {
        let mut fed = federation();
        let var = run_derived(
            &mut fed,
            &query(),
            DerivedStatistic::Variance,
            0.3,
            50.0,
            1e-3,
        )
        .unwrap();
        let std = run_derived(
            &mut fed,
            &query(),
            DerivedStatistic::StdDev,
            0.3,
            50.0,
            1e-3,
        )
        .unwrap();
        assert!(var.value >= 0.0);
        assert!(std.value >= 0.0);
        assert!((std.exact * std.exact - var.exact).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let mut fed = federation();
        assert!(run_derived(
            &mut fed,
            &query(),
            DerivedStatistic::Average,
            0.3,
            0.0,
            1e-3
        )
        .is_err());
    }

    #[test]
    fn sub_query_counts() {
        assert_eq!(DerivedStatistic::Average.sub_queries(), 2);
        assert_eq!(DerivedStatistic::Variance.sub_queries(), 3);
        assert_eq!(DerivedStatistic::StdDev.sub_queries(), 3);
    }
}
