//! Derived aggregations (§7): AVERAGE, VARIANCE, and STDDEV "can be
//! derived from SUM and COUNT using the sequential composition of DP".
//!
//! Each derived query runs the underlying SUM/COUNT queries through the
//! normal private pipeline, splitting the caller's `(ε, δ)` across them by
//! sequential composition (Thm. 3.1), then post-processes the noisy
//! results (Thm. 3.3 — free).
//!
//! Execution is plan compilation: [`run_derived`] builds a
//! [`fedaqp_model::QueryPlan::Derived`] and runs it on a scoped concurrent
//! engine (see [`crate::plan`]), so the sub-queries fan out across the
//! provider worker pool and the noise derivation is identical to the
//! concurrent and remote paths. The VAR/STD post-processing is the
//! *measure dispersion proxy* documented in [`crate::plan`]: the
//! count-tensor model exposes only COUNT/SUM (§3), so a faithful M²-sum
//! would need a dedicated aggregate; the third sub-query exists to charge
//! the budget the proxy's refinement release costs.

use fedaqp_dp::PrivacyCost;
pub use fedaqp_model::DerivedStatistic;
use fedaqp_model::{Aggregate, QueryPlan, RangeQuery};

use crate::federation::Federation;
use crate::Result;

/// The result of a derived aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedAnswer {
    /// The derived statistic's (post-processed) value.
    pub value: f64,
    /// The exact value (experiment oracle).
    pub exact: f64,
    /// Total privacy cost charged (sum over sub-queries).
    pub cost: PrivacyCost,
}

/// The exact (oracle) value of `statistic` over the predicate ranges —
/// experiment instrumentation, never released.
pub(crate) fn exact_derived(
    federation: &Federation,
    query: &RangeQuery,
    statistic: DerivedStatistic,
) -> Result<f64> {
    let count_q = RangeQuery::new(Aggregate::Count, query.ranges().to_vec())?;
    let sum_q = RangeQuery::new(Aggregate::Sum, query.ranges().to_vec())?;
    let exact_count = (federation.exact(&count_q) as f64).max(1.0);
    let exact_sum = federation.exact(&sum_q) as f64;
    let mean = exact_sum / exact_count;
    Ok(match statistic {
        DerivedStatistic::Average => mean,
        DerivedStatistic::Variance => (mean * (mean - 1.0)).max(0.0),
        DerivedStatistic::StdDev => (mean * (mean - 1.0)).max(0.0).sqrt(),
    })
}

/// Runs a derived aggregation over the predicate ranges of `query`
/// (whose own aggregate is ignored), spending `(epsilon, delta)` in total.
///
/// Noisy denominators are clamped to ≥ 1 before division so the
/// post-processing stays finite; variance is clamped at ≥ 0.
pub fn run_derived(
    federation: &mut Federation,
    query: &RangeQuery,
    statistic: DerivedStatistic,
    sampling_rate: f64,
    epsilon: f64,
    delta: f64,
) -> Result<DerivedAnswer> {
    let plan = QueryPlan::Derived {
        query: query.clone(),
        statistic,
        sampling_rate,
        epsilon,
        delta,
    };
    let answer = federation.with_engine(|engine| engine.run_plan(&plan))?;
    let value = answer.value().expect("derived plans release a value");
    Ok(DerivedAnswer {
        value,
        exact: exact_derived(federation, query, statistic)?,
        cost: answer.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use crate::CoreError;
    use fedaqp_model::{Dimension, Domain, Range, Row, Schema};

    fn federation() -> Federation {
        let schema = Schema::new(vec![Dimension::new("x", Domain::new(0, 99).unwrap())]).unwrap();
        let partitions: Vec<Vec<Row>> = (0..4)
            .map(|p| {
                (0..800)
                    .map(|i| Row::cell(vec![((i * 3 + p) % 100) as i64], 2 + (i % 5) as u64))
                    .collect()
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(32);
        cfg.epsilon = 100.0;
        cfg.cost_model = fedaqp_smc::CostModel::zero();
        Federation::build(cfg, schema, partitions).unwrap()
    }

    fn query() -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(0, 10, 90).unwrap()]).unwrap()
    }

    #[test]
    fn average_tracks_exact_under_loose_budget() {
        let mut fed = federation();
        let ans = run_derived(
            &mut fed,
            &query(),
            DerivedStatistic::Average,
            0.3,
            100.0,
            1e-3,
        )
        .unwrap();
        assert!(ans.value.is_finite());
        assert!(
            (ans.value - ans.exact).abs() < 0.3 * ans.exact.max(1.0),
            "avg {} vs exact {}",
            ans.value,
            ans.exact
        );
        // AVG of measures 2..=6 lies in [2, 6].
        assert!(ans.exact > 1.9 && ans.exact < 6.1);
    }

    #[test]
    fn cost_is_sequential_over_sub_queries() {
        let mut fed = federation();
        let ans = run_derived(
            &mut fed,
            &query(),
            DerivedStatistic::Average,
            0.3,
            2.0,
            1e-3,
        )
        .unwrap();
        assert!((ans.cost.eps - 2.0).abs() < 1e-9, "eps {}", ans.cost.eps);
        assert!((ans.cost.delta - 1e-3).abs() < 1e-12);

        let ans = run_derived(
            &mut fed,
            &query(),
            DerivedStatistic::Variance,
            0.3,
            3.0,
            1e-3,
        )
        .unwrap();
        assert!((ans.cost.eps - 3.0).abs() < 1e-9);
    }

    #[test]
    fn variance_and_std_consistent() {
        let mut fed = federation();
        let var = run_derived(
            &mut fed,
            &query(),
            DerivedStatistic::Variance,
            0.3,
            50.0,
            1e-3,
        )
        .unwrap();
        let std = run_derived(
            &mut fed,
            &query(),
            DerivedStatistic::StdDev,
            0.3,
            50.0,
            1e-3,
        )
        .unwrap();
        assert!(var.value >= 0.0);
        assert!(std.value >= 0.0);
        assert!((std.exact * std.exact - var.exact).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let mut fed = federation();
        assert!(matches!(
            run_derived(
                &mut fed,
                &query(),
                DerivedStatistic::Average,
                0.3,
                0.0,
                1e-3
            ),
            Err(CoreError::BadConfig(_))
        ));
    }

    #[test]
    fn sub_query_counts() {
        assert_eq!(DerivedStatistic::Average.sub_queries(), 2);
        assert_eq!(DerivedStatistic::Variance.sub_queries(), 3);
        assert_eq!(DerivedStatistic::StdDev.sub_queries(), 3);
    }
}
