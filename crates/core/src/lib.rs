//! The `fedaqp` federated private-AQP protocol — the paper's primary
//! contribution (§5).
//!
//! A [`federation::Federation`] wires `n` [`provider::DataProvider`]s and an
//! [`aggregator`] into the query lifecycle of Fig. 3:
//!
//! 1. The aggregator broadcasts the query; each provider identifies its
//!    covering clusters `C^Q` and their approximate proportions `R̂` from
//!    offline metadata (no data touched).
//! 2. Each provider releases a DP summary `(Ñ^Q, Avg(R̂)~)` under budget
//!    `ε_O` (Eq. 5, Thm. 5.1).
//! 3. The aggregator solves the allocation program (Eq. 6) and returns a
//!    per-provider sample size `s_i`.
//! 4. Providers with `N^Q < N_min` answer exactly ("regularly"); the
//!    threshold test runs *after* allocation so non-participation leaks
//!    nothing (§5.3.1).
//! 5. Otherwise each provider samples `s_i` clusters with the Exponential
//!    mechanism under `ε_S` (Alg. 2, Thm. 5.2).
//! 6. Each provider estimates the query with the Hansen–Hurwitz estimator,
//!    computes the smooth sensitivity of the estimate (Thms. 5.3–5.4,
//!    App. B), and releases under `ε_E` (Alg. 3).
//! 7. In [`config::ReleaseMode::Smc`] the providers instead secret-share
//!    `(estimate, S_LS)`; the aggregator sums obliviously, takes the max
//!    sensitivity, and adds a *single* Laplace noise (§6.5).
//!
//! Per-query privacy: `(ε_O + ε_S + ε_E, δ)` by sequential composition
//! within a provider and parallel composition across providers (§5.4).

pub mod aggregator;
pub mod agreement;
pub mod allocation;
pub mod config;
pub mod derived;
pub mod engine;
pub mod error;
pub mod extremes;
pub mod federation;
pub mod groupby;
pub mod online;
pub mod optimizer;
pub mod plan;
pub mod protocol;
pub mod provider;
pub mod sensitivity;
pub mod session;
pub mod shard;
pub mod stream;

pub use aggregator::Aggregator;
pub use agreement::{agree_on_s, announce_size, SizeDisclosure};
pub use allocation::{allocate_greedy, AllocationInput};
pub use config::{
    AllocationPolicy, EstimatorCalibration, FederationConfig, OptimizerConfig, ProportionSource,
    ReleaseMode, SamplingPolicy, SensitivityRegime,
};
pub use derived::{run_derived, DerivedAnswer, DerivedStatistic};
pub use engine::{
    EngineAnswer, EngineExtreme, EngineHandle, FederationEngine, PendingAnswer, PendingExtreme,
    PendingFragment, PendingPlain, QueryBatch, QuerySpec,
};
pub use error::CoreError;
pub use extremes::{private_extreme, Extreme, ExtremeAnswer};
pub use federation::{Federation, PlainAnswer, QueryAnswer};
pub use groupby::{run_group_by, Group, GroupByAnswer};
pub use online::{combine_snapshots, run_online, OnlineAnswer, OnlineSnapshot};
pub use optimizer::{MetaSnapshot, PlanExplanation, ProviderBounds, SubQueryExplanation};
pub use plan::{
    ExtremeOutcome, PendingPlan, PlanAnswer, PlanBackend, PlanGroup, PlanResult, PlanSnapshot,
    QueryPlan, SubOutcome,
};
pub use protocol::{LocalOutcome, PhaseTimings, ProviderSummary};
pub use provider::DataProvider;
pub use session::{AnalystSession, ConcurrentSession, SessionPlan};
pub use shard::{
    ExtremeFragmentSpec, FragmentHandle, FragmentPartial, FragmentSpec, PartialRow, ShardBackend,
    ShardedAnswer, ShardedFederation, ShardedPendingAnswer, ShardedSession, ShardedSub,
};
pub use stream::{IngestReport, LiveFederation, RefreshPolicy};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
