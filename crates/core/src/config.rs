//! Federation configuration.

use fedaqp_dp::{HyperParams, QueryBudget};
use fedaqp_smc::CostModel;
use fedaqp_storage::PartitionStrategy;

use crate::{CoreError, Result};

/// How final results are released to the aggregator (§5.3.3, §6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseMode {
    /// Each provider perturbs its own estimate with Laplace noise and the
    /// aggregator sums the noisy values (noise variance adds across
    /// providers).
    LocalDp,
    /// Providers secret-share `(estimate, S_LS)`; the runtime sums the
    /// estimates and takes the max sensitivity obliviously, then a single
    /// Laplace noise is added (tighter noise range, small SMC overhead —
    /// Fig. 8).
    Smc,
}

/// Which dimension count enters `ΔR = 1 − (1 − 1/S)^{|·|}`.
///
/// Theorem 5.1 states the bound with the full dimension count `|D|`
/// (query-independent, safe to publish once); Appendix A derives it with
/// the query's `|D^Q|` (tighter, still public since `D^Q` is part of the
/// query). Both are public quantities; the regime is an accuracy/pessimism
/// trade-off the harness ablates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensitivityRegime {
    /// `|D|` — the conservative bound of Thm. 5.1.
    AllDims,
    /// `|D^Q|` — the per-query bound of App. A.1.
    QueryDims,
}

/// How the aggregator assigns per-provider sample sizes (§4's global vs
/// local sampling discussion; ablation `repro ablation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// Global, distribution-aware allocation: solve Eq. 6 over the DP
    /// summaries (the paper's contribution).
    Optimized,
    /// Local sampling baseline: every provider gets `sr · Ñ^Q_i` with no
    /// cross-provider optimization ("the sample size is distributed
    /// uniformly on data providers", §4).
    LocalUniform,
}

/// How clusters are weighted during sampling (ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingPolicy {
    /// Unequal-probability PPS weights from `R̂` (Eq. 1) — the paper.
    Pps,
    /// Equal-probability cluster sampling (the §4 uniform baseline).
    Uniform,
}

/// Which probability the Hansen–Hurwitz estimator divides each draw by.
///
/// Algorithm 2 *selects* clusters with the Exponential mechanism (per-draw
/// budget `ε_s = ε_S/s`), whose selection distribution is the softmax of
/// `ε_s·p_j/(2Δp)` — not the raw PPS distribution `p_j` of Eq. 1. Eq. 3
/// nevertheless divides by `p_j`. The mismatch grows with the sample size:
/// larger `s` shrinks `ε_s`, flattening the draw distribution toward
/// uniform while the divisor stays PPS, so the estimator's bias *grows*
/// with the sampling rate and eats the variance reduction the extra draws
/// paid for (the Fig. 5 "error falls with rate" trend inverts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorCalibration {
    /// Divide by the raw PPS probability `p_j` (Eq. 3 verbatim) — the
    /// paper-faithful baseline, biased under the actual draw distribution.
    PpsEq3,
    /// Divide by the Exponential mechanism's exact per-draw selection
    /// probability — unbiased by construction under the distribution the
    /// sampler actually used (the default).
    EmCalibrated,
}

impl EstimatorCalibration {
    /// Canonical short name (`em` / `pps`) — the CLI `--calibration`
    /// vocabulary and the `BENCH_accuracy.json` key prefix, kept in one
    /// place so the parser and the benchmark writer cannot drift.
    pub fn as_str(&self) -> &'static str {
        match self {
            EstimatorCalibration::EmCalibrated => "em",
            EstimatorCalibration::PpsEq3 => "pps",
        }
    }
}

impl std::str::FromStr for EstimatorCalibration {
    type Err = CoreError;

    fn from_str(text: &str) -> Result<Self> {
        match text {
            "em" => Ok(EstimatorCalibration::EmCalibrated),
            "pps" => Ok(EstimatorCalibration::PpsEq3),
            _ => Err(CoreError::BadConfig("unknown calibration (use em|pps)")),
        }
    }
}

/// Where the per-cluster proportions `R` come from (ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProportionSource {
    /// Algorithm 1 metadata with the independence approximation (Eq. 1) —
    /// the paper.
    Metadata,
    /// Exact per-cluster scan — "as costly as evaluating the query itself"
    /// (§5.2), but the accuracy ceiling the approximation is measured
    /// against.
    ExactScan,
}

/// Toggles for the metadata-driven plan optimizer (see
/// [`crate::optimizer`]).
///
/// Every pass conditions **only on offline Algorithm 1 metadata** (public
/// by Theorem 5.1's one-time release) and on the query itself, never on
/// sampled data — so toggling a pass can change how much work the engine
/// does but never which bytes it releases. The equivalence is asserted by
/// the optimizer test suite; the default enables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Skip protocol step 1 on providers whose public per-dimension
    /// `[v_min, v_max]` bounds prove an empty covering set `C^Q` (Eq. 2).
    pub prune_providers: bool,
    /// Answer a plan's *cost-only* repeated sub-queries (VAR/STD's second
    /// moment re-issues the cell's COUNT) by re-reading the already
    /// released answer — post-processing, zero extra ξ, zero extra work.
    pub dedup_subqueries: bool,
    /// Submit a GROUP-BY's cells costliest-first (by metadata-estimated
    /// surviving cluster count) so the stragglers start pipelining
    /// earliest. Released bytes are order-independent for distinct
    /// sub-queries (content-derived noise), so this is latency-only.
    pub reorder_subqueries: bool,
}

impl OptimizerConfig {
    /// All passes on (the default).
    pub fn enabled() -> Self {
        Self {
            prune_providers: true,
            dedup_subqueries: true,
            reorder_subqueries: true,
        }
    }

    /// All passes off — the exhaustive fan-out the optimizer is measured
    /// against (and the reference side of the equivalence tests).
    pub fn disabled() -> Self {
        Self {
            prune_providers: false,
            dedup_subqueries: false,
            reorder_subqueries: false,
        }
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self::enabled()
    }
}

/// Full configuration of a federation.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Number of data providers (the paper's evaluation uses 4).
    pub n_providers: usize,
    /// Physical cluster capacity of each provider's store.
    pub cluster_capacity: usize,
    /// Federation-wide agreed `S` used to normalize proportions (§7). Must
    /// be ≥ every provider's capacity; defaults to `cluster_capacity`.
    pub agreed_s: usize,
    /// Approximation threshold `N_min`: queries covering fewer clusters are
    /// answered exactly (protocol step 4).
    pub n_min: usize,
    /// Per-query ε split across phases.
    pub hyperparams: HyperParams,
    /// Default per-query privacy budget ε.
    pub epsilon: f64,
    /// Default per-query failure probability δ.
    pub delta: f64,
    /// Release mode for final results.
    pub release_mode: ReleaseMode,
    /// Dimension-count regime for `ΔR`.
    pub sensitivity_regime: SensitivityRegime,
    /// Sensitivity cap for the exact (non-approximated) SUM path: the
    /// assumed maximum `Measure` contribution of one individual. COUNT uses
    /// sensitivity 1.
    pub sum_measure_cap: u64,
    /// Row → cluster layout of each provider's store.
    pub partition_strategy: PartitionStrategy,
    /// Allocation policy (global optimized vs local uniform).
    pub allocation_policy: AllocationPolicy,
    /// Cluster sampling weights (PPS vs uniform).
    pub sampling_policy: SamplingPolicy,
    /// Hansen–Hurwitz divisor: actual EM draw probability (calibrated,
    /// unbiased) vs raw PPS probability (paper's Eq. 3).
    pub estimator_calibration: EstimatorCalibration,
    /// Proportion source (metadata approximation vs exact scan).
    pub proportion_source: ProportionSource,
    /// Metadata resolution: `None` stores every distinct value's tail
    /// (Algorithm 1 verbatim); `Some(b)` keeps at most `b` histogram-style
    /// entries per dimension per cluster — smaller metadata, coarser `R̂`
    /// (the metadata-resolution ablation).
    pub metadata_buckets: Option<usize>,
    /// Network cost model for protocol messages and the SMC release path.
    pub cost_model: CostModel,
    /// Largest group-dimension domain a GROUP-BY plan may enumerate. A
    /// group-by fans out one sub-query per domain value, so an unbounded
    /// domain (say `categorical(10^9)`) would loop and allocate without
    /// limit; plans over larger domains are rejected with
    /// [`CoreError::GroupDomainTooLarge`] before any work starts.
    pub max_group_domain: u64,
    /// Metadata-driven plan-optimizer passes (all on by default; released
    /// bytes are identical either way — see [`crate::optimizer`]).
    pub optimizer: OptimizerConfig,
    /// Base seed for all provider/aggregator randomness.
    pub seed: u64,
    /// Offset added to the per-provider RNG lane (`lane_base + provider_id`
    /// instead of `provider_id`). A sharded deployment gives shard *s*
    /// holding global providers `[o, o+k)` a lane base of `o`, so its
    /// local providers `0..k` draw from exactly the noise streams the
    /// 1-shard engine would give providers `o..o+k` — the mechanism behind
    /// the serial ≡ concurrent ≡ remote ≡ sharded byte-identity contract.
    /// Single-engine deployments leave this at 0 (bit-identical to every
    /// prior release).
    pub provider_lane_base: u64,
}

impl FederationConfig {
    /// The paper's evaluation configuration (§6.1): 4 providers, ε = 1,
    /// δ = 10⁻³, budget split (0.1, 0.1, 0.8), local-DP release.
    ///
    /// One deliberate deviation: the estimator defaults to
    /// [`EstimatorCalibration::EmCalibrated`], which restores the Fig. 5
    /// "error falls with sampling rate" behaviour the paper reports but
    /// Eq. 3's PPS divisor does not deliver under Algorithm 2's actual
    /// draw distribution. Set [`EstimatorCalibration::PpsEq3`] for the
    /// verbatim-paper estimator.
    pub fn paper_default(cluster_capacity: usize) -> Self {
        Self {
            n_providers: 4,
            cluster_capacity,
            agreed_s: cluster_capacity,
            n_min: 10,
            hyperparams: HyperParams::paper_default(),
            epsilon: 1.0,
            delta: 1e-3,
            release_mode: ReleaseMode::LocalDp,
            sensitivity_regime: SensitivityRegime::QueryDims,
            sum_measure_cap: 1,
            // Clustered-index layout: tight min/max bands on the leading
            // dimension (effective pruning) while the remaining dimensions
            // stay well-mixed within each cluster, which keeps the per-
            // cluster independence approximation of Eq. 1 accurate and the
            // scenario-1 sensitivities moderate.
            partition_strategy: PartitionStrategy::SortedBy(0),
            allocation_policy: AllocationPolicy::Optimized,
            sampling_policy: SamplingPolicy::Pps,
            estimator_calibration: EstimatorCalibration::EmCalibrated,
            proportion_source: ProportionSource::Metadata,
            metadata_buckets: None,
            cost_model: CostModel::lan(),
            max_group_domain: 4096,
            optimizer: OptimizerConfig::enabled(),
            seed: 0xFEDA,
            provider_lane_base: 0,
        }
    }

    /// The default per-query budget this configuration implies: `(ε, δ)`
    /// split across the protocol phases by the hyper-parameters. Both the
    /// serial runtime and the concurrent engine derive their defaults here
    /// so they can never drift apart.
    pub fn query_budget(&self) -> Result<QueryBudget> {
        Ok(QueryBudget::split(
            self.epsilon,
            self.delta,
            self.hyperparams,
        )?)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_providers == 0 {
            return Err(CoreError::NoProviders);
        }
        if self.cluster_capacity == 0 {
            return Err(CoreError::BadConfig("cluster capacity must be positive"));
        }
        if self.agreed_s < self.cluster_capacity {
            return Err(CoreError::BadConfig(
                "agreed S must be at least the physical cluster capacity",
            ));
        }
        if self.n_min < 1 {
            return Err(CoreError::BadConfig("N_min must be at least 1"));
        }
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(CoreError::BadConfig("epsilon must be positive"));
        }
        if !(self.delta.is_finite() && (0.0..1.0).contains(&self.delta)) {
            return Err(CoreError::BadConfig("delta must be in [0, 1)"));
        }
        if self.sum_measure_cap == 0 {
            return Err(CoreError::BadConfig("sum measure cap must be positive"));
        }
        if self.max_group_domain == 0 {
            return Err(CoreError::BadConfig(
                "max group-by domain size must be positive",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = FederationConfig::paper_default(1000);
        cfg.validate().unwrap();
        assert_eq!(cfg.n_providers, 4);
        assert_eq!(cfg.epsilon, 1.0);
        assert_eq!(cfg.delta, 1e-3);
        assert_eq!(cfg.release_mode, ReleaseMode::LocalDp);
        assert_eq!(
            cfg.estimator_calibration,
            EstimatorCalibration::EmCalibrated
        );
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut cfg = FederationConfig::paper_default(100);
        cfg.n_providers = 0;
        assert!(matches!(cfg.validate(), Err(CoreError::NoProviders)));

        let mut cfg = FederationConfig::paper_default(100);
        cfg.agreed_s = 50;
        assert!(cfg.validate().is_err());

        let mut cfg = FederationConfig::paper_default(100);
        cfg.epsilon = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = FederationConfig::paper_default(100);
        cfg.delta = 1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = FederationConfig::paper_default(100);
        cfg.n_min = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = FederationConfig::paper_default(100);
        cfg.sum_measure_cap = 0;
        assert!(cfg.validate().is_err());
    }
}
