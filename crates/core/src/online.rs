//! Online (progressive) aggregation (extension; §2 related work).
//!
//! Hellerstein-style online aggregation "provides a quick initial answer
//! with a certain error, refining it as processing continues". The
//! federation supports a private variant: the analyst asks for `k`
//! snapshots; each snapshot `i` re-estimates the query from the first
//! `⌈i·s/k⌉` sampled clusters and is released under `(ε/k, δ/k)` by
//! sequential composition — the earlier answers are cheaper and noisier,
//! the last one matches a plain single-release run at `ε/k`.
//!
//! Each snapshot also carries the Hansen–Hurwitz confidence half-width of
//! the *pre-noise* estimate (a sampling-error indicator; it is derived
//! from the released sample structure, not from raw data beyond what the
//! release already reveals, and is reported for interpretability).

use fedaqp_dp::PrivacyCost;
use fedaqp_model::{QueryPlan, RangeQuery};

use crate::federation::Federation;
use crate::plan::PlanResult;
use crate::Result;

/// One progressive snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineSnapshot {
    /// Snapshot index (1-based).
    pub round: usize,
    /// Fraction of the final sample used.
    pub sample_fraction: f64,
    /// The DP-released running estimate.
    pub value: f64,
    /// Total clusters scanned across providers up to this snapshot.
    pub clusters_scanned: usize,
}

/// The full progressive run.
#[derive(Debug, Clone)]
pub struct OnlineAnswer {
    /// The snapshots, in release order.
    pub snapshots: Vec<OnlineSnapshot>,
    /// The exact answer (experiment oracle).
    pub exact: u64,
    /// Total privacy cost (`k` sequential releases).
    pub cost: PrivacyCost,
}

/// Runs `query` progressively: `rounds` releases under a total
/// `(epsilon, delta)`, with the sampling rate growing linearly from
/// `sampling_rate/rounds` to `sampling_rate`.
///
/// A thin wrapper over [`QueryPlan::Online`] compilation on a scoped
/// engine ([`Federation::with_engine`]) — the same compiler every other
/// layer (sessions, the TCP server, the sharded coordinator) runs, so
/// "serial" online aggregation is byte-identical to the concurrent and
/// remote paths on a frozen federation. The exact answer is the usual
/// experiment oracle, computed outside the private path.
pub fn run_online(
    federation: &mut Federation,
    query: &RangeQuery,
    sampling_rate: f64,
    epsilon: f64,
    delta: f64,
    rounds: usize,
) -> Result<OnlineAnswer> {
    let plan = QueryPlan::Online {
        query: query.clone(),
        sampling_rate,
        epsilon,
        delta,
        rounds,
    };
    let answer = federation.with_engine(|engine| engine.run_plan(&plan))?;
    let snapshots = match &answer.result {
        PlanResult::Snapshots { snapshots } => snapshots
            .iter()
            .map(|s| OnlineSnapshot {
                round: s.round as usize,
                sample_fraction: s.sample_fraction,
                value: s.value,
                clusters_scanned: s.clusters_scanned as usize,
            })
            .collect(),
        other => unreachable!("online plans release snapshots, got {other:?}"),
    };
    Ok(OnlineAnswer {
        snapshots,
        exact: federation.exact(query),
        cost: answer.cost,
    })
}

/// Inverse-variance-weighted combination of the snapshots: since each
/// release is an independent noisy estimate of the same quantity, the
/// analyst can post-process them (free under DP) into one answer more
/// accurate than the last snapshot alone. Later snapshots use larger
/// samples, so they are weighted by their sample fraction.
pub fn combine_snapshots(answer: &OnlineAnswer) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for s in &answer.snapshots {
        let w = s.sample_fraction;
        num += w * s.value;
        den += w;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use fedaqp_model::{Aggregate, Dimension, Domain, Range, Row, Schema};

    fn federation() -> Federation {
        let schema = Schema::new(vec![Dimension::new("x", Domain::new(0, 99).unwrap())]).unwrap();
        let partitions: Vec<Vec<Row>> = (0..4)
            .map(|p| {
                (0..2000)
                    .map(|i| Row::cell(vec![((i * 3 + p) % 100) as i64], 1))
                    .collect()
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(64);
        cfg.cost_model = fedaqp_smc::CostModel::zero();
        Federation::build(cfg, schema, partitions).unwrap()
    }

    fn query() -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(0, 10, 80).unwrap()]).unwrap()
    }

    #[test]
    fn produces_requested_rounds_with_growing_samples() {
        let mut fed = federation();
        let ans = run_online(&mut fed, &query(), 0.3, 40.0, 1e-3, 5).unwrap();
        assert_eq!(ans.snapshots.len(), 5);
        for w in ans.snapshots.windows(2) {
            assert!(w[1].sample_fraction > w[0].sample_fraction);
        }
        assert!((ans.cost.eps - 40.0).abs() < 1e-12);
        // Final snapshot reasonably close under the loose budget.
        let last = ans.snapshots.last().unwrap();
        let err = (last.value - ans.exact as f64).abs() / ans.exact as f64;
        assert!(err < 0.5, "final snapshot error {err}");
    }

    #[test]
    fn combined_estimate_is_finite_and_reasonable() {
        let mut fed = federation();
        let ans = run_online(&mut fed, &query(), 0.3, 40.0, 1e-3, 4).unwrap();
        let combined = combine_snapshots(&ans);
        assert!(combined.is_finite());
        let err = (combined - ans.exact as f64).abs() / ans.exact as f64;
        assert!(err < 0.5, "combined error {err}");
    }

    #[test]
    fn single_round_equals_plain_run_cost() {
        let mut fed = federation();
        let ans = run_online(&mut fed, &query(), 0.2, 1.0, 1e-3, 1).unwrap();
        assert_eq!(ans.snapshots.len(), 1);
        assert!((ans.snapshots[0].sample_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let mut fed = federation();
        assert!(run_online(&mut fed, &query(), 0.2, 1.0, 1e-3, 0).is_err());
        assert!(run_online(&mut fed, &query(), 0.2, 0.0, 1e-3, 3).is_err());
    }

    #[test]
    fn empty_combination_is_zero() {
        let ans = OnlineAnswer {
            snapshots: vec![],
            exact: 0,
            cost: PrivacyCost {
                eps: 1.0,
                delta: 0.0,
            },
        };
        assert_eq!(combine_snapshots(&ans), 0.0);
    }
}
