//! Online (progressive) aggregation (extension; §2 related work).
//!
//! Hellerstein-style online aggregation "provides a quick initial answer
//! with a certain error, refining it as processing continues". The
//! federation supports a private variant: the analyst asks for `k`
//! snapshots; each snapshot `i` re-estimates the query from the first
//! `⌈i·s/k⌉` sampled clusters and is released under `(ε/k, δ/k)` by
//! sequential composition — the earlier answers are cheaper and noisier,
//! the last one matches a plain single-release run at `ε/k`.
//!
//! Each snapshot also carries the Hansen–Hurwitz confidence half-width of
//! the *pre-noise* estimate (a sampling-error indicator; it is derived
//! from the released sample structure, not from raw data beyond what the
//! release already reveals, and is reported for interpretability).

use fedaqp_dp::{PrivacyCost, QueryBudget};
use fedaqp_model::RangeQuery;

use crate::federation::Federation;
use crate::{CoreError, Result};

/// One progressive snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineSnapshot {
    /// Snapshot index (1-based).
    pub round: usize,
    /// Fraction of the final sample used.
    pub sample_fraction: f64,
    /// The DP-released running estimate.
    pub value: f64,
    /// Total clusters scanned across providers up to this snapshot.
    pub clusters_scanned: usize,
}

/// The full progressive run.
#[derive(Debug, Clone)]
pub struct OnlineAnswer {
    /// The snapshots, in release order.
    pub snapshots: Vec<OnlineSnapshot>,
    /// The exact answer (experiment oracle).
    pub exact: u64,
    /// Total privacy cost (`k` sequential releases).
    pub cost: PrivacyCost,
}

/// Runs `query` progressively: `rounds` releases under a total
/// `(epsilon, delta)`, with the sampling rate growing linearly from
/// `sampling_rate/rounds` to `sampling_rate`.
pub fn run_online(
    federation: &mut Federation,
    query: &RangeQuery,
    sampling_rate: f64,
    epsilon: f64,
    delta: f64,
    rounds: usize,
) -> Result<OnlineAnswer> {
    if rounds == 0 {
        return Err(CoreError::BadConfig("online aggregation needs >= 1 round"));
    }
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(CoreError::BadConfig("online epsilon must be positive"));
    }
    let hp = federation.config().hyperparams;
    let per = QueryBudget::split(epsilon / rounds as f64, delta / rounds as f64, hp)?;
    let mut snapshots = Vec::with_capacity(rounds);
    let mut exact = 0u64;
    for round in 1..=rounds {
        let fraction = round as f64 / rounds as f64;
        let sr = (sampling_rate * fraction).clamp(f64::MIN_POSITIVE, 0.999);
        let ans = federation.run_with_budget(query, sr, &per)?;
        exact = ans.exact;
        snapshots.push(OnlineSnapshot {
            round,
            sample_fraction: fraction,
            value: ans.value,
            clusters_scanned: ans.clusters_scanned,
        });
    }
    Ok(OnlineAnswer {
        snapshots,
        exact,
        cost: PrivacyCost {
            eps: epsilon,
            delta,
        },
    })
}

/// Inverse-variance-weighted combination of the snapshots: since each
/// release is an independent noisy estimate of the same quantity, the
/// analyst can post-process them (free under DP) into one answer more
/// accurate than the last snapshot alone. Later snapshots use larger
/// samples, so they are weighted by their sample fraction.
pub fn combine_snapshots(answer: &OnlineAnswer) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for s in &answer.snapshots {
        let w = s.sample_fraction;
        num += w * s.value;
        den += w;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use fedaqp_model::{Aggregate, Dimension, Domain, Range, Row, Schema};

    fn federation() -> Federation {
        let schema = Schema::new(vec![Dimension::new("x", Domain::new(0, 99).unwrap())]).unwrap();
        let partitions: Vec<Vec<Row>> = (0..4)
            .map(|p| {
                (0..2000)
                    .map(|i| Row::cell(vec![((i * 3 + p) % 100) as i64], 1))
                    .collect()
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(64);
        cfg.cost_model = fedaqp_smc::CostModel::zero();
        Federation::build(cfg, schema, partitions).unwrap()
    }

    fn query() -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(0, 10, 80).unwrap()]).unwrap()
    }

    #[test]
    fn produces_requested_rounds_with_growing_samples() {
        let mut fed = federation();
        let ans = run_online(&mut fed, &query(), 0.3, 40.0, 1e-3, 5).unwrap();
        assert_eq!(ans.snapshots.len(), 5);
        for w in ans.snapshots.windows(2) {
            assert!(w[1].sample_fraction > w[0].sample_fraction);
        }
        assert!((ans.cost.eps - 40.0).abs() < 1e-12);
        // Final snapshot reasonably close under the loose budget.
        let last = ans.snapshots.last().unwrap();
        let err = (last.value - ans.exact as f64).abs() / ans.exact as f64;
        assert!(err < 0.5, "final snapshot error {err}");
    }

    #[test]
    fn combined_estimate_is_finite_and_reasonable() {
        let mut fed = federation();
        let ans = run_online(&mut fed, &query(), 0.3, 40.0, 1e-3, 4).unwrap();
        let combined = combine_snapshots(&ans);
        assert!(combined.is_finite());
        let err = (combined - ans.exact as f64).abs() / ans.exact as f64;
        assert!(err < 0.5, "combined error {err}");
    }

    #[test]
    fn single_round_equals_plain_run_cost() {
        let mut fed = federation();
        let ans = run_online(&mut fed, &query(), 0.2, 1.0, 1e-3, 1).unwrap();
        assert_eq!(ans.snapshots.len(), 1);
        assert!((ans.snapshots[0].sample_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let mut fed = federation();
        assert!(run_online(&mut fed, &query(), 0.2, 1.0, 1e-3, 0).is_err());
        assert!(run_online(&mut fed, &query(), 0.2, 0.0, 1e-3, 3).is_err());
    }

    #[test]
    fn empty_combination_is_zero() {
        let ans = OnlineAnswer {
            snapshots: vec![],
            exact: 0,
            cost: PrivacyCost {
                eps: 1.0,
                delta: 0.0,
            },
        };
        assert_eq!(combine_snapshots(&ans), 0.0);
    }
}
