//! Paper-specific sensitivity analysis (Thms. 5.1–5.4, Appendices A–B).

use fedaqp_dp::SmoothSensitivity;

use crate::config::{EstimatorCalibration, SensitivityRegime};

/// `ΔR = 1 − (1 − 1/S)^{n_dims}` (Thm. 5.1 / App. A.1): how much one
/// individual can move a single cluster's proportion `R`.
pub fn delta_r(agreed_s: usize, n_dims: usize) -> f64 {
    let s = agreed_s.max(1) as f64;
    1.0 - (1.0 - 1.0 / s).powi(n_dims as i32)
}

/// Picks the dimension count for `ΔR` under the configured regime.
pub fn delta_r_for(
    regime: SensitivityRegime,
    agreed_s: usize,
    schema_dims: usize,
    query_dims: usize,
) -> f64 {
    match regime {
        SensitivityRegime::AllDims => delta_r(agreed_s, schema_dims),
        SensitivityRegime::QueryDims => delta_r(agreed_s, query_dims),
    }
}

/// `ΔAvg(R̂) = max(ΔR/N_min, 1/(N_min + 1))` (Thm. 5.1): sensitivity of the
/// summary average released in the allocation phase.
pub fn delta_avg_r(delta_r: f64, n_min: usize) -> f64 {
    let n = n_min.max(1) as f64;
    (delta_r / n).max(1.0 / (n + 1.0))
}

/// `Δp = 1/(N_min (N_min + 1))` (Thm. 5.2): sensitivity of the sampling
/// probabilities scoring the Exponential mechanism. Re-exported from the
/// sampling substrate for a single source of truth.
pub use fedaqp_sampling::em::delta_p;

/// Inputs describing one *sampled* cluster for the estimator-sensitivity
/// computation of Alg. 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSensitivityInput {
    /// `Q(C)` — the exact aggregate over the cluster.
    pub q_c: f64,
    /// `R` — the cluster's approximated proportion.
    pub r: f64,
    /// `p` — the probability the Hansen–Hurwitz estimator actually divides
    /// this cluster's draw by (see [`SensitivityContext::divisor`]): the
    /// exact EM draw probability under
    /// [`EstimatorCalibration::EmCalibrated`], the floored PPS probability
    /// under [`EstimatorCalibration::PpsEq3`]. The scenario-4 slope is
    /// `1/p` for whichever divisor the estimator used.
    pub p: f64,
}

/// Per-provider context shared by all clusters of one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityContext {
    /// `Σ_{R ∈ R̂} R` over the provider's covering set.
    pub sum_r: f64,
    /// `ΔR` for this query (see [`delta_r_for`]).
    pub delta_r: f64,
    /// Numerical floor for `R` (one row's worth of mass, `1/S`): keeps the
    /// scenario-1 slope finite when metadata approximates `R ≈ 0` for a
    /// sampled cluster.
    pub r_floor: f64,
    /// Numerical floor for `p`: keeps the scenario-4 slope and the
    /// Hansen–Hurwitz division finite when a zero-probability cluster is
    /// drawn by the (privacy-noised) EM sampler.
    pub p_floor: f64,
    /// Which divisor the Hansen–Hurwitz estimator uses — and hence which
    /// scenario-4 bound applies (see [`SensitivityContext::divisor`]).
    pub calibration: EstimatorCalibration,
}

impl SensitivityContext {
    /// Builds the context for one provider and query.
    ///
    /// `p_floor` should be the *minimum actual draw probability* of the
    /// sampler ([`fedaqp_sampling::EmSample::min_draw_probability`], lower-
    /// bounded analytically by [`em_draw_probability_floor`]); dividing by
    /// anything smaller than the true draw probability inflates both the
    /// estimate and its sensitivity without statistical justification.
    pub fn new(
        sum_r: f64,
        delta_r: f64,
        agreed_s: usize,
        p_floor: f64,
        calibration: EstimatorCalibration,
    ) -> Self {
        let s = agreed_s.max(1) as f64;
        Self {
            sum_r,
            delta_r,
            r_floor: 1.0 / s,
            p_floor: p_floor.max(f64::MIN_POSITIVE),
            calibration,
        }
    }

    /// Effective (floored) proportion.
    #[inline]
    pub fn r_eff(&self, r: f64) -> f64 {
        r.max(self.r_floor)
    }

    /// Effective (floored) probability.
    #[inline]
    pub fn p_eff(&self, p: f64) -> f64 {
        p.max(self.p_floor)
    }

    /// The probability the Hansen–Hurwitz estimator divides one draw by,
    /// given both probability views of that draw.
    ///
    /// * [`EstimatorCalibration::EmCalibrated`] — the exact EM selection
    ///   probability `q_i`: the draw *actually* happened with this
    ///   probability, so `E[(1/s)·Σ Q(C_i)/q_i] = Σ_j Q(C_j)` holds by
    ///   construction. Since every `q_i ≥ p_floor = min_j q_j`, the
    ///   resulting scenario-4 slope `1/q_i ≤ 1/p_floor` — the calibrated
    ///   divisor *tightens* the sensitivity bound relative to the floored-
    ///   PPS fallback, so the released noise shrinks too.
    /// * [`EstimatorCalibration::PpsEq3`] — the paper's Eq. 3 divisor: the
    ///   raw PPS probability, floored at `p_floor` because metadata can
    ///   assign `R̂ ≈ 0` (hence `p ≈ 0`) to a cluster the privacy-noised
    ///   sampler nevertheless selected.
    #[inline]
    pub fn divisor(&self, pps: f64, em: f64) -> f64 {
        match self.calibration {
            EstimatorCalibration::PpsEq3 => self.p_eff(pps),
            EstimatorCalibration::EmCalibrated => em.max(f64::MIN_POSITIVE),
        }
    }
}

/// Lower bound on the Exponential mechanism's per-draw selection
/// probability over `n` candidates with scores in `[0, 1]`:
///
/// ```text
/// q_i = w_i / Σ w_j ≥ exp(−ε_s/(2Δp)) / n      (w_i = exp(ε_s·p_i/(2Δp)))
/// ```
///
/// since weights differ by at most a factor `exp(ε_s·(max p − min p)/(2Δp))
/// ≤ exp(ε_s/(2Δp))`. Alg. 2 divides Hansen–Hurwitz contributions by the
/// *PPS* probability `p_i`, which can be arbitrarily smaller than the EM
/// probability that actually governed the draw; flooring the divisor at
/// this bound keeps the estimator (and the scenario-4 sensitivity `1/p`)
/// finite when the metadata assigns `R̂ ≈ 0` to a cluster the privacy-
/// noised sampler nevertheless selected. DESIGN.md records this deviation.
pub fn em_draw_probability_floor(eps_per_selection: f64, delta_p: f64, n_candidates: usize) -> f64 {
    let exponent = (eps_per_selection / (2.0 * delta_p)).min(30.0);
    (-exponent).exp() / n_candidates.max(1) as f64
}

/// Worst-case scenario-4 slope of the *calibrated* estimator — the
/// rederived bound for the `EmCalibrated` divisor.
///
/// The calibrated Hansen–Hurwitz divides draw `i` by its exact EM
/// probability `q_i = w_i / Σ w_j` (`w_i = exp(ε_s·p_i/(2Δp))`), so the
/// scenario-4 local-sensitivity slope is `1/q_i`. With scores `p_i ∈
/// [0, 1]` the weights differ by at most the per-draw ratio bound
/// `exp(ε_s·(max p − min p)/(2Δp)) ≤ exp(ε_s/(2Δp))`, hence
///
/// ```text
/// 1/q_i ≤ N^Q · exp(ε_s/(2Δp))        for every candidate i,
/// ```
///
/// the reciprocal of [`em_draw_probability_floor`]. Two orderings follow:
///
/// * the *realized* calibrated slope `1/q_i` of any drawn cluster is at
///   most `1/min_j q_j = 1/p_floor` — i.e. never worse than the floored-
///   PPS fallback's worst case, and strictly better for every cluster
///   that is not the least-likely one (the released noise shrinks);
/// * `1/p_floor` itself never exceeds this analytic bound, so the bound
///   is safe to publish without inspecting the realized distribution.
///
/// This function is **analysis-only**: the runtime noise computation uses
/// the realized slopes (`ClusterSensitivityInput::p` carries the exact EM
/// probability each draw was divided by), which are tighter than this
/// worst case. It exists to prove the orderings above and to give
/// auditors a distribution-free cap — changing it does not change any
/// released noise.
pub fn em_calibrated_slope_bound(eps_per_selection: f64, delta_p: f64, n_candidates: usize) -> f64 {
    1.0 / em_draw_probability_floor(eps_per_selection, delta_p, n_candidates)
}

/// The linear local-sensitivity slope `LS^k / k` for one cluster, choosing
/// the dominant neighbouring scenario by Thm. 5.4:
///
/// * scenario 1 (another cluster gained the new row) dominates iff
///   `Q(C) > ΣR/ΔR`, with slope `Q(C)·ΔR/R`;
/// * otherwise scenario 4 (the row joined an existing cell's measure)
///   dominates, with slope `1/p`.
pub fn dominant_ls_slope(input: ClusterSensitivityInput, ctx: &SensitivityContext) -> f64 {
    let threshold = if ctx.delta_r > 0.0 {
        ctx.sum_r / ctx.delta_r
    } else {
        f64::INFINITY
    };
    if input.q_c > threshold {
        input.q_c * ctx.delta_r / ctx.r_eff(input.r)
    } else {
        1.0 / ctx.p_eff(input.p)
    }
}

/// Average smooth sensitivity over the sampled clusters (Eq. 9 / Alg. 3
/// lines 2–6): `S_LS_E = (1/s) Σ_i S_LS_E(C_i)` where each per-cluster
/// bound is `max_k e^{−βk}·k·slope_i`.
pub fn smooth_estimator_sensitivity(
    smooth: &SmoothSensitivity,
    clusters: &[ClusterSensitivityInput],
    ctx: &SensitivityContext,
) -> f64 {
    if clusters.is_empty() {
        return 0.0;
    }
    let total: f64 = clusters
        .iter()
        .map(|&c| smooth.smooth_bound_linear(dominant_ls_slope(c, ctx)))
        .sum();
    total / clusters.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_r_matches_formula_and_monotone() {
        let s = 100usize;
        let d1 = delta_r(s, 1);
        assert!((d1 - 0.01).abs() < 1e-12);
        // More dimensions ⇒ larger ΔR (more sub-proportions can shift).
        assert!(delta_r(s, 2) > d1);
        assert!(delta_r(s, 9) > delta_r(s, 5));
        // Bounded by 1.
        assert!(delta_r(2, 64) <= 1.0);
        // Larger S ⇒ smaller ΔR.
        assert!(delta_r(1000, 3) < delta_r(100, 3));
    }

    #[test]
    fn delta_r_regimes() {
        let all = delta_r_for(SensitivityRegime::AllDims, 100, 9, 2);
        let q = delta_r_for(SensitivityRegime::QueryDims, 100, 9, 2);
        assert!(all > q, "all-dims bound must be more conservative");
        assert!((q - delta_r(100, 2)).abs() < 1e-15);
    }

    #[test]
    fn delta_avg_r_takes_max_branch() {
        // Small ΔR: the 1/(N_min+1) branch dominates.
        assert!((delta_avg_r(0.001, 10) - 1.0 / 11.0).abs() < 1e-12);
        // Large ΔR: the ΔR/N_min branch dominates.
        assert!((delta_avg_r(0.9, 2) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn dominant_scenario_switches_at_threshold() {
        let ctx = SensitivityContext::new(5.0, 0.1, 100, 0.5 / 20.0, EstimatorCalibration::PpsEq3);
        // Threshold = sum_r/delta_r = 50.
        let heavy = ClusterSensitivityInput {
            q_c: 100.0,
            r: 0.5,
            p: 0.1,
        };
        let light = ClusterSensitivityInput {
            q_c: 10.0,
            r: 0.5,
            p: 0.1,
        };
        // Scenario 1 for the heavy cluster: slope = 100·0.1/0.5 = 20.
        assert!((dominant_ls_slope(heavy, &ctx) - 20.0).abs() < 1e-12);
        // Scenario 4 for the light cluster: slope = 1/0.1 = 10.
        assert!((dominant_ls_slope(light, &ctx) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn floors_keep_slopes_finite() {
        let ctx = SensitivityContext::new(1.0, 0.05, 100, 0.5 / 10.0, EstimatorCalibration::PpsEq3);
        let degenerate = ClusterSensitivityInput {
            q_c: 1000.0,
            r: 0.0,
            p: 0.0,
        };
        let slope = dominant_ls_slope(degenerate, &ctx);
        assert!(slope.is_finite() && slope > 0.0);
        let light_degenerate = ClusterSensitivityInput {
            q_c: 0.0,
            r: 0.0,
            p: 0.0,
        };
        let slope = dominant_ls_slope(light_degenerate, &ctx);
        assert!(slope.is_finite() && slope > 0.0);
    }

    #[test]
    fn smooth_sensitivity_averages_clusters() {
        let smooth = SmoothSensitivity::new(0.8, 1e-3).unwrap();
        let ctx = SensitivityContext::new(2.0, 0.1, 100, 0.5 / 10.0, EstimatorCalibration::PpsEq3);
        let a = ClusterSensitivityInput {
            q_c: 100.0,
            r: 0.5,
            p: 0.5,
        };
        let b = ClusterSensitivityInput {
            q_c: 1.0,
            r: 0.5,
            p: 0.5,
        };
        let both = smooth_estimator_sensitivity(&smooth, &[a, b], &ctx);
        let only_a = smooth_estimator_sensitivity(&smooth, &[a], &ctx);
        let only_b = smooth_estimator_sensitivity(&smooth, &[b], &ctx);
        assert!((both - (only_a + only_b) / 2.0).abs() < 1e-9);
        assert_eq!(smooth_estimator_sensitivity(&smooth, &[], &ctx), 0.0);
    }

    #[test]
    fn smooth_sensitivity_grows_with_query_mass() {
        // Larger per-cluster aggregates (scenario 1) ⇒ larger sensitivity:
        // the reason SUM answers carry more noise than their magnitude
        // would suggest on small data (§6.6 discussion).
        let smooth = SmoothSensitivity::new(0.8, 1e-3).unwrap();
        let ctx = SensitivityContext::new(2.0, 0.1, 100, 0.5 / 10.0, EstimatorCalibration::PpsEq3);
        let small = ClusterSensitivityInput {
            q_c: 50.0,
            r: 0.5,
            p: 0.5,
        };
        let large = ClusterSensitivityInput {
            q_c: 500.0,
            r: 0.5,
            p: 0.5,
        };
        assert!(
            smooth_estimator_sensitivity(&smooth, &[large], &ctx)
                > smooth_estimator_sensitivity(&smooth, &[small], &ctx)
        );
    }

    #[test]
    fn divisor_follows_calibration() {
        let pps_ctx = SensitivityContext::new(2.0, 0.1, 100, 0.05, EstimatorCalibration::PpsEq3);
        let em_ctx =
            SensitivityContext::new(2.0, 0.1, 100, 0.05, EstimatorCalibration::EmCalibrated);
        // PPS path: raw probability, floored.
        assert_eq!(pps_ctx.divisor(0.3, 0.2), 0.3);
        assert_eq!(pps_ctx.divisor(0.01, 0.2), 0.05);
        // Calibrated path: always the exact EM probability.
        assert_eq!(em_ctx.divisor(0.3, 0.2), 0.2);
        assert_eq!(em_ctx.divisor(0.01, 0.2), 0.2);
        // Degenerate EM probability is clamped away from zero.
        assert!(em_ctx.divisor(0.3, 0.0) > 0.0);
    }

    #[test]
    fn calibrated_slope_bound_dominates_realized_slopes() {
        // A realistic EM distribution: softmax of ε_s·p_j/(2Δp).
        let eps_s = 0.05;
        let dp = delta_p(10);
        let scores = [0.5, 0.3, 0.15, 0.05, 0.0];
        let t = eps_s / (2.0 * dp);
        let weights: Vec<f64> = scores.iter().map(|&p| (t * p).exp()).collect();
        let total: f64 = weights.iter().sum();
        let q: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let q_min = q.iter().cloned().fold(f64::INFINITY, f64::min);
        let bound = em_calibrated_slope_bound(eps_s, dp, scores.len());
        for &qi in &q {
            // Realized calibrated slope ≤ floored-PPS worst case ≤ analytic
            // bound — the orderings the rederivation promises.
            assert!(1.0 / qi <= 1.0 / q_min + 1e-12);
            assert!(
                1.0 / q_min <= bound + 1e-9,
                "1/q_min {} vs {bound}",
                1.0 / q_min
            );
        }
        assert!((bound - 1.0 / em_draw_probability_floor(eps_s, dp, 5)).abs() < 1e-9);
    }

    #[test]
    fn calibrated_inputs_give_tighter_smooth_sensitivity() {
        // Same drawn clusters, scenario-4-dominant (small Q): feeding the
        // exact EM probabilities yields a strictly smaller smooth
        // sensitivity than the floored-PPS divisors whenever the sampler
        // flattened the distribution above the floor.
        let smooth = SmoothSensitivity::new(0.8, 1e-3).unwrap();
        let pps = [0.01, 0.02, 0.4];
        let em = [0.2, 0.25, 0.55]; // flattened towards uniform
        let p_floor = 0.2; // min realized EM probability
        let mk = |probs: &[f64], calibration| {
            let ctx = SensitivityContext::new(0.5, 0.001, 100, p_floor, calibration);
            let inputs: Vec<ClusterSensitivityInput> = probs
                .iter()
                .zip(&pps)
                .map(|(&p, &raw)| ClusterSensitivityInput {
                    q_c: 1.0,
                    r: 0.5,
                    p: ctx.divisor(raw, p),
                })
                .collect();
            smooth_estimator_sensitivity(&smooth, &inputs, &ctx)
        };
        let calibrated = mk(&em, EstimatorCalibration::EmCalibrated);
        let paper = mk(&pps, EstimatorCalibration::PpsEq3);
        assert!(
            calibrated < paper,
            "calibrated {calibrated} should be below paper {paper}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// ΔR is always in (0, 1] and monotone in dimensions.
        #[test]
        fn delta_r_bounds(s in 2usize..10_000, d in 1usize..32) {
            let x = delta_r(s, d);
            prop_assert!(x > 0.0 && x <= 1.0);
            prop_assert!(delta_r(s, d + 1) >= x);
        }

        /// The dominant slope is finite and positive for any inputs.
        #[test]
        fn slope_always_finite(
            q_c in 0.0f64..1e9,
            r in 0.0f64..1.0,
            p in 0.0f64..1.0,
            sum_r in 0.0f64..100.0,
            n_cov in 1usize..1000,
        ) {
            let ctx = SensitivityContext::new(
                sum_r,
                delta_r(100, 4),
                100,
                em_draw_probability_floor(0.0125, 1.0/110.0, n_cov),
                EstimatorCalibration::PpsEq3,
            );
            let slope = dominant_ls_slope(ClusterSensitivityInput { q_c, r, p }, &ctx);
            prop_assert!(slope.is_finite() && slope > 0.0);
        }
    }
}
