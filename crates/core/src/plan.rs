//! Plan execution: compiling a [`QueryPlan`] into concurrent engine
//! sub-queries.
//!
//! Every analyst-facing layer — the serial convenience functions
//! ([`crate::run_group_by`], [`crate::run_derived`],
//! [`crate::private_extreme`]), [`crate::ConcurrentSession`], the TCP
//! server, and the CLI — executes plans through this one compiler, so the
//! semantics (budget splits, suppression, noise derivation) cannot drift
//! between layers.
//!
//! Compilation shape:
//!
//! * [`QueryPlan::Scalar`] → one private sub-query.
//! * [`QueryPlan::Derived`] → 2–3 sub-queries, each under a `1/n` share of
//!   the plan's `(ε, δ)` (sequential composition, Thm. 3.1); the statistic
//!   is post-processed from the noisy releases (Thm. 3.3 — free).
//! * [`QueryPlan::GroupBy`] → one point sub-query per public domain value
//!   of the grouped dimension (× the statistic's sub-queries when grouping
//!   a derived aggregate), each under a `1/k` (or `1/(k·n)`) share.
//!   Group queries are *not* disjoint under this pipeline (a cluster's
//!   metadata depends on all rows in the cluster), so sequential — not
//!   parallel — composition applies.
//! * [`QueryPlan::Online`] → `rounds` sub-queries over the same ranges at
//!   progressively larger sampling rates (`sr · r/rounds`), each under a
//!   `1/rounds` share of the plan's `(ε, δ)` (sequential composition —
//!   progressive samples of the same data are not disjoint); snapshots
//!   stream out through [`PendingPlan::wait_streaming`] as rounds resolve.
//! * [`QueryPlan::Extreme`] → one metadata-only engine job
//!   ([`EngineHandle::submit_extreme`]).
//!
//! **Backends.** The compiler is generic over a [`PlanBackend`]: the thing
//! that actually runs a sub-query. [`EngineHandle`] is the in-process
//! backend (the default, and what every pre-sharding caller uses);
//! [`crate::shard::ShardedFederation`] is the scatter–gather coordinator
//! backend. Both run the *same* compilation, budget-split, suppression,
//! and post-processing code below — which is what makes the sharded
//! determinism contract checkable: only the sub-query transport differs.
//!
//! **Concurrency.** [`EngineHandle::submit_plan`] submits *every*
//! sub-query before anything is awaited, so a group-by's `k` point queries
//! pipeline across the provider worker pool instead of executing serially
//! — under a WAN cost model their transits overlap, which is why
//! [`PlanAnswer::timings`] reports per-phase *maxima* over the concurrent
//! sub-queries rather than sums.
//!
//! **Determinism.** Sub-queries are submitted in a canonical order
//! (groups ascending by key; within a derived cell: COUNT, SUM, second
//! moment), and each draws noise from the engine's per-`(query content,
//! occurrence, provider)` RNG derivation — so a seeded plan produces
//! byte-identical answers whether it runs through a scoped engine, a
//! shared [`crate::FederationEngine`], a remote connection, or a sharded
//! coordinator.
//!
//! **Budget.** A plan's whole `(ε, δ)` is known up front
//! ([`QueryPlan::total_cost`]), and [`EngineHandle::validate_plan`] is
//! side-effect free, so budget-charging sessions validate first, charge
//! the *entire* plan atomically, and only then submit — a plan the engine
//! would reject costs nothing, and a plan that is accepted can never be
//! half-charged (fail-closed once dispatched).

use std::time::Duration;

use fedaqp_dp::{HyperParams, PrivacyCost, QueryBudget};
pub use fedaqp_model::QueryPlan;
use fedaqp_model::{Aggregate, Extreme, Range, RangeQuery, Schema, Value};
use fedaqp_obs as obs;

use crate::config::FederationConfig;
use crate::derived::DerivedStatistic;
use crate::engine::{EngineHandle, PendingAnswer, PendingExtreme};
use crate::optimizer::{submission_order, MetaSnapshot, PlanExplanation, SubQueryExplanation};
use crate::protocol::PhaseTimings;
use crate::{CoreError, Result};

/// One released group of a GROUP-BY plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanGroup {
    /// The group key (a value of the grouped dimension).
    pub key: Value,
    /// The noisy aggregate (or derived statistic) for the group.
    pub value: f64,
    /// 95% sampling confidence half-width of the group's release, when
    /// estimable (`None` for derived statistics, whose post-processing has
    /// no closed-form interval here).
    pub ci_halfwidth: Option<f64>,
}

/// One progressive release of a [`QueryPlan::Online`] plan: round `round`
/// of `rounds`, sampled at `sample_fraction` of the plan's terminal rate,
/// released under a `1/rounds` share of the plan's budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanSnapshot {
    /// 1-based round index.
    pub round: u64,
    /// Total rounds of the plan.
    pub rounds: u64,
    /// `round / rounds` — the fraction of the terminal sampling rate this
    /// snapshot sampled at.
    pub sample_fraction: f64,
    /// The DP-released snapshot value.
    pub value: f64,
    /// 95% sampling confidence half-width, when estimable.
    pub ci_halfwidth: Option<f64>,
    /// Clusters scanned for this snapshot (public work proxy).
    pub clusters_scanned: u64,
}

/// The shape-specific part of a [`PlanAnswer`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanResult {
    /// A scalar or derived-statistic release.
    Value {
        /// The DP-released value.
        value: f64,
        /// 95% sampling confidence half-width, when estimable.
        ci_halfwidth: Option<f64>,
    },
    /// An online-aggregation release: every progressive snapshot, in round
    /// order (the last one is the plan's terminal answer).
    Snapshots {
        /// The released snapshots, ascending by round.
        snapshots: Vec<PlanSnapshot>,
    },
    /// A GROUP-BY release: surviving groups ascending by key.
    Groups {
        /// Released groups (noisy value ≥ threshold).
        groups: Vec<PlanGroup>,
        /// Number of groups suppressed by the significance threshold.
        suppressed: u64,
    },
    /// A private MIN/MAX selection.
    Extreme {
        /// The selected (privately released) domain value.
        value: Value,
    },
}

/// The uniform answer to any [`QueryPlan`]: the shape-specific result plus
/// the privacy cost and latency accounting every plan kind shares.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAnswer {
    /// The released result.
    pub result: PlanResult,
    /// The `(ε, δ)` the plan charged — always exactly
    /// [`QueryPlan::total_cost`].
    pub cost: PrivacyCost,
    /// Per-phase latency, taken as the *maximum* over the plan's
    /// concurrent sub-queries (their execution and simulated transit
    /// overlap on the worker pool; a serial executor would pay the sum).
    pub timings: PhaseTimings,
}

impl PlanAnswer {
    /// The scalar value, when the plan released one.
    pub fn value(&self) -> Option<f64> {
        match &self.result {
            PlanResult::Value { value, .. } => Some(*value),
            PlanResult::Snapshots { snapshots } => snapshots.last().map(|s| s.value),
            PlanResult::Extreme { value } => Some(*value as f64),
            PlanResult::Groups { .. } => None,
        }
    }

    /// The progressive snapshots, when the plan ran online aggregation.
    pub fn snapshots(&self) -> Option<&[PlanSnapshot]> {
        match &self.result {
            PlanResult::Snapshots { snapshots } => Some(snapshots),
            _ => None,
        }
    }

    /// The released groups, when the plan was a GROUP-BY.
    pub fn groups(&self) -> Option<&[PlanGroup]> {
        match &self.result {
            PlanResult::Groups { groups, .. } => Some(groups),
            _ => None,
        }
    }
}

/// What one resolved scalar sub-query hands back to the plan compiler —
/// the release, its confidence interval, and its latency accounting,
/// stripped of backend-specific diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubOutcome {
    /// The DP-released value.
    pub value: f64,
    /// 95% sampling confidence half-width, when estimable.
    pub ci_halfwidth: Option<f64>,
    /// Per-phase latency of this sub-query.
    pub timings: PhaseTimings,
    /// Total clusters scanned across providers (public work proxy; what
    /// online snapshots report as their progress measure).
    pub clusters_scanned: u64,
}

/// What one resolved extreme selection hands back to the plan compiler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtremeOutcome {
    /// The combined (post-processed) selection.
    pub value: Value,
    /// Wall time of the slowest provider's selection.
    pub execution: Duration,
    /// Simulated network time.
    pub network: Duration,
}

/// A sub-query transport the plan compiler can run on: the in-process
/// [`EngineHandle`] or the sharded scatter–gather coordinator
/// ([`crate::shard::ShardedFederation`]). Everything *semantic* — budget
/// splits, group enumeration, suppression, derived post-processing,
/// optimizer decisions — lives in the shared generic functions of this
/// module; a backend only moves sub-queries and answers.
pub trait PlanBackend: Clone {
    /// A private scalar sub-query in flight.
    type Sub;
    /// A private MIN/MAX selection in flight.
    type Ext;

    /// The federation configuration this backend serves.
    fn config(&self) -> &FederationConfig;
    /// The public table schema.
    fn schema(&self) -> &Schema;
    /// The public pruning-bounds snapshot (whole federation).
    fn snapshot(&self) -> &MetaSnapshot;

    /// Submits one private sub-query without waiting.
    fn submit_sub(
        &self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
    ) -> Result<Self::Sub>;
    /// A second waiter on the same in-flight sub-query (the dedup pass's
    /// release reuse): both waiters must observe byte-identical outcomes
    /// without resubmitting, re-noising, or re-charging.
    fn share_sub(&self, sub: &Self::Sub) -> Self::Sub;
    /// Blocks until the sub-query resolved.
    fn wait_sub(&self, sub: Self::Sub) -> Result<SubOutcome>;

    /// Submits one private MIN/MAX without waiting.
    fn submit_ext(&self, dim: usize, extreme: Extreme, epsilon: f64) -> Result<Self::Ext>;
    /// Blocks until the selection resolved.
    fn wait_ext(&self, ext: Self::Ext) -> Result<ExtremeOutcome>;

    /// Validates one sub-query submission without dispatching it:
    /// sampling rate in `(0, 1)`, query dimensions in the schema, budget
    /// phases positive. Stateless.
    fn validate_sub(
        &self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
    ) -> Result<()> {
        if !(sampling_rate.is_finite() && 0.0 < sampling_rate && sampling_rate < 1.0) {
            return Err(CoreError::InvalidSamplingRate(sampling_rate));
        }
        query.check_schema(self.schema())?;
        check_budget(budget)
    }

    /// Validates one extreme submission without dispatching it.
    fn validate_ext(&self, dim: usize, epsilon: f64) -> Result<()> {
        self.schema().dimension(dim)?;
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(CoreError::BadConfig(
                "extreme-query epsilon must be positive",
            ));
        }
        Ok(())
    }
}

/// Budget-phase sanity shared by every backend (and by
/// [`EngineHandle::validate`]).
pub(crate) fn check_budget(budget: &QueryBudget) -> Result<()> {
    let ok = |x: f64| x.is_finite() && x > 0.0;
    let valid = ok(budget.eps_o)
        && ok(budget.eps_s)
        && ok(budget.eps_e)
        && budget.delta.is_finite()
        && (0.0..1.0).contains(&budget.delta);
    if !valid {
        return Err(CoreError::BadConfig(
            "query budget phases must be positive and delta in [0, 1)",
        ));
    }
    Ok(())
}

impl PlanBackend for EngineHandle {
    type Sub = PendingAnswer;
    type Ext = PendingExtreme;

    fn config(&self) -> &FederationConfig {
        EngineHandle::config(self)
    }

    fn schema(&self) -> &Schema {
        EngineHandle::schema(self)
    }

    fn snapshot(&self) -> &MetaSnapshot {
        self.meta_snapshot()
    }

    fn submit_sub(
        &self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
    ) -> Result<PendingAnswer> {
        self.submit_with_budget(query, sampling_rate, budget)
    }

    fn share_sub(&self, sub: &PendingAnswer) -> PendingAnswer {
        sub.share()
    }

    fn wait_sub(&self, sub: PendingAnswer) -> Result<SubOutcome> {
        let answer = sub.wait()?;
        Ok(SubOutcome {
            value: answer.value,
            ci_halfwidth: answer.ci_halfwidth,
            timings: answer.timings,
            clusters_scanned: answer.clusters_scanned as u64,
        })
    }

    fn submit_ext(&self, dim: usize, extreme: Extreme, epsilon: f64) -> Result<PendingExtreme> {
        self.submit_extreme(dim, extreme, epsilon)
    }

    fn wait_ext(&self, ext: PendingExtreme) -> Result<ExtremeOutcome> {
        let extreme = ext.wait()?;
        Ok(ExtremeOutcome {
            value: extreme.value,
            execution: extreme.execution,
            network: extreme.network,
        })
    }

    fn validate_sub(
        &self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
    ) -> Result<()> {
        self.validate(query, sampling_rate, budget)
    }

    fn validate_ext(&self, dim: usize, epsilon: f64) -> Result<()> {
        self.validate_extreme(dim, epsilon)
    }
}

/// Merges per-phase timings under the overlap model (element-wise max).
fn merge_timings(into: &mut PhaseTimings, other: &PhaseTimings) {
    into.summary = into.summary.max(other.summary);
    into.allocation = into.allocation.max(other.allocation);
    into.execution = into.execution.max(other.execution);
    into.release = into.release.max(other.release);
    into.network = into.network.max(other.network);
}

/// The in-flight sub-queries of one scalar or derived "cell" (a lone plan,
/// or one group of a GROUP-BY).
enum CellPending<B: PlanBackend> {
    Scalar(B::Sub),
    Derived {
        statistic: DerivedStatistic,
        count: B::Sub,
        sum: B::Sub,
        /// The third budgeted release of VAR/STD (see
        /// [`crate::derived`] for why it is cost-only).
        second_moment: Option<B::Sub>,
    },
}

impl<B: PlanBackend> CellPending<B> {
    /// Waits out the cell's sub-queries and post-processes the statistic.
    /// Noisy denominators are clamped to ≥ 1 so the post-processing stays
    /// finite; variance is clamped at ≥ 0.
    fn wait(self, backend: &B) -> Result<(f64, Option<f64>, PhaseTimings)> {
        match self {
            CellPending::Scalar(pending) => {
                let answer = backend.wait_sub(pending)?;
                Ok((answer.value, answer.ci_halfwidth, answer.timings))
            }
            CellPending::Derived {
                statistic,
                count,
                sum,
                second_moment,
            } => {
                let count = backend.wait_sub(count)?;
                let sum = backend.wait_sub(sum)?;
                let mut timings = count.timings;
                merge_timings(&mut timings, &sum.timings);
                if let Some(pending) = second_moment {
                    let heavy = backend.wait_sub(pending)?;
                    merge_timings(&mut timings, &heavy.timings);
                }
                let noisy_count = count.value.max(1.0);
                let mean = sum.value / noisy_count;
                let value = match statistic {
                    DerivedStatistic::Average => mean,
                    DerivedStatistic::Variance => (mean * (mean - 1.0)).max(0.0),
                    DerivedStatistic::StdDev => (mean * (mean - 1.0)).max(0.0).sqrt(),
                };
                Ok((value, None, timings))
            }
        }
    }
}

/// A [`QueryPlan`] in flight on a backend: every sub-query has been
/// submitted (and is pipelining across the worker pool); [`wait`] collects
/// and post-processes. The default backend is the in-process engine.
///
/// [`wait`]: PendingPlan::wait
pub struct PendingPlan<B: PlanBackend = EngineHandle> {
    backend: B,
    kind: PendingKind<B>,
    cost: PrivacyCost,
}

enum PendingKind<B: PlanBackend> {
    Cell(CellPending<B>),
    Groups {
        keys: Vec<Value>,
        cells: Vec<CellPending<B>>,
        threshold: f64,
    },
    /// The in-flight rounds of an online plan, ascending by round (every
    /// round is already submitted and pipelining on the pool).
    Online {
        subs: Vec<B::Sub>,
    },
    Extreme(B::Ext),
}

impl<B: PlanBackend> PendingPlan<B> {
    /// Blocks until every sub-query resolved, then assembles the plan's
    /// uniform answer.
    pub fn wait(self) -> Result<PlanAnswer> {
        self.wait_streaming(|_| {})
    }

    /// [`PendingPlan::wait`], invoking `on_snapshot` with each progressive
    /// release of an online plan *as it resolves* — the hook the server's
    /// push loop hangs its per-snapshot frames on. Non-online plans never
    /// call the hook. The returned answer is identical to [`wait`]'s
    /// (the snapshots handed to the hook, in order, are exactly
    /// [`PlanResult::Snapshots`]).
    ///
    /// [`wait`]: PendingPlan::wait
    pub fn wait_streaming(self, mut on_snapshot: impl FnMut(&PlanSnapshot)) -> Result<PlanAnswer> {
        let cost = self.cost;
        let backend = &self.backend;
        match self.kind {
            PendingKind::Online { subs } => {
                let rounds = subs.len() as u64;
                let mut snapshots = Vec::with_capacity(subs.len());
                let mut timings = PhaseTimings {
                    summary: Duration::ZERO,
                    allocation: Duration::ZERO,
                    execution: Duration::ZERO,
                    release: Duration::ZERO,
                    network: Duration::ZERO,
                };
                for (i, sub) in subs.into_iter().enumerate() {
                    let round = i as u64 + 1;
                    let outcome = backend.wait_sub(sub)?;
                    merge_timings(&mut timings, &outcome.timings);
                    let snapshot = PlanSnapshot {
                        round,
                        rounds,
                        sample_fraction: round as f64 / rounds as f64,
                        value: outcome.value,
                        ci_halfwidth: outcome.ci_halfwidth,
                        clusters_scanned: outcome.clusters_scanned,
                    };
                    on_snapshot(&snapshot);
                    snapshots.push(snapshot);
                }
                Ok(PlanAnswer {
                    result: PlanResult::Snapshots { snapshots },
                    cost,
                    timings,
                })
            }
            PendingKind::Cell(cell) => {
                let (value, ci_halfwidth, timings) = cell.wait(backend)?;
                Ok(PlanAnswer {
                    result: PlanResult::Value {
                        value,
                        ci_halfwidth,
                    },
                    cost,
                    timings,
                })
            }
            PendingKind::Groups {
                keys,
                cells,
                threshold,
            } => {
                let mut groups = Vec::with_capacity(keys.len());
                let mut suppressed = 0u64;
                let mut timings = PhaseTimings {
                    summary: Duration::ZERO,
                    allocation: Duration::ZERO,
                    execution: Duration::ZERO,
                    release: Duration::ZERO,
                    network: Duration::ZERO,
                };
                for (key, cell) in keys.into_iter().zip(cells) {
                    let (value, ci_halfwidth, cell_timings) = cell.wait(backend)?;
                    merge_timings(&mut timings, &cell_timings);
                    if value >= threshold {
                        groups.push(PlanGroup {
                            key,
                            value,
                            ci_halfwidth,
                        });
                    } else {
                        suppressed += 1;
                    }
                }
                Ok(PlanAnswer {
                    result: PlanResult::Groups { groups, suppressed },
                    cost,
                    timings,
                })
            }
            PendingKind::Extreme(pending) => {
                let extreme = backend.wait_ext(pending)?;
                Ok(PlanAnswer {
                    result: PlanResult::Extreme {
                        value: extreme.value,
                    },
                    cost,
                    timings: PhaseTimings {
                        summary: Duration::ZERO,
                        allocation: Duration::ZERO,
                        execution: extreme.execution,
                        release: Duration::ZERO,
                        network: extreme.network,
                    },
                })
            }
        }
    }
}

/// Fan-out cap on online rounds: a wire client chooses `rounds`, and each
/// round is a full sub-query, so an uncapped plan would be a resource
/// grief even when the budget ledger is unlimited (mirrors the
/// group-domain cap).
const MAX_ONLINE_ROUNDS: usize = 1024;

/// The per-round budget of an online plan: the plan's `(ε, δ)` split
/// evenly over its rounds (sequential composition — progressive samples
/// of the same data are *not* disjoint), then phase-split.
fn online_budget(
    hyperparams: HyperParams,
    epsilon: f64,
    delta: f64,
    rounds: usize,
) -> Result<QueryBudget> {
    let k = rounds as f64;
    Ok(QueryBudget::split(epsilon / k, delta / k, hyperparams)?)
}

/// The sampling rate of round `round` (1-based) of `rounds`: the terminal
/// rate scaled by `round/rounds`, clamped into the engine's valid open
/// interval. Every layer — serial wrapper, engine compilation, wire
/// server — derives round rates from this one function, which is what
/// keeps the paths byte-identical.
fn online_round_rate(sampling_rate: f64, round: usize, rounds: usize) -> f64 {
    let fraction = round as f64 / rounds as f64;
    (sampling_rate * fraction).clamp(f64::MIN_POSITIVE, 0.999)
}

/// The sub-query budget of one derived cell: the cell's `(ε, δ)` split
/// evenly over the statistic's sub-queries, then phase-split.
fn derived_budget(
    hyperparams: HyperParams,
    statistic: DerivedStatistic,
    epsilon: f64,
    delta: f64,
) -> Result<QueryBudget> {
    let n = statistic.sub_queries() as f64;
    Ok(QueryBudget::split(epsilon / n, delta / n, hyperparams)?)
}

/// The enumerated `(key, point query)` pairs of a GROUP-BY plan, ascending
/// by key.
fn compile_groups(base: &RangeQuery, group_dim: usize, keys: &[Value]) -> Result<Vec<RangeQuery>> {
    keys.iter()
        .map(|&key| {
            let mut ranges = base.ranges().to_vec();
            ranges.push(Range::new(group_dim, key, key)?);
            Ok(RangeQuery::new(base.aggregate(), ranges)?)
        })
        .collect()
}

/// The COUNT and SUM (and cost-only second moment) sub-queries of one
/// derived cell over `ranges`.
fn derived_queries(query: &RangeQuery) -> Result<(RangeQuery, RangeQuery, RangeQuery)> {
    let count = RangeQuery::new(Aggregate::Count, query.ranges().to_vec())?;
    let sum = RangeQuery::new(Aggregate::Sum, query.ranges().to_vec())?;
    let second = RangeQuery::new(Aggregate::Count, query.ranges().to_vec())?;
    Ok((count, sum, second))
}

/// The keys a GROUP-BY plan enumerates, after the domain-size guard:
/// a grouped dimension whose public domain exceeds
/// [`crate::FederationConfig::max_group_domain`] is rejected with a
/// typed error instead of iterating an enormous domain.
fn group_keys<B: PlanBackend>(backend: &B, group_dim: usize) -> Result<Vec<Value>> {
    let domain = backend.schema().dimension(group_dim)?.domain();
    let cap = backend.config().max_group_domain;
    if domain.size() > cap {
        return Err(CoreError::GroupDomainTooLarge {
            size: domain.size(),
            cap,
        });
    }
    Ok(domain.iter().collect())
}

/// Validates a plan on any backend without dispatching (or charging)
/// anything: schema, sampling rate, budget positivity, and the
/// group-domain cap. Stateless, so sessions can check a plan *before*
/// charging its [`QueryPlan::total_cost`].
pub(crate) fn validate_plan_with<B: PlanBackend>(backend: &B, plan: &QueryPlan) -> Result<()> {
    let hyperparams = backend.config().hyperparams;
    match plan {
        QueryPlan::Scalar {
            query,
            sampling_rate,
            epsilon,
            delta,
        } => {
            let budget = QueryBudget::split(*epsilon, *delta, hyperparams)?;
            backend.validate_sub(query, *sampling_rate, &budget)
        }
        QueryPlan::Derived {
            query,
            statistic,
            sampling_rate,
            epsilon,
            delta,
        } => {
            if !(epsilon.is_finite() && *epsilon > 0.0) {
                return Err(CoreError::BadConfig("derived epsilon must be positive"));
            }
            let budget = derived_budget(hyperparams, *statistic, *epsilon, *delta)?;
            backend.validate_sub(query, *sampling_rate, &budget)
        }
        QueryPlan::GroupBy {
            base,
            statistic,
            group_dim,
            sampling_rate,
            epsilon,
            delta,
            ..
        } => {
            if !(epsilon.is_finite() && *epsilon > 0.0) {
                return Err(CoreError::BadConfig("group-by epsilon must be positive"));
            }
            if base.dims().any(|d| d == *group_dim) {
                return Err(CoreError::BadConfig(
                    "filter ranges must not constrain the grouped dimension",
                ));
            }
            let keys = group_keys(backend, *group_dim)?;
            let k = keys.len() as f64;
            let budget = match statistic {
                Some(statistic) => derived_budget(hyperparams, *statistic, epsilon / k, delta / k)?,
                None => QueryBudget::split(epsilon / k, delta / k, hyperparams)?,
            };
            backend.validate_sub(base, *sampling_rate, &budget)
        }
        QueryPlan::Online {
            query,
            sampling_rate,
            epsilon,
            delta,
            rounds,
        } => {
            if *rounds == 0 {
                return Err(CoreError::BadConfig("online aggregation needs >= 1 round"));
            }
            if *rounds > MAX_ONLINE_ROUNDS {
                return Err(CoreError::BadConfig(
                    "online aggregation is capped at 1024 rounds",
                ));
            }
            if !(epsilon.is_finite() && *epsilon > 0.0) {
                return Err(CoreError::BadConfig("online epsilon must be positive"));
            }
            let budget = online_budget(hyperparams, *epsilon, *delta, *rounds)?;
            backend.validate_sub(query, *sampling_rate, &budget)
        }
        QueryPlan::Extreme { dim, epsilon, .. } => backend.validate_ext(*dim, *epsilon),
    }
}

/// Submits one derived cell (COUNT, SUM, and for VAR/STD the cost-only
/// second moment) without waiting.
fn submit_derived_cell<B: PlanBackend>(
    backend: &B,
    query: &RangeQuery,
    statistic: DerivedStatistic,
    sampling_rate: f64,
    budget: &QueryBudget,
) -> Result<CellPending<B>> {
    let (count_q, sum_q, second_q) = derived_queries(query)?;
    let count = backend.submit_sub(&count_q, sampling_rate, budget)?;
    let sum = backend.submit_sub(&sum_q, sampling_rate, budget)?;
    let second_moment = match statistic {
        DerivedStatistic::Average => None,
        DerivedStatistic::Variance | DerivedStatistic::StdDev => {
            // The second moment is *cost-only*: its released value is
            // never read (see [`crate::derived`]), and its content is
            // identical to the cell's COUNT. The dedup pass re-reads
            // the COUNT's release instead of executing a third
            // sub-query — post-processing, zero extra ξ — while the
            // plan still declares (and sessions still charge) the full
            // three-way split.
            if backend.config().optimizer.dedup_subqueries {
                obs::counter_add(obs::names::OPTIMIZER_REUSED, 1);
                Some(backend.share_sub(&count))
            } else {
                Some(backend.submit_sub(&second_q, sampling_rate, budget)?)
            }
        }
    };
    Ok(CellPending::Derived {
        statistic,
        count,
        sum,
        second_moment,
    })
}

/// Compiles `plan` on `backend` and submits **all** of its sub-queries
/// before returning. Assumes `plan` already passed
/// [`validate_plan_with`] — sessions validate, charge atomically, then
/// submit; re-validating would re-enumerate a group-by's domain for
/// nothing.
pub(crate) fn submit_plan_with<B: PlanBackend>(
    backend: &B,
    plan: &QueryPlan,
) -> Result<PendingPlan<B>> {
    obs::counter_add(obs::names::OPTIMIZER_PLANS, 1);
    let _span = obs::span("submit_plan", "optimizer", obs::SpanId::NONE);
    let hyperparams = backend.config().hyperparams;
    let (eps, delta) = plan.total_cost();
    let cost = PrivacyCost { eps, delta };
    let kind = match plan {
        QueryPlan::Scalar {
            query,
            sampling_rate,
            epsilon,
            delta,
        } => {
            let budget = QueryBudget::split(*epsilon, *delta, hyperparams)?;
            PendingKind::Cell(CellPending::Scalar(backend.submit_sub(
                query,
                *sampling_rate,
                &budget,
            )?))
        }
        QueryPlan::Derived {
            query,
            statistic,
            sampling_rate,
            epsilon,
            delta,
        } => {
            let budget = derived_budget(hyperparams, *statistic, *epsilon, *delta)?;
            PendingKind::Cell(submit_derived_cell(
                backend,
                query,
                *statistic,
                *sampling_rate,
                &budget,
            )?)
        }
        QueryPlan::GroupBy {
            base,
            statistic,
            group_dim,
            threshold,
            sampling_rate,
            epsilon,
            delta,
        } => {
            let keys = group_keys(backend, *group_dim)?;
            let k = keys.len() as f64;
            let queries = compile_groups(base, *group_dim, &keys)?;
            // Cost-ordered submission: costliest cells (by metadata-
            // estimated surviving cluster count) enter the worker pool
            // first, so the stragglers pipeline from the start. The
            // pendings land back in key-order slots — `PendingKind::
            // Groups` zips keys with cells positionally — and distinct
            // sub-queries draw content-derived noise, so the released
            // groups are byte-identical in any submission order.
            let costs: Vec<u64> = queries
                .iter()
                .map(|q| backend.snapshot().estimated_cost(q))
                .collect();
            let order = submission_order(&costs, backend.config().optimizer.reorder_subqueries);
            if order.iter().enumerate().any(|(pos, &cell)| pos != cell) {
                obs::counter_add(obs::names::OPTIMIZER_REORDERED, 1);
            }
            let mut slots: Vec<Option<CellPending<B>>> = queries.iter().map(|_| None).collect();
            match statistic {
                None => {
                    let budget = QueryBudget::split(epsilon / k, delta / k, hyperparams)?;
                    for &i in &order {
                        slots[i] = Some(CellPending::Scalar(backend.submit_sub(
                            &queries[i],
                            *sampling_rate,
                            &budget,
                        )?));
                    }
                }
                Some(statistic) => {
                    let budget = derived_budget(hyperparams, *statistic, epsilon / k, delta / k)?;
                    for &i in &order {
                        slots[i] = Some(submit_derived_cell(
                            backend,
                            &queries[i],
                            *statistic,
                            *sampling_rate,
                            &budget,
                        )?);
                    }
                }
            }
            let cells = slots
                .into_iter()
                .map(|c| c.expect("every cell submitted"))
                .collect();
            PendingKind::Groups {
                keys,
                cells,
                threshold: *threshold,
            }
        }
        QueryPlan::Online {
            query,
            sampling_rate,
            epsilon,
            delta,
            rounds,
        } => {
            let budget = online_budget(hyperparams, *epsilon, *delta, *rounds)?;
            // Every round is submitted before anything is awaited, so the
            // progressive samples pipeline across the provider pool. Each
            // round's distinct sampling rate gives it a distinct content
            // hash (an independent noise lane); rounds whose clamped rates
            // collide are disambiguated by the backend's occurrence
            // counter — exactly the scalar-query derivation, so the final
            // round is byte-identical to a standalone `Scalar` plan under
            // the same per-round budget.
            let subs = (1..=*rounds)
                .map(|r| {
                    backend.submit_sub(
                        query,
                        online_round_rate(*sampling_rate, r, *rounds),
                        &budget,
                    )
                })
                .collect::<Result<Vec<_>>>()?;
            PendingKind::Online { subs }
        }
        QueryPlan::Extreme {
            dim,
            extreme,
            epsilon,
        } => PendingKind::Extreme(backend.submit_ext(*dim, *extreme, *epsilon)?),
    };
    Ok(PendingPlan {
        backend: backend.clone(),
        kind,
        cost,
    })
}

/// `EXPLAIN` on any backend: the optimizer's decisions for `plan`,
/// computed from the plan and the backend's public metadata snapshot
/// alone — nothing is dispatched, no data is touched, and (because the
/// inputs are the analyst's own query plus already-public Algorithm 1
/// metadata) no budget is charged.
pub(crate) fn explain_plan_with<B: PlanBackend>(
    backend: &B,
    plan: &QueryPlan,
) -> Result<PlanExplanation> {
    validate_plan_with(backend, plan)?;
    let opt = backend.config().optimizer;
    let snap = backend.snapshot();
    let sub =
        |label: String, query: &RangeQuery, reuses: Option<u64>, order: u64| SubQueryExplanation {
            label,
            pruned_providers: if opt.prune_providers {
                snap.pruned_flags(query)
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &p)| p.then_some(i as u64))
                    .collect()
            } else {
                Vec::new()
            },
            estimated_cost: snap.estimated_cost(query),
            reuses,
            order,
        };
    // One cell's sub-queries: COUNT, SUM, and for VAR/STD the second
    // moment (marked as reusing the COUNT when dedup is on).
    let derived_subs = |prefix: &str,
                        query: &RangeQuery,
                        statistic: DerivedStatistic,
                        first_index: u64,
                        order: u64|
     -> Result<Vec<SubQueryExplanation>> {
        let (count_q, sum_q, second_q) = derived_queries(query)?;
        let mut subs = vec![
            sub(format!("{prefix}count"), &count_q, None, order),
            sub(format!("{prefix}sum"), &sum_q, None, order),
        ];
        if statistic.sub_queries() > 2 {
            let reuses = opt.dedup_subqueries.then_some(first_index);
            subs.push(sub(
                format!("{prefix}second-moment"),
                &second_q,
                reuses,
                order,
            ));
        }
        Ok(subs)
    };
    let (plan_kind, sub_queries) = match plan {
        QueryPlan::Scalar { query, .. } => ("scalar", vec![sub("query".into(), query, None, 0)]),
        QueryPlan::Derived {
            query, statistic, ..
        } => ("derived", derived_subs("", query, *statistic, 0, 0)?),
        QueryPlan::GroupBy {
            base,
            statistic,
            group_dim,
            ..
        } => {
            let keys = group_keys(backend, *group_dim)?;
            let queries = compile_groups(base, *group_dim, &keys)?;
            let costs: Vec<u64> = queries.iter().map(|q| snap.estimated_cost(q)).collect();
            let order = submission_order(&costs, opt.reorder_subqueries);
            // `order[pos] = cell` ⇒ cell's submission position.
            let mut position = vec![0u64; order.len()];
            for (pos, &cell) in order.iter().enumerate() {
                position[cell] = pos as u64;
            }
            let mut subs = Vec::new();
            for (cell, (key, query)) in keys.iter().zip(&queries).enumerate() {
                match statistic {
                    None => subs.push(sub(format!("group {key}"), query, None, position[cell])),
                    Some(statistic) => {
                        let first = subs.len() as u64;
                        subs.extend(derived_subs(
                            &format!("group {key} "),
                            query,
                            *statistic,
                            first,
                            position[cell],
                        )?);
                    }
                }
            }
            ("group-by", subs)
        }
        QueryPlan::Online { query, rounds, .. } => (
            "online",
            (1..=*rounds)
                .map(|r| sub(format!("round {r}/{rounds}"), query, None, r as u64 - 1))
                .collect(),
        ),
        // Extremes are answered from metadata by *every* provider's
        // Exponential-mechanism selection — pruning a provider would
        // change the released value, so the optimizer never does.
        QueryPlan::Extreme { .. } => (
            "extreme",
            vec![SubQueryExplanation {
                label: "extreme".into(),
                pruned_providers: Vec::new(),
                estimated_cost: 0,
                reuses: None,
                order: 0,
            }],
        ),
    };
    let (eps, delta) = plan.total_cost();
    Ok(PlanExplanation {
        plan_kind: plan_kind.into(),
        n_providers: backend.config().n_providers as u64,
        optimizer: opt,
        eps,
        delta,
        sub_queries,
    })
}

impl EngineHandle {
    /// Validates a plan without dispatching (or charging) anything:
    /// schema, sampling rate, budget positivity, and the group-domain cap.
    /// Stateless, so sessions can check a plan *before* charging its
    /// [`QueryPlan::total_cost`].
    pub fn validate_plan(&self, plan: &QueryPlan) -> Result<()> {
        validate_plan_with(self, plan)
    }

    /// Compiles `plan` and submits **all** of its sub-queries to the
    /// worker pool before returning — a group-by's per-group queries are
    /// in flight together, pipelining across providers, by the time the
    /// caller first waits.
    ///
    /// Validation happens up front ([`Self::validate_plan`]), so a
    /// rejected plan touches no data and costs no budget.
    pub fn submit_plan(&self, plan: &QueryPlan) -> Result<PendingPlan> {
        self.validate_plan(plan)?;
        self.submit_plan_validated(plan)
    }

    /// [`Self::submit_plan`] minus the validation pass — for callers that
    /// already ran [`Self::validate_plan`] on this exact plan (a session
    /// validates, charges atomically, then submits; re-validating would
    /// re-enumerate a group-by's domain for nothing).
    pub(crate) fn submit_plan_validated(&self, plan: &QueryPlan) -> Result<PendingPlan> {
        submit_plan_with(self, plan)
    }

    /// Submits a plan and waits it out (submit + wait).
    ///
    /// ```
    /// use fedaqp_core::{Federation, FederationConfig, QueryPlan};
    /// use fedaqp_model::{Aggregate, Dimension, Domain, Range, RangeQuery, Row, Schema};
    ///
    /// let schema = Schema::new(vec![Dimension::new("x", Domain::new(0, 99).unwrap())]).unwrap();
    /// let partitions: Vec<Vec<Row>> = (0..4)
    ///     .map(|p| (0..300).map(|i| Row::cell(vec![((i * 7 + p) % 100) as i64], 1)).collect())
    ///     .collect();
    /// let federation =
    ///     Federation::build(FederationConfig::paper_default(32), schema, partitions).unwrap();
    ///
    /// let plan = QueryPlan::Scalar {
    ///     query: RangeQuery::new(Aggregate::Count, vec![Range::new(0, 20, 70).unwrap()]).unwrap(),
    ///     sampling_rate: 0.2,
    ///     epsilon: 1.0,
    ///     delta: 1e-6,
    /// };
    /// let answer = federation.with_engine(|engine| {
    ///     // EXPLAIN first: the optimizer's pruning/dedup/ordering decisions,
    ///     // computed from public metadata alone — free, nothing dispatched.
    ///     let explanation = engine.explain_plan(&plan)?;
    ///     assert_eq!(explanation.sub_queries.len(), 1);
    ///     engine.run_plan(&plan)
    /// }).unwrap();
    /// assert!(answer.value().unwrap().is_finite());
    /// assert_eq!(answer.cost.eps, 1.0);
    /// ```
    pub fn run_plan(&self, plan: &QueryPlan) -> Result<PlanAnswer> {
        self.submit_plan(plan)?.wait()
    }

    /// `EXPLAIN`: the optimizer's decisions for `plan`, computed from the
    /// plan and the engine's public metadata snapshot alone — nothing is
    /// dispatched, no data is touched, and (because the inputs are the
    /// analyst's own query plus already-public Algorithm 1 metadata) no
    /// budget is charged. The reported pruning, reuse, and ordering are
    /// exactly what [`Self::submit_plan`] would do under the current
    /// [`crate::config::OptimizerConfig`].
    pub fn explain_plan(&self, plan: &QueryPlan) -> Result<PlanExplanation> {
        explain_plan_with(self, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use crate::federation::Federation;
    use fedaqp_model::{Dimension, Domain, Extreme, Row, Schema};

    fn federation(epsilon: f64) -> Federation {
        let schema = Schema::new(vec![
            Dimension::new("category", Domain::new(0, 4).unwrap()),
            Dimension::new("x", Domain::new(0, 99).unwrap()),
        ])
        .unwrap();
        let sizes = [2000usize, 1000, 400, 40, 0];
        let partitions: Vec<Vec<Row>> = (0..4)
            .map(|p| {
                let mut rows = Vec::new();
                for (cat, &n) in sizes.iter().enumerate() {
                    for i in 0..n / 4 {
                        rows.push(Row::cell(
                            vec![cat as i64, ((i * 7 + p) % 100) as i64],
                            1 + (i % 3) as u64,
                        ));
                    }
                }
                rows
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(64);
        cfg.cost_model = fedaqp_smc::CostModel::zero();
        cfg.n_min = 2;
        cfg.epsilon = epsilon;
        // A seed whose draw for the empty group is nonnegative, so the
        // zero-threshold release keeps all five groups.
        cfg.seed = 1;
        Federation::build(cfg, schema, partitions).unwrap()
    }

    fn base() -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(1, 0, 99).unwrap()]).unwrap()
    }

    fn group_plan(epsilon: f64, statistic: Option<DerivedStatistic>) -> QueryPlan {
        QueryPlan::GroupBy {
            base: base(),
            statistic,
            group_dim: 0,
            threshold: 0.0,
            sampling_rate: 0.3,
            epsilon,
            delta: 1e-3,
        }
    }

    fn timings(us: [u64; 5]) -> PhaseTimings {
        PhaseTimings {
            summary: Duration::from_micros(us[0]),
            allocation: Duration::from_micros(us[1]),
            execution: Duration::from_micros(us[2]),
            release: Duration::from_micros(us[3]),
            network: Duration::from_micros(us[4]),
        }
    }

    #[test]
    fn merge_timings_takes_element_wise_max() {
        // The overlap model: concurrent sub-queries cost the *slowest*
        // phase across cells, per phase independently — not the sum.
        let mut into = timings([10, 200, 3, 40, 500]);
        merge_timings(&mut into, &timings([100, 2, 30, 4, 5000]));
        assert_eq!(into, timings([100, 200, 30, 40, 5000]));
    }

    #[test]
    fn merge_timings_empty_is_identity() {
        // Merging all-zero timings leaves the accumulator unchanged, and
        // merging into a zero accumulator copies the other side — the
        // identity element of the element-wise-max monoid.
        let mut into = timings([10, 20, 30, 40, 50]);
        merge_timings(&mut into, &timings([0, 0, 0, 0, 0]));
        assert_eq!(into, timings([10, 20, 30, 40, 50]));

        let mut zero = timings([0, 0, 0, 0, 0]);
        merge_timings(&mut zero, &timings([10, 20, 30, 40, 50]));
        assert_eq!(zero, timings([10, 20, 30, 40, 50]));
    }

    #[test]
    fn merge_timings_is_commutative_and_idempotent() {
        let a = timings([7, 300, 11, 0, 90]);
        let b = timings([70, 3, 11, 80, 9]);
        let mut ab = a;
        merge_timings(&mut ab, &b);
        let mut ba = b;
        merge_timings(&mut ba, &a);
        assert_eq!(ab, ba);

        let mut aa = a;
        merge_timings(&mut aa, &a);
        assert_eq!(aa, a);
    }

    #[test]
    fn scalar_plan_matches_direct_submission() {
        let fed = federation(1.0);
        let plan = QueryPlan::Scalar {
            query: base(),
            sampling_rate: 0.3,
            epsilon: 1.0,
            delta: 1e-3,
        };
        let via_plan = fed.with_engine(|e| e.run_plan(&plan)).unwrap();
        let direct = fed
            .with_engine(|e| e.submit(&base(), 0.3).unwrap().wait())
            .unwrap();
        assert_eq!(via_plan.value().unwrap().to_bits(), direct.value.to_bits());
        assert_eq!(via_plan.cost.eps, 1.0);
    }

    #[test]
    fn group_by_plan_releases_every_group_in_key_order() {
        let fed = federation(250.0);
        let answer = fed
            .with_engine(|e| e.run_plan(&group_plan(250.0, None)))
            .unwrap();
        let groups = answer.groups().unwrap();
        assert_eq!(groups.len(), 5);
        let keys: Vec<Value> = groups.iter().map(|g| g.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
        // The big groups come out in the right order under the loose budget.
        assert!(groups[0].value > groups[1].value);
        assert!(groups[1].value > groups[2].value);
        assert!((answer.cost.eps - 250.0).abs() < 1e-9);
    }

    #[test]
    fn group_by_plan_is_deterministic_across_runs() {
        let a = federation(2.0)
            .with_engine(|e| e.run_plan(&group_plan(2.0, None)))
            .unwrap();
        let b = federation(2.0)
            .with_engine(|e| e.run_plan(&group_plan(2.0, None)))
            .unwrap();
        // Released data is byte-identical; only wall-clock timings vary.
        assert_eq!(a.result, b.result);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn grouped_average_stays_in_measure_range() {
        // Cell measures are 1..=3, so per-group averages live in [1, 3]
        // modulo noise; a huge ε pins them there.
        let fed = federation(5000.0);
        let answer = fed
            .with_engine(|e| e.run_plan(&group_plan(5000.0, Some(DerivedStatistic::Average))))
            .unwrap();
        let groups = answer.groups().unwrap();
        assert!(!groups.is_empty());
        for g in groups.iter().take(3) {
            // Only the populated groups are pinned by data.
            assert!(g.value > 0.5 && g.value < 4.0, "group {g:?}");
        }
    }

    #[test]
    fn validate_rejects_before_any_work() {
        let fed = federation(1.0);
        fed.with_engine(|e| {
            // Group dim constrained by the filter.
            let bad = QueryPlan::GroupBy {
                base: RangeQuery::new(Aggregate::Count, vec![Range::new(0, 0, 2).unwrap()])
                    .unwrap(),
                statistic: None,
                group_dim: 0,
                threshold: 0.0,
                sampling_rate: 0.3,
                epsilon: 1.0,
                delta: 1e-3,
            };
            assert!(matches!(
                e.validate_plan(&bad),
                Err(CoreError::BadConfig(_))
            ));
            // Bad sampling rate.
            let bad = QueryPlan::Scalar {
                query: base(),
                sampling_rate: 1.5,
                epsilon: 1.0,
                delta: 1e-3,
            };
            assert!(matches!(
                e.validate_plan(&bad),
                Err(CoreError::InvalidSamplingRate(_))
            ));
            // Non-positive ε.
            assert!(e.validate_plan(&group_plan(0.0, None)).is_err());
            // Unknown extreme dimension.
            let bad = QueryPlan::Extreme {
                dim: 7,
                extreme: Extreme::Max,
                epsilon: 1.0,
            };
            assert!(e.validate_plan(&bad).is_err());
        });
    }

    #[test]
    fn oversized_group_domain_is_a_typed_error() {
        let mut cfg_fed = federation(1.0);
        // Shrink the cap below the category domain (5 values).
        let plan = group_plan(1.0, None);
        let err = {
            let fed = &mut cfg_fed;
            // Rebuild with a tiny cap.
            let schema = fed.schema().clone();
            let mut cfg = fed.config().clone();
            cfg.max_group_domain = 3;
            let partitions: Vec<Vec<Row>> = fed
                .providers()
                .iter()
                .map(|p| p.store().clusters().iter().flat_map(|c| c.rows()).collect())
                .collect();
            let capped = Federation::build(cfg, schema, partitions).unwrap();
            capped.with_engine(|e| e.validate_plan(&plan)).unwrap_err()
        };
        assert!(
            matches!(err, CoreError::GroupDomainTooLarge { size: 5, cap: 3 }),
            "{err:?}"
        );
    }

    #[test]
    fn extreme_plan_runs_on_the_pool() {
        let fed = federation(1.0);
        let plan = QueryPlan::Extreme {
            dim: 1,
            extreme: Extreme::Max,
            epsilon: 100.0,
        };
        let answer = fed.with_engine(|e| e.run_plan(&plan)).unwrap();
        match answer.result {
            PlanResult::Extreme { value } => assert!((0..=99).contains(&value)),
            other => panic!("expected an extreme result, got {other:?}"),
        }
        assert_eq!(answer.cost.eps, 100.0);
        assert_eq!(answer.cost.delta, 0.0);
    }
}
