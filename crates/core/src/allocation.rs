//! The allocation optimizer (Eq. 4 / Eq. 6 of the paper).
//!
//! The aggregator maximizes `Σ Avg(R̂)_i · s_i` subject to
//! `Σ s_i = sr · Σ Ñ^Q_i` and `s_i ∈ [1, Ñ^Q_i]`. This is a fractional
//! knapsack over a box with one simplex constraint: the optimum saturates
//! providers in descending `Avg(R̂)` order, so a greedy pass is *exact* —
//! no LP solver required (the paper used OrTools; DESIGN.md records the
//! substitution).

use crate::{CoreError, Result};

/// One provider's (noisy) summary as seen by the aggregator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocationInput {
    /// `Ñ^Q` — noisy covering-cluster count (Eq. 5). May be negative after
    /// perturbation; the solver clamps it.
    pub noisy_n_q: f64,
    /// `Avg(R̂)~` — noisy average proportion (Eq. 5).
    pub noisy_avg_r: f64,
}

/// Solves Eq. 6, returning integer sample sizes (one per provider).
///
/// Steps:
/// 1. Clamp noisy counts to `≥ 1` (a provider always participates —
///    non-participation would leak the size of its data, §5.3.1).
/// 2. Budget `B = round(sr · Σ Ñ^Q_i)`, clamped to `[n, Σ caps]`.
/// 3. Give every provider the floor `s_i = 1` (the paper's `s_i > 1` open
///    bound; at least one cluster must be processed by everyone).
/// 4. Distribute the remainder greedily by descending `Avg(R̂)~`.
pub fn allocate_greedy(inputs: &[AllocationInput], sampling_rate: f64) -> Result<Vec<u64>> {
    if inputs.is_empty() {
        return Err(CoreError::NoProviders);
    }
    if !(sampling_rate.is_finite() && 0.0 < sampling_rate && sampling_rate < 1.0) {
        return Err(CoreError::InvalidSamplingRate(sampling_rate));
    }
    let caps: Vec<u64> = inputs
        .iter()
        .map(|i| {
            let c = i.noisy_n_q.round();
            if c.is_finite() && c >= 1.0 {
                c as u64
            } else {
                1
            }
        })
        .collect();
    let n = inputs.len() as u64;
    let total_cap: u64 = caps.iter().sum();
    let budget_raw = (sampling_rate * caps.iter().sum::<u64>() as f64).round() as u64;
    let budget = budget_raw.clamp(n, total_cap);

    let mut order: Vec<usize> = (0..inputs.len()).collect();
    order.sort_by(|&a, &b| {
        inputs[b]
            .noisy_avg_r
            .partial_cmp(&inputs[a].noisy_avg_r)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut alloc = vec![1u64; inputs.len()];
    let mut remaining = budget - n;
    for &i in &order {
        if remaining == 0 {
            break;
        }
        let extra = (caps[i] - 1).min(remaining);
        alloc[i] += extra;
        remaining -= extra;
    }
    Ok(alloc)
}

/// Exhaustive reference solver for tests: enumerates every integer
/// allocation with `s_i ∈ [1, cap_i]` summing to the budget and returns one
/// maximizing the objective. Exponential — test-size inputs only.
#[cfg(test)]
pub fn allocate_bruteforce(inputs: &[AllocationInput], sampling_rate: f64) -> Option<Vec<u64>> {
    let caps: Vec<u64> = inputs
        .iter()
        .map(|i| (i.noisy_n_q.round().max(1.0)) as u64)
        .collect();
    let n = inputs.len() as u64;
    let total_cap: u64 = caps.iter().sum();
    let budget = ((sampling_rate * total_cap as f64).round() as u64).clamp(n, total_cap);

    fn rec(
        caps: &[u64],
        weights: &[f64],
        idx: usize,
        left: u64,
        current: &mut Vec<u64>,
        best: &mut Option<(f64, Vec<u64>)>,
    ) {
        if idx == caps.len() {
            if left == 0 {
                let obj: f64 = current
                    .iter()
                    .zip(weights)
                    .map(|(&s, &w)| s as f64 * w)
                    .sum();
                if best.as_ref().map(|(b, _)| obj > *b).unwrap_or(true) {
                    *best = Some((obj, current.clone()));
                }
            }
            return;
        }
        let remaining_min: u64 = (caps.len() - idx - 1) as u64;
        let remaining_max: u64 = caps[idx + 1..].iter().sum();
        let lo = left.saturating_sub(remaining_max).max(1);
        let hi = caps[idx].min(left.saturating_sub(remaining_min));
        for s in lo..=hi {
            current.push(s);
            rec(caps, weights, idx + 1, left - s, current, best);
            current.pop();
        }
    }

    let weights: Vec<f64> = inputs.iter().map(|i| i.noisy_avg_r).collect();
    let mut best = None;
    rec(&caps, &weights, 0, budget, &mut Vec::new(), &mut best);
    best.map(|(_, alloc)| alloc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(n: f64, avg: f64) -> AllocationInput {
        AllocationInput {
            noisy_n_q: n,
            noisy_avg_r: avg,
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            allocate_greedy(&[], 0.2),
            Err(CoreError::NoProviders)
        ));
        let i = [input(10.0, 0.5)];
        assert!(allocate_greedy(&i, 0.0).is_err());
        assert!(allocate_greedy(&i, 1.0).is_err());
        assert!(allocate_greedy(&i, f64::NAN).is_err());
    }

    #[test]
    fn respects_budget_and_bounds() {
        let inputs = [
            input(40.0, 0.8),
            input(40.0, 0.2),
            input(40.0, 0.5),
            input(40.0, 0.1),
        ];
        let alloc = allocate_greedy(&inputs, 0.25).unwrap();
        assert_eq!(alloc.iter().sum::<u64>(), 40); // 0.25 · 160
        for (a, i) in alloc.iter().zip(&inputs) {
            assert!(*a >= 1 && *a <= i.noisy_n_q as u64);
        }
        // Heaviest provider saturates first.
        assert_eq!(alloc[0], 37); // 40 − 3 floors = 37 extras, below the 40 cap
    }

    #[test]
    fn biases_toward_heavy_providers() {
        // The provider "that holds the most data related to Q gets more
        // allocation" (§5.3.1).
        let inputs = [input(100.0, 0.9), input(100.0, 0.1)];
        let alloc = allocate_greedy(&inputs, 0.3).unwrap();
        assert!(alloc[0] > alloc[1]);
        assert_eq!(alloc.iter().sum::<u64>(), 60);
    }

    #[test]
    fn everyone_gets_at_least_one() {
        let inputs = [input(1000.0, 0.99), input(5.0, 0.0), input(5.0, 0.0)];
        let alloc = allocate_greedy(&inputs, 0.05).unwrap();
        assert!(alloc.iter().all(|&a| a >= 1));
    }

    #[test]
    fn clamps_negative_noisy_counts() {
        // Laplace noise can push Ñ^Q below zero; the solver must survive.
        let inputs = [input(-3.0, 0.4), input(20.0, 0.6)];
        let alloc = allocate_greedy(&inputs, 0.5).unwrap();
        assert!(alloc[0] >= 1);
        assert!(alloc[1] >= 1);
    }

    #[test]
    fn matches_bruteforce_objective_on_small_cases() {
        let cases: Vec<Vec<AllocationInput>> = vec![
            vec![input(4.0, 0.7), input(3.0, 0.2), input(5.0, 0.5)],
            vec![input(2.0, 0.1), input(2.0, 0.9)],
            vec![input(6.0, 0.3), input(6.0, 0.3), input(6.0, 0.3)],
            vec![
                input(3.0, 0.9),
                input(7.0, 0.8),
                input(2.0, 0.05),
                input(4.0, 0.5),
            ],
        ];
        for inputs in cases {
            for sr in [0.3, 0.5, 0.7] {
                let greedy = allocate_greedy(&inputs, sr).unwrap();
                let brute = allocate_bruteforce(&inputs, sr).expect("feasible");
                let obj = |a: &[u64]| -> f64 {
                    a.iter()
                        .zip(&inputs)
                        .map(|(&s, i)| s as f64 * i.noisy_avg_r)
                        .sum()
                };
                assert!(
                    obj(&greedy) >= obj(&brute) - 1e-9,
                    "greedy {greedy:?} (obj {}) worse than brute {brute:?} (obj {}) at sr={sr}",
                    obj(&greedy),
                    obj(&brute)
                );
                assert_eq!(
                    greedy.iter().sum::<u64>(),
                    brute.iter().sum::<u64>(),
                    "budget mismatch"
                );
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Greedy allocation always returns a feasible solution.
        #[test]
        fn always_feasible(
            raw in proptest::collection::vec((1.0f64..200.0, 0.0f64..1.0), 1..12),
            sr in 0.01f64..0.99,
        ) {
            let inputs: Vec<AllocationInput> = raw
                .iter()
                .map(|&(n, a)| AllocationInput { noisy_n_q: n, noisy_avg_r: a })
                .collect();
            let alloc = allocate_greedy(&inputs, sr).unwrap();
            prop_assert_eq!(alloc.len(), inputs.len());
            let caps: Vec<u64> = inputs.iter().map(|i| i.noisy_n_q.round().max(1.0) as u64).collect();
            let total_cap: u64 = caps.iter().sum();
            let budget = ((sr * total_cap as f64).round() as u64)
                .clamp(inputs.len() as u64, total_cap);
            prop_assert_eq!(alloc.iter().sum::<u64>(), budget);
            for (a, c) in alloc.iter().zip(&caps) {
                prop_assert!(*a >= 1 && a <= c);
            }
        }
    }
}
