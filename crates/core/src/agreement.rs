//! Cluster-size agreement (§7): before the system goes online, providers
//! must agree on a common `S` for proportion normalization.
//!
//! "Each data provider S_i can share their true S_i with the others, and
//! they will use then the maximum S_i (which will guarantee that all the
//! R's computed are ≤ 1). The value of S_i itself is not sensitive … but
//! if this is deemed sensitive in a particular case, then data providers
//! can simply share a randomly chosen S′_i such that
//! S_i ≤ S′_i ≤ S^m_i" (e.g. `S^m_i = 2·S_i`).

use rand::Rng;

use crate::{CoreError, Result};

/// How a provider publishes its cluster size for the agreement round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeDisclosure {
    /// Publish the true `S_i` (the paper's default: "usually a constant in
    /// a database system", not sensitive).
    Exact,
    /// Publish a uniformly random `S′_i ∈ [S_i, factor·S_i]` — the §7
    /// hedge for deployments that do consider `S_i` sensitive. `factor`
    /// must be ≥ 1 (the paper suggests 2).
    Randomized {
        /// Upper-bound multiplier `S^m_i = factor · S_i`.
        factor: u32,
    },
}

/// One provider's input to the agreement round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeAnnouncement {
    /// Provider id (diagnostics only).
    pub provider: usize,
    /// The published (possibly randomized) size.
    pub published_s: usize,
}

/// Publishes a provider's size according to its disclosure policy.
pub fn announce_size<R: Rng + ?Sized>(
    rng: &mut R,
    provider: usize,
    true_s: usize,
    policy: SizeDisclosure,
) -> Result<SizeAnnouncement> {
    if true_s == 0 {
        return Err(CoreError::BadConfig("cluster size must be positive"));
    }
    let published_s = match policy {
        SizeDisclosure::Exact => true_s,
        SizeDisclosure::Randomized { factor } => {
            if factor < 1 {
                return Err(CoreError::BadConfig("randomization factor must be >= 1"));
            }
            let hi = true_s.saturating_mul(factor as usize).max(true_s);
            rng.gen_range(true_s..=hi)
        }
    };
    Ok(SizeAnnouncement {
        provider,
        published_s,
    })
}

/// The agreement rule: everyone adopts the **maximum** published size, which
/// guarantees every computed proportion `R ≤ 1` (§7).
pub fn agree_on_s(announcements: &[SizeAnnouncement]) -> Result<usize> {
    announcements
        .iter()
        .map(|a| a.published_s)
        .max()
        .ok_or(CoreError::NoProviders)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_policy_publishes_truth() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = announce_size(&mut rng, 0, 500, SizeDisclosure::Exact).unwrap();
        assert_eq!(a.published_s, 500);
    }

    #[test]
    fn randomized_policy_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let a =
                announce_size(&mut rng, 1, 300, SizeDisclosure::Randomized { factor: 2 }).unwrap();
            assert!(
                a.published_s >= 300 && a.published_s <= 600,
                "{}",
                a.published_s
            );
        }
    }

    #[test]
    fn randomized_never_understates() {
        // The invariant that keeps R ≤ 1: published ≥ true.
        let mut rng = StdRng::seed_from_u64(3);
        for true_s in [1usize, 7, 1000] {
            for _ in 0..50 {
                let a = announce_size(
                    &mut rng,
                    0,
                    true_s,
                    SizeDisclosure::Randomized { factor: 3 },
                )
                .unwrap();
                assert!(a.published_s >= true_s);
            }
        }
    }

    #[test]
    fn agreement_takes_maximum() {
        let anns = vec![
            SizeAnnouncement {
                provider: 0,
                published_s: 128,
            },
            SizeAnnouncement {
                provider: 1,
                published_s: 512,
            },
            SizeAnnouncement {
                provider: 2,
                published_s: 256,
            },
        ];
        assert_eq!(agree_on_s(&anns).unwrap(), 512);
        assert!(matches!(agree_on_s(&[]), Err(CoreError::NoProviders)));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(announce_size(&mut rng, 0, 0, SizeDisclosure::Exact).is_err());
        assert!(announce_size(&mut rng, 0, 10, SizeDisclosure::Randomized { factor: 0 }).is_err());
    }

    #[test]
    fn end_to_end_agreement_round() {
        let mut rng = StdRng::seed_from_u64(5);
        let sizes = [100usize, 250, 80, 300];
        let anns: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                announce_size(&mut rng, i, s, SizeDisclosure::Randomized { factor: 2 }).unwrap()
            })
            .collect();
        let agreed = agree_on_s(&anns).unwrap();
        // Agreed S must cover every provider's true size.
        assert!(agreed >= *sizes.iter().max().unwrap());
        assert!(agreed <= 2 * sizes.iter().max().unwrap());
    }
}
