//! Protocol message and accounting types.

use std::time::Duration;

use fedaqp_model::RangeQuery;

/// Approximate wire size of a range query (protocol accounting); shared by
/// the serial runtime and the concurrent engine so both charge the same
/// simulated broadcast cost.
pub(crate) fn query_bytes(query: &RangeQuery) -> u64 {
    16 + 24 * query.ranges().len() as u64
}

/// The DP summary a provider releases for the allocation phase (Eq. 5):
/// `(Ñ^Q, Avg(R̂)~)` perturbed under `ε_O`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProviderSummary {
    /// Provider id.
    pub provider: usize,
    /// `Ñ^Q` — Laplace-perturbed covering-cluster count.
    pub noisy_n_q: f64,
    /// `Avg(R̂)~` — Laplace-perturbed average proportion.
    pub noisy_avg_r: f64,
}

/// A provider's local result for one query (protocol steps 4–6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalOutcome {
    /// Provider id.
    pub provider: usize,
    /// The DP-perturbed value, present in [`crate::ReleaseMode::LocalDp`]
    /// mode (each provider noises its own estimate).
    pub released: Option<f64>,
    /// The raw (pre-noise) estimate. In SMC mode this value exists only as
    /// secret shares outside the simulation boundary; it is carried here
    /// for the oblivious sum and for test oracles.
    pub estimate: f64,
    /// The smooth sensitivity accompanying the estimate (Alg. 3 line 6).
    pub smooth_ls: f64,
    /// Hansen–Hurwitz variance of the raw estimate (simulation-boundary
    /// diagnostic, like `estimate`). `None` when inestimable — a single
    /// draw carries no variance information; the exact path reports
    /// `Some(0.0)` (a full scan genuinely has zero sampling variance).
    pub variance: Option<f64>,
    /// Whether the provider approximated (`N^Q ≥ N_min`) or answered
    /// exactly.
    pub approximated: bool,
    /// Clusters actually scanned to produce the answer (cost proxy).
    pub clusters_scanned: usize,
    /// Size of the provider's covering set `N^Q`.
    pub n_covering: usize,
}

/// 95% confidence half-width of the federation-wide raw estimate: the
/// per-provider estimates are independent, so their variances add, and
/// [`fedaqp_sampling::hh_confidence_halfwidth`] turns the sum into the
/// half-width. `None` as soon as any provider's variance is inestimable
/// (a single draw) — an unknown term makes the whole interval unknown,
/// not zero.
pub(crate) fn combined_ci_halfwidth(outcomes: &[LocalOutcome]) -> Option<f64> {
    let total = outcomes
        .iter()
        .try_fold(0.0f64, |acc, o| o.variance.map(|v| acc + v.max(0.0)));
    fedaqp_sampling::hh_confidence_halfwidth(total)
}

/// Wall-clock/simulated time spent in each protocol phase of one query.
///
/// Compute phases are measured in real time; the network components are
/// simulated via the configured [`fedaqp_smc::CostModel`]. The paper's
/// speed-up metric divides the plain-execution total by this total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Step 1–2: metadata lookup and summary release (max across parallel
    /// providers).
    pub summary: Duration,
    /// Step 3: allocation optimization at the aggregator.
    pub allocation: Duration,
    /// Steps 4–6: sampling, scanning, estimation, sensitivity (max across
    /// parallel providers).
    pub execution: Duration,
    /// Step 6/7: release path (local noise or SMC aggregation).
    pub release: Duration,
    /// Simulated network time across all protocol rounds.
    pub network: Duration,
}

impl PhaseTimings {
    /// Total query latency.
    pub fn total(&self) -> Duration {
        self.summary + self.allocation + self.execution + self.release + self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_halfwidth_combines_or_abstains() {
        let outcome = |variance| LocalOutcome {
            provider: 0,
            released: None,
            estimate: 1.0,
            smooth_ls: 1.0,
            variance,
            approximated: true,
            clusters_scanned: 1,
            n_covering: 1,
        };
        // Variances add; half-width is 1.96·√Σ.
        let hw = combined_ci_halfwidth(&[outcome(Some(9.0)), outcome(Some(16.0))]).unwrap();
        assert!((hw - 1.96 * 5.0).abs() < 1e-12);
        // One inestimable provider poisons the whole interval.
        assert_eq!(
            combined_ci_halfwidth(&[outcome(Some(9.0)), outcome(None)]),
            None
        );
        // No providers: degenerate zero-width interval.
        assert_eq!(combined_ci_halfwidth(&[]), Some(0.0));
    }

    #[test]
    fn total_sums_phases() {
        let t = PhaseTimings {
            summary: Duration::from_millis(1),
            allocation: Duration::from_millis(2),
            execution: Duration::from_millis(3),
            release: Duration::from_millis(4),
            network: Duration::from_millis(5),
        };
        assert_eq!(t.total(), Duration::from_millis(15));
        assert_eq!(PhaseTimings::default().total(), Duration::ZERO);
    }
}
