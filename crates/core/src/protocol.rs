//! Protocol message and accounting types.

use std::time::Duration;

use fedaqp_model::RangeQuery;

/// Approximate wire size of a range query (protocol accounting); shared by
/// the serial runtime and the concurrent engine so both charge the same
/// simulated broadcast cost.
pub(crate) fn query_bytes(query: &RangeQuery) -> u64 {
    16 + 24 * query.ranges().len() as u64
}

/// The DP summary a provider releases for the allocation phase (Eq. 5):
/// `(Ñ^Q, Avg(R̂)~)` perturbed under `ε_O`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProviderSummary {
    /// Provider id.
    pub provider: usize,
    /// `Ñ^Q` — Laplace-perturbed covering-cluster count.
    pub noisy_n_q: f64,
    /// `Avg(R̂)~` — Laplace-perturbed average proportion.
    pub noisy_avg_r: f64,
}

/// A provider's local result for one query (protocol steps 4–6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalOutcome {
    /// Provider id.
    pub provider: usize,
    /// The DP-perturbed value, present in [`crate::ReleaseMode::LocalDp`]
    /// mode (each provider noises its own estimate).
    pub released: Option<f64>,
    /// The raw (pre-noise) estimate. In SMC mode this value exists only as
    /// secret shares outside the simulation boundary; it is carried here
    /// for the oblivious sum and for test oracles.
    pub estimate: f64,
    /// The smooth sensitivity accompanying the estimate (Alg. 3 line 6).
    pub smooth_ls: f64,
    /// Whether the provider approximated (`N^Q ≥ N_min`) or answered
    /// exactly.
    pub approximated: bool,
    /// Clusters actually scanned to produce the answer (cost proxy).
    pub clusters_scanned: usize,
    /// Size of the provider's covering set `N^Q`.
    pub n_covering: usize,
}

/// Wall-clock/simulated time spent in each protocol phase of one query.
///
/// Compute phases are measured in real time; the network components are
/// simulated via the configured [`fedaqp_smc::CostModel`]. The paper's
/// speed-up metric divides the plain-execution total by this total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Step 1–2: metadata lookup and summary release (max across parallel
    /// providers).
    pub summary: Duration,
    /// Step 3: allocation optimization at the aggregator.
    pub allocation: Duration,
    /// Steps 4–6: sampling, scanning, estimation, sensitivity (max across
    /// parallel providers).
    pub execution: Duration,
    /// Step 6/7: release path (local noise or SMC aggregation).
    pub release: Duration,
    /// Simulated network time across all protocol rounds.
    pub network: Duration,
}

impl PhaseTimings {
    /// Total query latency.
    pub fn total(&self) -> Duration {
        self.summary + self.allocation + self.execution + self.release + self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let t = PhaseTimings {
            summary: Duration::from_millis(1),
            allocation: Duration::from_millis(2),
            execution: Duration::from_millis(3),
            release: Duration::from_millis(4),
            network: Duration::from_millis(5),
        };
        assert_eq!(t.total(), Duration::from_millis(15));
        assert_eq!(PhaseTimings::default().total(), Duration::ZERO);
    }
}
