//! The federation runtime: end-to-end query lifecycle (Fig. 3).

use std::time::{Duration, Instant};

use fedaqp_dp::{PrivacyCost, QueryBudget};
use fedaqp_model::{RangeQuery, Row, Schema};
use fedaqp_storage::MetaSpaceReport;

use crate::aggregator::Aggregator;
use crate::config::{AllocationPolicy, FederationConfig, ReleaseMode};
use crate::engine::EngineHandle;
use crate::protocol::{combined_ci_halfwidth, query_bytes, LocalOutcome, PhaseTimings};
use crate::provider::DataProvider;
use crate::{CoreError, Result};

/// The answer to one federated query.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The DP-released answer returned to the analyst.
    pub value: f64,
    /// The exact (plain-text) answer — computed outside the timed path as
    /// the experiment oracle, never released.
    pub exact: u64,
    /// `|answer − estimation| / answer` (§6.1); `|estimation|` when the
    /// exact answer is zero.
    pub relative_error: f64,
    /// Per-phase latency breakdown.
    pub timings: PhaseTimings,
    /// Total clusters scanned across providers (work proxy).
    pub clusters_scanned: usize,
    /// Total covering-set size across providers (`Σ N^Q_i`).
    pub covering_total: usize,
    /// How many providers took the approximate path.
    pub approximated_providers: usize,
    /// The `(ε, δ)` charged for this query.
    pub cost: PrivacyCost,
    /// The per-provider sample-size allocations the aggregator computed.
    pub allocations: Vec<u64>,
    /// Σ of the providers' raw (pre-noise) estimates — a simulation-
    /// boundary diagnostic used by the Fig. 8 noise-range experiment;
    /// never released to the analyst.
    pub raw_estimate: f64,
    /// Per-provider smooth sensitivities (simulation-boundary diagnostic:
    /// the scale of each provider's release noise is `2·S_LS/ε_E`).
    pub smooth_ls: Vec<f64>,
    /// 95% confidence half-width of `raw_estimate` from the providers'
    /// Hansen–Hurwitz variances (sampling error only, noise excluded).
    /// `None` when any provider's variance was inestimable (single draw).
    pub ci_halfwidth: Option<f64>,
}

/// The answer and latency of a plain (non-private, non-approximate)
/// federated execution — the baseline of the speed-up metric.
#[derive(Debug, Clone, Copy)]
pub struct PlainAnswer {
    /// The exact aggregate.
    pub value: u64,
    /// Wall-clock latency (parallel scans) plus simulated network rounds.
    pub duration: Duration,
}

/// A running federation: `n` providers plus the aggregator.
#[derive(Debug)]
pub struct Federation {
    config: FederationConfig,
    schema: Schema,
    providers: Vec<DataProvider>,
    aggregator: Aggregator,
}

impl Federation {
    /// Builds the federation from per-provider horizontal partitions
    /// (offline phase: clustering + Algorithm 1 metadata per provider).
    pub fn build(
        config: FederationConfig,
        schema: Schema,
        partitions: Vec<Vec<Row>>,
    ) -> Result<Self> {
        config.validate()?;
        if partitions.len() != config.n_providers {
            return Err(CoreError::PartitionMismatch {
                partitions: partitions.len(),
                providers: config.n_providers,
            });
        }
        let mut providers = Vec::with_capacity(partitions.len());
        for (id, rows) in partitions.into_iter().enumerate() {
            providers.push(DataProvider::build(id, schema.clone(), rows, &config)?);
        }
        let aggregator = Aggregator::new(config.seed, config.cost_model);
        Ok(Self {
            config,
            schema,
            providers,
            aggregator,
        })
    }

    /// The federation's configuration.
    #[inline]
    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// The public table schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The data providers (read access for diagnostics/experiments).
    #[inline]
    pub fn providers(&self) -> &[DataProvider] {
        &self.providers
    }

    /// Exact plain-text answer over the union of partitions (oracle).
    pub fn exact(&self, query: &RangeQuery) -> u64 {
        self.providers.iter().map(|p| p.exact_answer(query)).sum()
    }

    /// Whether `query` would trigger approximation on **every** provider
    /// (`N^Q ≥ N_min` for all) — the §6.1 workload filter.
    pub fn triggers_approximation(&self, query: &RangeQuery) -> bool {
        self.providers
            .iter()
            .all(|p| p.prepare(query).n_q() >= p.n_min())
    }

    /// The `(ε, δ)` a query run under the default budget costs the analyst.
    pub fn default_query_cost(&self) -> Result<PrivacyCost> {
        Ok(self.default_budget()?.cost())
    }

    /// The default per-query budget from the configuration.
    pub fn default_budget(&self) -> Result<QueryBudget> {
        self.config.query_budget()
    }

    /// Mutable provider access for the streaming-ingest layer
    /// ([`crate::stream::LiveFederation`]).
    pub(crate) fn providers_mut(&mut self) -> &mut [DataProvider] {
        &mut self.providers
    }

    /// Re-salts the noise seed (and the aggregator derived from it) — the
    /// streaming layer calls this once per accepted ingest batch so no RNG
    /// lane is ever replayed against two different data versions (a
    /// differencing attack would otherwise subtract identical noise).
    pub(crate) fn set_seed(&mut self, seed: u64) {
        self.config.seed = seed;
        self.aggregator = Aggregator::new(seed, self.config.cost_model);
    }

    /// Decomposes the federation so the engine can move each provider onto
    /// its own worker thread.
    pub(crate) fn into_parts(self) -> (FederationConfig, Schema, Vec<DataProvider>) {
        (self.config, self.schema, self.providers)
    }

    /// Reassembles a federation from parts handed back by the engine
    /// (`providers` must be in id order; the aggregator is rebuilt from the
    /// configured seed exactly as [`Federation::build`] does).
    pub(crate) fn from_parts(
        config: FederationConfig,
        schema: Schema,
        providers: Vec<DataProvider>,
    ) -> Self {
        let aggregator = Aggregator::new(config.seed, config.cost_model);
        Self {
            config,
            schema,
            providers,
            aggregator,
        }
    }

    /// Runs `f` against a temporary concurrent engine whose worker pool
    /// borrows this federation's providers (one worker thread per provider,
    /// alive for the whole closure). This is the cheap way to get pooled
    /// execution — including the plain baseline on the *same* threads as
    /// the private path — without giving up ownership of the federation;
    /// for a long-lived service use [`crate::engine::FederationEngine`].
    pub fn with_engine<R>(&self, f: impl FnOnce(&EngineHandle) -> R) -> R {
        let snapshot = crate::optimizer::MetaSnapshot::from_providers(&self.providers);
        let shadows = self.providers.iter().map(DataProvider::shadow).collect();
        let (handle, receivers) =
            crate::engine::pool_channels(&self.config, &self.schema, snapshot, shadows);
        std::thread::scope(|scope| {
            for (provider, rx) in self.providers.iter().zip(receivers) {
                scope.spawn(move || crate::engine::worker_loop(provider, rx));
            }
            // Close the pool when the closure returns *or unwinds*: the
            // scoped workers block in `recv()` until every sender is gone,
            // and `thread::scope` joins them before re-raising a panic —
            // without the drop guard, a panic inside `f` would deadlock
            // the process instead of propagating. Handle clones that
            // outlive the closure turn into errors rather than hangs.
            struct CloseOnDrop<'a>(&'a EngineHandle);
            impl Drop for CloseOnDrop<'_> {
                fn drop(&mut self) {
                    self.0.close();
                }
            }
            let guard = CloseOnDrop(&handle);
            f(guard.0)
        })
    }

    /// Runs one query under the configured default budget.
    pub fn run(&mut self, query: &RangeQuery, sampling_rate: f64) -> Result<QueryAnswer> {
        let budget = self.default_budget()?;
        self.run_with_budget(query, sampling_rate, &budget)
    }

    /// Runs one query with provider phases executed on OS threads.
    ///
    /// Functionally identical to [`Federation::run`]; phase timings are the
    /// wall-clock time of the parallel sections (thread-spawn overhead
    /// included), so prefer `run` for *measuring* speed-ups at small scales
    /// and `run_concurrent` for *throughput* on large partitions.
    pub fn run_concurrent(
        &mut self,
        query: &RangeQuery,
        sampling_rate: f64,
    ) -> Result<QueryAnswer> {
        let budget = self.default_budget()?;
        self.run_query_inner(query, sampling_rate, &budget, true, true)
    }

    /// Runs one query under an explicit per-query budget (the analyst's
    /// accountant charges `budget.cost()`; by parallel composition across
    /// providers that is the federation-wide cost, §5.4).
    pub fn run_with_budget(
        &mut self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
    ) -> Result<QueryAnswer> {
        self.run_query_inner(query, sampling_rate, budget, false, true)
    }

    /// [`Federation::run_with_budget`] without the exact-answer oracle:
    /// `exact` is 0 and `relative_error` is `NaN` in the returned answer.
    ///
    /// The oracle is a full plain scan of every provider — experiment
    /// instrumentation, not part of the protocol — so benchmarks that
    /// measure the *serving* cost of the serial runtime (e.g. the
    /// `throughput` experiment's baseline) must use this path or the
    /// serial side would be charged work the engine never does.
    pub fn run_protocol_only(
        &mut self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
    ) -> Result<QueryAnswer> {
        self.run_query_inner(query, sampling_rate, budget, false, false)
    }

    fn run_query_inner(
        &mut self,
        query: &RangeQuery,
        sampling_rate: f64,
        budget: &QueryBudget,
        concurrent: bool,
        with_oracle: bool,
    ) -> Result<QueryAnswer> {
        if !(sampling_rate.is_finite() && 0.0 < sampling_rate && sampling_rate < 1.0) {
            return Err(CoreError::InvalidSamplingRate(sampling_rate));
        }
        query.check_schema(&self.schema)?;
        let cost_model = self.config.cost_model;
        let mode = self.config.release_mode;
        let eps_o = budget.eps_o;

        // ---- Steps 1–2: prepare + DP summaries ----
        // Providers run on dedicated servers in parallel (§6.1). The
        // default path executes them serially and charges the phase the
        // slowest provider's time (measurement free of thread-spawn
        // overhead at laptop scales); the concurrent path uses real
        // threads and charges wall time.
        let mut summary_time = Duration::ZERO;
        let mut prepared = Vec::with_capacity(self.providers.len());
        let mut summaries = Vec::with_capacity(self.providers.len());
        if concurrent {
            let t = Instant::now();
            let results: Vec<Result<(crate::provider::PreparedQuery, _)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .providers
                        .iter_mut()
                        .map(|p| {
                            scope.spawn(move || {
                                let prep = p.prepare(query);
                                let summary = p.summary(query, &prep, eps_o)?;
                                Ok((prep, summary))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("provider thread panicked"))
                        .collect()
                });
            summary_time = t.elapsed();
            for r in results {
                let (prep, summary) = r?;
                prepared.push(prep);
                summaries.push(summary);
            }
        } else {
            for p in self.providers.iter_mut() {
                let t = Instant::now();
                let prep = p.prepare(query);
                let summary = p.summary(query, &prep, eps_o)?;
                summary_time = summary_time.max(t.elapsed());
                prepared.push(prep);
                summaries.push(summary);
            }
        }

        // ---- Step 3: allocation at the aggregator ----
        let t = Instant::now();
        let allocations = match self.config.allocation_policy {
            AllocationPolicy::Optimized => self.aggregator.allocate(&summaries, sampling_rate)?,
            AllocationPolicy::LocalUniform => self
                .aggregator
                .allocate_local_uniform(&summaries, sampling_rate)?,
        };
        let allocation_time = t.elapsed();

        // ---- Steps 4–6: local execution (parallel servers; see above) ----
        let release_local = mode == ReleaseMode::LocalDp;
        let mut execution_time = Duration::ZERO;
        let mut outcomes: Vec<LocalOutcome> = Vec::with_capacity(self.providers.len());
        if concurrent {
            let t = Instant::now();
            let results: Vec<Result<LocalOutcome>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .providers
                    .iter_mut()
                    .zip(prepared.iter().zip(&allocations))
                    .map(|(p, (prep, &alloc))| {
                        scope.spawn(move || p.execute(query, prep, alloc, budget, release_local))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("provider thread panicked"))
                    .collect()
            });
            execution_time = t.elapsed();
            for r in results {
                outcomes.push(r?);
            }
        } else {
            for (p, (prep, &alloc)) in self
                .providers
                .iter_mut()
                .zip(prepared.iter().zip(&allocations))
            {
                let t = Instant::now();
                let outcome = p.execute(query, prep, alloc, budget, release_local)?;
                execution_time = execution_time.max(t.elapsed());
                outcomes.push(outcome);
            }
        }

        // ---- Step 6/7: release ----
        let t = Instant::now();
        let (value, smc_network) = match mode {
            ReleaseMode::LocalDp => (self.aggregator.finalize_local(&outcomes)?, Duration::ZERO),
            ReleaseMode::Smc => {
                let (v, d) = self.aggregator.finalize_smc(&outcomes, budget.eps_e)?;
                (v, d)
            }
        };
        let release_time = t.elapsed();

        // ---- Simulated network: broadcast, summaries, allocations, and
        // (in local-DP mode) the result round; the SMC path accounts its own
        // rounds in `smc_network`. ----
        let mut network = cost_model.round_time(query_bytes(query))
            + cost_model.round_time(16)
            + cost_model.round_time(8);
        network += match mode {
            ReleaseMode::LocalDp => cost_model.round_time(16),
            ReleaseMode::Smc => smc_network,
        };

        let (exact, relative_error) = if with_oracle {
            let exact = self.exact(query);
            let relative_error = if exact == 0 {
                value.abs()
            } else {
                (exact as f64 - value).abs() / exact as f64
            };
            (exact, relative_error)
        } else {
            (0, f64::NAN)
        };
        Ok(QueryAnswer {
            value,
            exact,
            relative_error,
            timings: PhaseTimings {
                summary: summary_time,
                allocation: allocation_time,
                execution: execution_time,
                release: release_time,
                network,
            },
            clusters_scanned: outcomes.iter().map(|o| o.clusters_scanned).sum(),
            covering_total: outcomes.iter().map(|o| o.n_covering).sum(),
            approximated_providers: outcomes.iter().filter(|o| o.approximated).count(),
            cost: budget.cost(),
            allocations,
            raw_estimate: outcomes.iter().map(|o| o.estimate).sum(),
            smooth_ls: outcomes.iter().map(|o| o.smooth_ls).collect(),
            ci_halfwidth: combined_ci_halfwidth(&outcomes),
        })
    }

    /// Plain federated execution: every provider scans its full partition
    /// (in parallel) and the exact sum is returned — the "normal
    /// computation" baseline of the speed-up metric (§6.1).
    pub fn run_plain(&self, query: &RangeQuery) -> Result<PlainAnswer> {
        query.check_schema(&self.schema)?;
        // Parallel-server model: the phase costs the slowest provider.
        let mut scan_time = Duration::ZERO;
        let mut partials: Vec<u64> = Vec::with_capacity(self.providers.len());
        for p in &self.providers {
            let t = Instant::now();
            partials.push(p.exact_answer(query));
            scan_time = scan_time.max(t.elapsed());
        }
        let network = self.config.cost_model.round_time(query_bytes(query))
            + self.config.cost_model.round_time(16);
        Ok(PlainAnswer {
            value: partials.iter().sum(),
            duration: scan_time + network,
        })
    }

    /// Per-provider encoded-metadata footprints (§6.1 space report).
    pub fn meta_space(&self) -> Vec<MetaSpaceReport> {
        self.providers.iter().map(|p| p.meta_space()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedaqp_model::{Aggregate, Dimension, Domain, Range};
    use fedaqp_smc::CostModel;

    fn schema() -> Schema {
        Schema::new(vec![
            Dimension::new("x", Domain::new(0, 999).unwrap()),
            Dimension::new("y", Domain::new(0, 99).unwrap()),
        ])
        .unwrap()
    }

    fn partitions(rows_per: usize, n: usize) -> Vec<Vec<Row>> {
        (0..n)
            .map(|p| {
                (0..rows_per)
                    .map(|i| {
                        let v = (i * 7 + p * 13) % 1000;
                        Row::cell(vec![v as i64, ((i + p) % 100) as i64], 1 + (i % 3) as u64)
                    })
                    .collect()
            })
            .collect()
    }

    fn config(capacity: usize) -> FederationConfig {
        let mut cfg = FederationConfig::paper_default(capacity);
        cfg.cost_model = CostModel::zero();
        cfg.n_min = 3;
        cfg
    }

    fn count_query(lo: i64, hi: i64) -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(0, lo, hi).unwrap()]).unwrap()
    }

    #[test]
    fn build_validates_partition_count() {
        let err = Federation::build(config(50), schema(), partitions(100, 2)).unwrap_err();
        assert!(matches!(
            err,
            CoreError::PartitionMismatch {
                partitions: 2,
                providers: 4
            }
        ));
    }

    #[test]
    fn plain_execution_is_exact() {
        let fed = Federation::build(config(50), schema(), partitions(1000, 4)).unwrap();
        let q = count_query(100, 700);
        let plain = fed.run_plain(&q).unwrap();
        assert_eq!(plain.value, fed.exact(&q));
    }

    #[test]
    fn run_rejects_bad_sampling_rate() {
        let mut fed = Federation::build(config(50), schema(), partitions(200, 4)).unwrap();
        let q = count_query(0, 999);
        assert!(matches!(
            fed.run(&q, 0.0),
            Err(CoreError::InvalidSamplingRate(_))
        ));
        assert!(matches!(
            fed.run(&q, 1.0),
            Err(CoreError::InvalidSamplingRate(_))
        ));
    }

    #[test]
    fn answer_fields_are_consistent() {
        let mut fed = Federation::build(config(50), schema(), partitions(2000, 4)).unwrap();
        let q = count_query(100, 800);
        let ans = fed.run(&q, 0.2).unwrap();
        assert_eq!(ans.exact, fed.exact(&q));
        assert!(ans.value.is_finite());
        assert!(ans.relative_error >= 0.0);
        assert_eq!(ans.allocations.len(), 4);
        assert!(ans.clusters_scanned > 0);
        assert!(ans.covering_total >= ans.clusters_scanned);
        assert!((ans.cost.eps - 1.0).abs() < 1e-9);
        assert_eq!(ans.cost.delta, 1e-3);
    }

    #[test]
    fn approximation_scans_fewer_clusters_than_covering() {
        let mut fed = Federation::build(config(50), schema(), partitions(5000, 4)).unwrap();
        let q = count_query(0, 999);
        let ans = fed.run(&q, 0.1).unwrap();
        assert_eq!(ans.approximated_providers, 4);
        assert!(
            (ans.clusters_scanned as f64) < 0.5 * ans.covering_total as f64,
            "scanned {} of {}",
            ans.clusters_scanned,
            ans.covering_total
        );
    }

    #[test]
    fn loose_budget_gives_accurate_answers() {
        // With ε = 100 and 20% sampling the answer should land within ~20%
        // of the truth on this well-mixed data.
        let mut cfg = config(50);
        cfg.epsilon = 100.0;
        let mut fed = Federation::build(cfg, schema(), partitions(5000, 4)).unwrap();
        let q = count_query(0, 999);
        let ans = fed.run(&q, 0.2).unwrap();
        assert!(
            ans.relative_error < 0.2,
            "relative error {} too large",
            ans.relative_error
        );
    }

    #[test]
    fn smc_mode_releases_single_noise() {
        let mut cfg = config(50);
        cfg.release_mode = ReleaseMode::Smc;
        cfg.epsilon = 100.0;
        let mut fed = Federation::build(cfg, schema(), partitions(5000, 4)).unwrap();
        let q = count_query(0, 999);
        let ans = fed.run(&q, 0.2).unwrap();
        assert!(ans.value.is_finite());
        assert!(ans.relative_error < 0.2, "err {}", ans.relative_error);
    }

    #[test]
    fn small_covering_sets_take_exact_path() {
        let mut cfg = config(50);
        cfg.n_min = 10_000; // force the exact path everywhere
        cfg.epsilon = 50.0;
        let mut fed = Federation::build(cfg, schema(), partitions(2000, 4)).unwrap();
        let q = count_query(100, 900);
        let ans = fed.run(&q, 0.2).unwrap();
        assert_eq!(ans.approximated_providers, 0);
        // Exact path + loose budget ⇒ tiny error.
        assert!(ans.relative_error < 0.05, "err {}", ans.relative_error);
        assert!(!fed.triggers_approximation(&q));
    }

    #[test]
    fn meta_space_covers_all_providers() {
        let fed = Federation::build(config(50), schema(), partitions(500, 4)).unwrap();
        let reports = fed.meta_space();
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(|r| r.total_bytes > 0));
    }

    #[test]
    fn concurrent_path_matches_serial_semantics() {
        let q = count_query(100, 800);
        let mut serial = Federation::build(config(50), schema(), partitions(2000, 4)).unwrap();
        let mut threaded = Federation::build(config(50), schema(), partitions(2000, 4)).unwrap();
        let a = serial.run(&q, 0.2).unwrap();
        let b = threaded.run_concurrent(&q, 0.2).unwrap();
        // Same seeds, same providers, same protocol: identical released
        // values regardless of the execution strategy.
        assert_eq!(a.value, b.value);
        assert_eq!(a.allocations, b.allocations);
        assert_eq!(a.exact, b.exact);
    }

    #[test]
    fn default_cost_matches_config() {
        let fed = Federation::build(config(50), schema(), partitions(100, 4)).unwrap();
        let c = fed.default_query_cost().unwrap();
        assert!((c.eps - 1.0).abs() < 1e-9);
        assert_eq!(c.delta, 1e-3);
    }
}
