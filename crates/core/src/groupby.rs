//! Private GROUP-BY (extension; §7).
//!
//! The paper defers GROUP-BY: "integrating such clauses in the SQL query
//! is not so trivial, and adding noise to the final result will not be
//! enough to guarantee privacy", citing Desfontaines et al.'s partition
//! selection. This module implements the *known-domain* variant: the group
//! dimension's domain is public (it is part of the public schema), so the
//! system can enumerate every group, answer one private point query per
//! group, and — as a utility, not privacy, measure — suppress groups whose
//! noisy counts fall below a significance threshold, mirroring the
//! thresholding of partition selection.
//!
//! **Budget.** Group queries are *not* disjoint under this pipeline (a
//! cluster's metadata, and hence every group's summary/sampling mechanisms,
//! depends on all rows in the cluster), so parallel composition does not
//! apply; the caller's `(ε, δ)` is split across groups by sequential
//! composition. Practical for the small categorical domains GROUP-BY is
//! typically used on — and guarded: domains above
//! [`crate::FederationConfig::max_group_domain`] are rejected with
//! [`crate::CoreError::GroupDomainTooLarge`].
//!
//! **Execution.** [`run_group_by`] compiles to a
//! [`fedaqp_model::QueryPlan::GroupBy`] executed on a scoped concurrent
//! engine (see [`crate::plan`]): the `k` per-group point queries are all
//! in flight on the provider worker pool before the first answer is
//! awaited, so a group-by costs roughly one query's wall time instead of
//! `k` — while remaining byte-identical to the same plan submitted over
//! the wire.

use fedaqp_dp::PrivacyCost;
use fedaqp_model::{QueryPlan, Range, RangeQuery, Value};

use crate::federation::Federation;
use crate::plan::PlanResult;
use crate::Result;

/// One released group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Group {
    /// The group key (a value of the grouped dimension).
    pub key: Value,
    /// The noisy aggregate for the group.
    pub value: f64,
    /// The exact aggregate (experiment oracle).
    pub exact: u64,
}

/// The result of a GROUP-BY query.
#[derive(Debug, Clone)]
pub struct GroupByAnswer {
    /// Released groups (noisy value ≥ threshold), ascending by key.
    pub groups: Vec<Group>,
    /// Number of groups suppressed by the significance threshold.
    pub suppressed: usize,
    /// The total privacy cost charged.
    pub cost: PrivacyCost,
    /// The per-group budget used.
    pub per_group_epsilon: f64,
}

/// Runs `SELECT group_dim, AGG(..) … GROUP BY group_dim` under a total
/// `(epsilon, delta)`, with `base` supplying the aggregate and the filter
/// ranges (which must not constrain `group_dim`).
///
/// `threshold` suppresses groups whose noisy value falls below it; pass
/// `0.0` to release every group. A common choice is `2/ε_group` (≈ two
/// noise standard deviations).
pub fn run_group_by(
    federation: &mut Federation,
    base: &RangeQuery,
    group_dim: usize,
    sampling_rate: f64,
    epsilon: f64,
    delta: f64,
    threshold: f64,
) -> Result<GroupByAnswer> {
    let plan = QueryPlan::GroupBy {
        base: base.clone(),
        statistic: None,
        group_dim,
        threshold,
        sampling_rate,
        epsilon,
        delta,
    };
    let answer = federation.with_engine(|engine| engine.run_plan(&plan))?;
    let PlanResult::Groups { groups, suppressed } = answer.result else {
        unreachable!("group-by plans produce group results");
    };
    let k = federation.schema().dimension(group_dim)?.domain().size();
    let groups = groups
        .into_iter()
        .map(|g| {
            let mut ranges = base.ranges().to_vec();
            ranges.push(Range::new(group_dim, g.key, g.key)?);
            let point = RangeQuery::new(base.aggregate(), ranges)?;
            Ok(Group {
                key: g.key,
                value: g.value,
                exact: federation.exact(&point),
            })
        })
        .collect::<Result<Vec<Group>>>()?;
    Ok(GroupByAnswer {
        groups,
        suppressed: suppressed as usize,
        cost: answer.cost,
        per_group_epsilon: epsilon / k as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use crate::CoreError;
    use fedaqp_model::{Aggregate, Dimension, Domain, Row, Schema};

    fn federation() -> Federation {
        let schema = Schema::new(vec![
            Dimension::new("category", Domain::new(0, 4).unwrap()),
            Dimension::new("x", Domain::new(0, 99).unwrap()),
        ])
        .unwrap();
        // Category populations: 0 → 2000, 1 → 1000, 2 → 400, 3 → 40, 4 → 0.
        let sizes = [2000usize, 1000, 400, 40, 0];
        let partitions: Vec<Vec<Row>> = (0..4)
            .map(|p| {
                let mut rows = Vec::new();
                for (cat, &n) in sizes.iter().enumerate() {
                    for i in 0..n / 4 {
                        rows.push(Row::cell(vec![cat as i64, ((i * 7 + p) % 100) as i64], 1));
                    }
                }
                rows
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(64);
        cfg.cost_model = fedaqp_smc::CostModel::zero();
        cfg.n_min = 2;
        // A seed whose draw for the empty group is nonnegative, so the
        // zero-threshold release keeps all five groups.
        cfg.seed = 1;
        Federation::build(cfg, schema, partitions).unwrap()
    }

    fn base() -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(1, 0, 99).unwrap()]).unwrap()
    }

    #[test]
    fn recovers_group_ordering_under_loose_budget() {
        let mut fed = federation();
        let ans = run_group_by(&mut fed, &base(), 0, 0.3, 250.0, 1e-3, 0.0).unwrap();
        assert_eq!(ans.groups.len(), 5);
        // The big groups come out in the right order.
        let by_key: Vec<f64> = ans.groups.iter().map(|g| g.value).collect();
        assert!(by_key[0] > by_key[1]);
        assert!(by_key[1] > by_key[2]);
        assert!(by_key[2] > by_key[3]);
        // Exact oracle matches the construction.
        assert_eq!(ans.groups[0].exact, 2000);
        assert_eq!(ans.groups[4].exact, 0);
    }

    #[test]
    fn threshold_suppresses_small_groups() {
        let mut fed = federation();
        let ans = run_group_by(&mut fed, &base(), 0, 0.3, 250.0, 1e-3, 150.0).unwrap();
        // Groups 3 (40 rows) and 4 (0 rows) fall under the threshold
        // (modulo noise); at minimum the empty group must vanish.
        assert!(ans.suppressed >= 1, "nothing suppressed");
        assert!(ans.groups.iter().all(|g| g.value >= 150.0));
    }

    #[test]
    fn cost_is_total_epsilon_and_split_evenly() {
        let mut fed = federation();
        let ans = run_group_by(&mut fed, &base(), 0, 0.3, 2.0, 1e-3, 0.0).unwrap();
        assert!((ans.cost.eps - 2.0).abs() < 1e-12);
        assert!((ans.per_group_epsilon - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rejects_group_dim_in_filter() {
        let mut fed = federation();
        let bad = RangeQuery::new(Aggregate::Count, vec![Range::new(0, 0, 2).unwrap()]).unwrap();
        assert!(matches!(
            run_group_by(&mut fed, &bad, 0, 0.3, 1.0, 1e-3, 0.0),
            Err(CoreError::BadConfig(_))
        ));
        assert!(run_group_by(&mut fed, &base(), 0, 0.3, 0.0, 1e-3, 0.0).is_err());
        assert!(run_group_by(&mut fed, &base(), 9, 0.3, 1.0, 1e-3, 0.0).is_err());
    }

    #[test]
    fn rejects_oversized_group_domains() {
        let base_fed = federation();
        let mut cfg = base_fed.config().clone();
        cfg.max_group_domain = 4; // category has 5 values
        let partitions: Vec<Vec<Row>> = base_fed
            .providers()
            .iter()
            .map(|p| p.store().clusters().iter().flat_map(|c| c.rows()).collect())
            .collect();
        let mut fed = Federation::build(cfg, base_fed.schema().clone(), partitions).unwrap();
        let err = run_group_by(&mut fed, &base(), 0, 0.3, 1.0, 1e-3, 0.0).unwrap_err();
        assert!(
            matches!(err, CoreError::GroupDomainTooLarge { size: 5, cap: 4 }),
            "{err:?}"
        );
    }

    #[test]
    fn groups_ascend_by_key() {
        let mut fed = federation();
        let ans = run_group_by(&mut fed, &base(), 0, 0.3, 50.0, 1e-3, 0.0).unwrap();
        let keys: Vec<Value> = ans.groups.iter().map(|g| g.key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
