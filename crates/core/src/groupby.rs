//! Private GROUP-BY (extension; §7).
//!
//! The paper defers GROUP-BY: "integrating such clauses in the SQL query
//! is not so trivial, and adding noise to the final result will not be
//! enough to guarantee privacy", citing Desfontaines et al.'s partition
//! selection. This module implements the *known-domain* variant: the group
//! dimension's domain is public (it is part of the public schema), so the
//! system can enumerate every group, answer one private point query per
//! group, and — as a utility, not privacy, measure — suppress groups whose
//! noisy counts fall below a significance threshold, mirroring the
//! thresholding of partition selection.
//!
//! **Budget.** Group queries are *not* disjoint under this pipeline (a
//! cluster's metadata, and hence every group's summary/sampling mechanisms,
//! depends on all rows in the cluster), so parallel composition does not
//! apply; the caller's `(ε, δ)` is split across groups by sequential
//! composition. Practical for the small categorical domains GROUP-BY is
//! typically used on.

use fedaqp_dp::{PrivacyCost, QueryBudget};
use fedaqp_model::{Range, RangeQuery, Value};

use crate::federation::Federation;
use crate::{CoreError, Result};

/// One released group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Group {
    /// The group key (a value of the grouped dimension).
    pub key: Value,
    /// The noisy aggregate for the group.
    pub value: f64,
    /// The exact aggregate (experiment oracle).
    pub exact: u64,
}

/// The result of a GROUP-BY query.
#[derive(Debug, Clone)]
pub struct GroupByAnswer {
    /// Released groups (noisy value ≥ threshold), ascending by key.
    pub groups: Vec<Group>,
    /// Number of groups suppressed by the significance threshold.
    pub suppressed: usize,
    /// The total privacy cost charged.
    pub cost: PrivacyCost,
    /// The per-group budget used.
    pub per_group_epsilon: f64,
}

/// Runs `SELECT group_dim, AGG(..) … GROUP BY group_dim` under a total
/// `(epsilon, delta)`, with `base` supplying the aggregate and the filter
/// ranges (which must not constrain `group_dim`).
///
/// `threshold` suppresses groups whose noisy value falls below it; pass
/// `0.0` to release every group. A common choice is `2/ε_group` (≈ two
/// noise standard deviations).
pub fn run_group_by(
    federation: &mut Federation,
    base: &RangeQuery,
    group_dim: usize,
    sampling_rate: f64,
    epsilon: f64,
    delta: f64,
    threshold: f64,
) -> Result<GroupByAnswer> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(CoreError::BadConfig("group-by epsilon must be positive"));
    }
    if base.dims().any(|d| d == group_dim) {
        return Err(CoreError::BadConfig(
            "filter ranges must not constrain the grouped dimension",
        ));
    }
    let domain = federation.schema().dimension(group_dim)?.domain();
    let k = domain.size();
    let per_eps = epsilon / k as f64;
    let per_delta = delta / k as f64;
    let hp = federation.config().hyperparams;
    let budget = QueryBudget::split(per_eps, per_delta, hp)?;

    let mut groups = Vec::new();
    let mut suppressed = 0usize;
    for key in domain.iter() {
        let mut ranges = base.ranges().to_vec();
        ranges.push(Range::new(group_dim, key, key)?);
        let query = RangeQuery::new(base.aggregate(), ranges)?;
        let ans = federation.run_with_budget(&query, sampling_rate, &budget)?;
        if ans.value >= threshold {
            groups.push(Group {
                key,
                value: ans.value,
                exact: ans.exact,
            });
        } else {
            suppressed += 1;
        }
    }
    Ok(GroupByAnswer {
        groups,
        suppressed,
        cost: PrivacyCost {
            eps: epsilon,
            delta,
        },
        per_group_epsilon: per_eps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FederationConfig;
    use fedaqp_model::{Aggregate, Dimension, Domain, Row, Schema};

    fn federation() -> Federation {
        let schema = Schema::new(vec![
            Dimension::new("category", Domain::new(0, 4).unwrap()),
            Dimension::new("x", Domain::new(0, 99).unwrap()),
        ])
        .unwrap();
        // Category populations: 0 → 2000, 1 → 1000, 2 → 400, 3 → 40, 4 → 0.
        let sizes = [2000usize, 1000, 400, 40, 0];
        let partitions: Vec<Vec<Row>> = (0..4)
            .map(|p| {
                let mut rows = Vec::new();
                for (cat, &n) in sizes.iter().enumerate() {
                    for i in 0..n / 4 {
                        rows.push(Row::cell(vec![cat as i64, ((i * 7 + p) % 100) as i64], 1));
                    }
                }
                rows
            })
            .collect();
        let mut cfg = FederationConfig::paper_default(64);
        cfg.cost_model = fedaqp_smc::CostModel::zero();
        cfg.n_min = 2;
        Federation::build(cfg, schema, partitions).unwrap()
    }

    fn base() -> RangeQuery {
        RangeQuery::new(Aggregate::Count, vec![Range::new(1, 0, 99).unwrap()]).unwrap()
    }

    #[test]
    fn recovers_group_ordering_under_loose_budget() {
        let mut fed = federation();
        let ans = run_group_by(&mut fed, &base(), 0, 0.3, 250.0, 1e-3, 0.0).unwrap();
        assert_eq!(ans.groups.len(), 5);
        // The big groups come out in the right order.
        let by_key: Vec<f64> = ans.groups.iter().map(|g| g.value).collect();
        assert!(by_key[0] > by_key[1]);
        assert!(by_key[1] > by_key[2]);
        assert!(by_key[2] > by_key[3]);
        // Exact oracle matches the construction.
        assert_eq!(ans.groups[0].exact, 2000);
        assert_eq!(ans.groups[4].exact, 0);
    }

    #[test]
    fn threshold_suppresses_small_groups() {
        let mut fed = federation();
        let ans = run_group_by(&mut fed, &base(), 0, 0.3, 250.0, 1e-3, 150.0).unwrap();
        // Groups 3 (40 rows) and 4 (0 rows) fall under the threshold
        // (modulo noise); at minimum the empty group must vanish.
        assert!(ans.suppressed >= 1, "nothing suppressed");
        assert!(ans.groups.iter().all(|g| g.value >= 150.0));
    }

    #[test]
    fn cost_is_total_epsilon_and_split_evenly() {
        let mut fed = federation();
        let ans = run_group_by(&mut fed, &base(), 0, 0.3, 2.0, 1e-3, 0.0).unwrap();
        assert!((ans.cost.eps - 2.0).abs() < 1e-12);
        assert!((ans.per_group_epsilon - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rejects_group_dim_in_filter() {
        let mut fed = federation();
        let bad = RangeQuery::new(Aggregate::Count, vec![Range::new(0, 0, 2).unwrap()]).unwrap();
        assert!(matches!(
            run_group_by(&mut fed, &bad, 0, 0.3, 1.0, 1e-3, 0.0),
            Err(CoreError::BadConfig(_))
        ));
        assert!(run_group_by(&mut fed, &base(), 0, 0.3, 0.0, 1e-3, 0.0).is_err());
        assert!(run_group_by(&mut fed, &base(), 9, 0.3, 1.0, 1e-3, 0.0).is_err());
    }

    #[test]
    fn groups_ascend_by_key() {
        let mut fed = federation();
        let ans = run_group_by(&mut fed, &base(), 0, 0.3, 50.0, 1e-3, 0.0).unwrap();
        let keys: Vec<Value> = ans.groups.iter().map(|g| g.key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
