//! The optimizer's contract, tested end to end: **optimization never
//! changes released answers**. For any plan and any seed, running with
//! every optimizer pass on must produce answers *byte-identical* (same
//! `f64` bits, same group keys, same suppression counts, same charged
//! cost) to running with every pass off — pruning, dedup, and reordering
//! may only change *work*, never *output*.
//!
//! Also covered here:
//! * pruning soundness against the exact oracle — a provider the
//!   optimizer prunes from public bounds alone provably contributes
//!   nothing to the query;
//! * the all-pruned corner (every provider answered inline, no worker
//!   ever sees the job) completes and stays byte-identical;
//! * `EXPLAIN` through a budgeted session costs nothing.

use fedaqp_core::{
    ConcurrentSession, Federation, FederationConfig, OptimizerConfig, PlanAnswer, PlanResult,
    QueryPlan, SessionPlan,
};
use fedaqp_model::{
    Aggregate, DerivedStatistic, Dimension, Domain, Range, RangeQuery, Row, Schema,
};
use fedaqp_smc::CostModel;
use proptest::prelude::*;

const N_PROVIDERS: usize = 4;
const ROWS_PER_PROVIDER: usize = 200;

fn schema() -> Schema {
    Schema::new(vec![
        Dimension::new("x", Domain::new(0, 999).unwrap()),
        Dimension::new("g", Domain::new(0, 4).unwrap()),
    ])
    .unwrap()
}

/// Disjoint per-provider bands on dimension 0 (`x`): provider `p` holds
/// `x ∈ [p·band, p·band + band)`. A query inside one band is prunable on
/// every other provider from public bounds alone.
fn band_partitions(band: usize) -> Vec<Vec<Row>> {
    (0..N_PROVIDERS)
        .map(|p| {
            (0..ROWS_PER_PROVIDER)
                .map(|i| {
                    let x = (p * band + (i * 7) % band) as i64;
                    Row::cell(vec![x, (i % 5) as i64], 1 + (i % 3) as u64)
                })
                .collect()
        })
        .collect()
}

fn config(seed: u64, optimizer: OptimizerConfig) -> FederationConfig {
    let mut cfg = FederationConfig::paper_default(32);
    cfg.seed = seed;
    cfg.cost_model = CostModel::zero();
    cfg.optimizer = optimizer;
    cfg
}

fn federation(seed: u64, band: usize, optimizer: OptimizerConfig) -> Federation {
    Federation::build(config(seed, optimizer), schema(), band_partitions(band)).unwrap()
}

/// Runs `plans` in order through one engine + session and returns every
/// answer. A fresh engine per mode matters: the per-content occurrence
/// ledger must start from zero on both sides for the comparison to pit
/// the same noise indices against each other.
fn run_all(federation: &Federation, plans: &[QueryPlan]) -> Vec<PlanAnswer> {
    federation.with_engine(|handle| {
        let session =
            ConcurrentSession::open(handle.clone(), 1e6, 0.5, SessionPlan::PayAsYouGo).unwrap();
        plans.iter().map(|p| session.run_plan(p).unwrap()).collect()
    })
}

/// Byte-level equality: `f64`s compared by bits, not by `==` (which would
/// let `-0.0 == 0.0` or NaN asymmetries slip through).
fn assert_bit_identical(optimized: &PlanAnswer, exhaustive: &PlanAnswer) {
    assert_eq!(
        optimized.cost.eps.to_bits(),
        exhaustive.cost.eps.to_bits(),
        "optimization changed the charged epsilon"
    );
    assert_eq!(
        optimized.cost.delta.to_bits(),
        exhaustive.cost.delta.to_bits(),
        "optimization changed the charged delta"
    );
    match (&optimized.result, &exhaustive.result) {
        (
            PlanResult::Value {
                value: a,
                ci_halfwidth: ca,
            },
            PlanResult::Value {
                value: b,
                ci_halfwidth: cb,
            },
        ) => {
            assert_eq!(a.to_bits(), b.to_bits(), "released value diverged");
            assert_eq!(
                ca.map(f64::to_bits),
                cb.map(f64::to_bits),
                "confidence interval diverged"
            );
        }
        (
            PlanResult::Groups {
                groups: ga,
                suppressed: sa,
            },
            PlanResult::Groups {
                groups: gb,
                suppressed: sb,
            },
        ) => {
            assert_eq!(sa, sb, "suppression count diverged");
            assert_eq!(ga.len(), gb.len(), "group count diverged");
            for (a, b) in ga.iter().zip(gb) {
                assert_eq!(a.key, b.key, "group key diverged");
                assert_eq!(
                    a.value.to_bits(),
                    b.value.to_bits(),
                    "group value diverged at key {}",
                    a.key
                );
                assert_eq!(
                    a.ci_halfwidth.map(f64::to_bits),
                    b.ci_halfwidth.map(f64::to_bits),
                    "group interval diverged at key {}",
                    a.key
                );
            }
        }
        (PlanResult::Extreme { value: a }, PlanResult::Extreme { value: b }) => {
            assert_eq!(a, b, "extreme selection diverged");
        }
        _ => panic!("optimization changed the result shape"),
    }
}

fn count_query(lo: i64, hi: i64) -> RangeQuery {
    RangeQuery::new(Aggregate::Count, vec![Range::new(0, lo, hi).unwrap()]).unwrap()
}

/// The plan mix every equivalence case runs: a band-local scalar (pruning
/// fires), a variance (dedup reuses the repeated COUNT), and a group-by
/// (reordering fires), all over the same predicate.
fn plan_mix(lo: i64, hi: i64, sampling_rate: f64) -> Vec<QueryPlan> {
    let query = count_query(lo, hi);
    vec![
        QueryPlan::Scalar {
            query: query.clone(),
            sampling_rate,
            epsilon: 1.0,
            delta: 1e-6,
        },
        QueryPlan::Derived {
            query: query.clone(),
            statistic: DerivedStatistic::Variance,
            sampling_rate,
            epsilon: 1.5,
            delta: 1e-6,
        },
        QueryPlan::GroupBy {
            base: query,
            statistic: None,
            group_dim: 1,
            threshold: 0.0,
            sampling_rate,
            epsilon: 2.0,
            delta: 1e-6,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline invariant, property-tested: for random seeds and
    /// random predicates (band-local and band-spanning alike), every
    /// released byte is identical with the optimizer on and off.
    #[test]
    fn optimized_answers_are_byte_identical_to_exhaustive(
        seed in any::<u64>(),
        lo in 0i64..960,
        width in 1i64..400,
        sr_idx in 0usize..3,
    ) {
        let hi = (lo + width).min(999);
        let sampling_rate = [0.1, 0.3, 0.6][sr_idx];
        let plans = plan_mix(lo, hi, sampling_rate);
        let optimized = run_all(&federation(seed, 250, OptimizerConfig::enabled()), &plans);
        let exhaustive = run_all(&federation(seed, 250, OptimizerConfig::disabled()), &plans);
        for (a, b) in optimized.iter().zip(&exhaustive) {
            assert_bit_identical(a, b);
        }
    }

    /// Pruning soundness against the exact oracle: every provider the
    /// optimizer prunes (from public bounds alone) holds zero rows under
    /// the query, so the pruned plan's covering set is exactly the
    /// exhaustive one.
    #[test]
    fn pruned_providers_provably_contribute_nothing(
        lo in 0i64..999,
        width in 0i64..999,
    ) {
        let hi = (lo + width).min(999);
        let fed = federation(7, 250, OptimizerConfig::enabled());
        let query = count_query(lo, hi);
        let plan = QueryPlan::Scalar {
            query: query.clone(),
            sampling_rate: 0.2,
            epsilon: 1.0,
            delta: 1e-6,
        };
        let explanation = fed.with_engine(|handle| handle.explain_plan(&plan)).unwrap();
        for sub in &explanation.sub_queries {
            for &id in &sub.pruned_providers {
                let pruned = &fed.providers()[id as usize];
                assert_eq!(
                    pruned.exact_answer(&query),
                    0,
                    "provider {id} was pruned but holds matching rows"
                );
            }
        }
    }
}

/// The all-pruned corner: the data covers only `x < 400` while the query
/// asks about `x ∈ [600, 900]`, so *every* provider is pruned and the
/// whole job is answered inline on the submitting thread — it must
/// complete (no worker ever sees the job, so parking at the allocation
/// barrier would deadlock) and stay byte-identical to the exhaustive run.
#[test]
fn all_pruned_query_completes_and_matches_exhaustive() {
    let plans = plan_mix(600, 900, 0.3);
    for seed in [1u64, 42, 9001] {
        let optimized = run_all(&federation(seed, 100, OptimizerConfig::enabled()), &plans);
        let exhaustive = run_all(&federation(seed, 100, OptimizerConfig::disabled()), &plans);
        let explanation = federation(seed, 100, OptimizerConfig::enabled())
            .with_engine(|handle| handle.explain_plan(&plans[0]))
            .unwrap();
        assert_eq!(
            explanation.sub_queries[0].pruned_providers.len(),
            N_PROVIDERS,
            "the fixture must prune every provider"
        );
        for (a, b) in optimized.iter().zip(&exhaustive) {
            assert_bit_identical(a, b);
        }
    }
}

/// `EXPLAIN` through a budgeted session spends nothing: the explanation
/// conditions only on the analyst's own plan and public offline metadata.
#[test]
fn explain_through_a_session_costs_no_budget() {
    let fed = federation(3, 250, OptimizerConfig::enabled());
    fed.with_engine(|handle| {
        let session =
            ConcurrentSession::open(handle.clone(), 10.0, 1e-3, SessionPlan::PayAsYouGo).unwrap();
        let plans = plan_mix(100, 220, 0.25);
        for plan in &plans {
            session.explain_plan(plan).unwrap();
        }
        assert_eq!(session.spent().eps, 0.0);
        assert_eq!(session.spent().delta, 0.0);
        // A real run charges exactly the declared cost; explaining again
        // afterwards still charges nothing.
        session.run_plan(&plans[0]).unwrap();
        let spent = session.spent();
        session.explain_plan(&plans[0]).unwrap();
        assert_eq!(session.spent(), spent);
    });
}
