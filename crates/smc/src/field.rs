//! Arithmetic in `GF(p)` for the Mersenne prime `p = 2^61 − 1`.
//!
//! Additive secret shares live in this field. A Mersenne modulus keeps
//! reduction branch-light (`x mod p = (x & p) + (x >> 61)`, iterated), and
//! 61 bits leave ample headroom for the fixed-point encoding of estimates.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

use crate::{Result, SmcError};

/// The field modulus `p = 2^61 − 1` (a Mersenne prime).
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of `GF(2^61 − 1)`; the inner value is always `< MODULUS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp(u64);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Creates an element, reducing `v` modulo `p`.
    #[inline]
    pub fn new(v: u64) -> Self {
        Fp(reduce64(v))
    }

    /// The canonical representative in `[0, p)`.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// A uniformly random field element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling over 61 bits keeps the distribution exactly
        // uniform (the acceptance probability is 1 − 1/2^61).
        loop {
            let v = rng.gen::<u64>() & MODULUS;
            if v < MODULUS {
                return Fp(v);
            }
        }
    }

    /// Modular exponentiation by squaring.
    pub fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Fp::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem (`a^{p−2}`).
    pub fn inverse(self) -> Result<Self> {
        if self.0 == 0 {
            return Err(SmcError::NotInvertible);
        }
        Ok(self.pow(MODULUS - 2))
    }
}

/// Reduces a `u64` modulo the Mersenne prime.
#[inline]
fn reduce64(x: u64) -> u64 {
    let mut r = (x & MODULUS) + (x >> 61);
    if r >= MODULUS {
        r -= MODULUS;
    }
    r
}

/// Reduces a `u128` product modulo the Mersenne prime.
#[inline]
fn reduce128(x: u128) -> u64 {
    let lo = (x as u64) & MODULUS;
    let hi = x >> 61;
    // hi < 2^67, fold once more.
    let hi_lo = (hi as u64) & MODULUS;
    let hi_hi = (hi >> 61) as u64;
    let mut r = lo as u128 + hi_lo as u128 + hi_hi as u128;
    while r >= MODULUS as u128 {
        r -= MODULUS as u128;
    }
    r as u64
}

impl Add for Fp {
    type Output = Fp;
    #[inline]
    fn add(self, rhs: Fp) -> Fp {
        let mut s = self.0 + rhs.0;
        if s >= MODULUS {
            s -= MODULUS;
        }
        Fp(s)
    }
}

impl AddAssign for Fp {
    #[inline]
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}

impl Sub for Fp {
    type Output = Fp;
    #[inline]
    fn sub(self, rhs: Fp) -> Fp {
        let s = if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + MODULUS - rhs.0
        };
        Fp(s)
    }
}

impl SubAssign for Fp {
    #[inline]
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}

impl Neg for Fp {
    type Output = Fp;
    #[inline]
    fn neg(self) -> Fp {
        if self.0 == 0 {
            self
        } else {
            Fp(MODULUS - self.0)
        }
    }
}

impl Mul for Fp {
    type Output = Fp;
    #[inline]
    fn mul(self, rhs: Fp) -> Fp {
        Fp(reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl MulAssign for Fp {
    #[inline]
    fn mul_assign(&mut self, rhs: Fp) {
        *self = *self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_reduces() {
        assert_eq!(Fp::new(MODULUS).value(), 0);
        assert_eq!(Fp::new(MODULUS + 5).value(), 5);
        assert_eq!(Fp::new(u64::MAX).value(), u64::MAX % MODULUS);
    }

    #[test]
    fn additive_group_laws() {
        let a = Fp::new(MODULUS - 1);
        let b = Fp::new(2);
        assert_eq!((a + b).value(), 1);
        assert_eq!((a + (-a)).value(), 0);
        assert_eq!((b - a).value(), 3);
        assert_eq!((a - a).value(), 0);
        assert_eq!((-Fp::ZERO).value(), 0);
    }

    #[test]
    fn multiplication_wraps_correctly() {
        // (p−1)² mod p = 1 since p−1 ≡ −1.
        let a = Fp::new(MODULUS - 1);
        assert_eq!((a * a).value(), 1);
        assert_eq!((Fp::new(3) * Fp::new(7)).value(), 21);
        assert_eq!((a * Fp::ZERO).value(), 0);
    }

    #[test]
    fn pow_and_fermat() {
        let a = Fp::new(123_456_789);
        assert_eq!(a.pow(0), Fp::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(2), a * a);
        // Fermat: a^{p−1} = 1.
        assert_eq!(a.pow(MODULUS - 1), Fp::ONE);
    }

    #[test]
    fn inverse_works() {
        let a = Fp::new(987_654_321);
        let inv = a.inverse().unwrap();
        assert_eq!(a * inv, Fp::ONE);
        assert!(matches!(Fp::ZERO.inverse(), Err(SmcError::NotInvertible)));
    }

    #[test]
    fn random_is_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0u32;
        for _ in 0..1000 {
            let x = Fp::random(&mut rng);
            assert!(x.value() < MODULUS);
            if x.value() < MODULUS / 2 {
                low += 1;
            }
        }
        assert!((350..=650).contains(&low), "low half hit {low}/1000 times");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_fp() -> impl Strategy<Value = Fp> {
        any::<u64>().prop_map(Fp::new)
    }

    proptest! {
        #[test]
        fn add_commutative_associative(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn mul_commutative_associative(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn distributive(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn sub_is_add_neg(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a - b, a + (-b));
        }

        #[test]
        fn mul_matches_u128_reference(x in any::<u64>(), y in any::<u64>()) {
            let a = Fp::new(x);
            let b = Fp::new(y);
            let expected = ((a.value() as u128 * b.value() as u128) % MODULUS as u128) as u64;
            prop_assert_eq!((a * b).value(), expected);
        }

        #[test]
        fn inverse_round_trips(x in 1u64..MODULUS) {
            let a = Fp::new(x);
            prop_assert_eq!(a * a.inverse().unwrap(), Fp::ONE);
        }
    }
}
