//! Simulated secure multiparty computation for `fedaqp`.
//!
//! The paper uses SMC in two places: the Fig. 1 motivation experiment
//! (sharing rows vs sharing results) and the optional release mode where
//! providers secret-share their local estimates and sensitivities so the
//! aggregator can add a *single* Laplace noise to the oblivious sum
//! (protocol step 7, §6.5 / Fig. 8). Its proof-of-concept used MPyC; we
//! rebuild the needed functionality natively:
//!
//! * [`field`] — arithmetic in `GF(p)` with the Mersenne prime
//!   `p = 2^61 − 1` (fast reduction, constant-size shares).
//! * [`fixed`] — fixed-point encoding of reals into field elements so
//!   estimates and sensitivities (both reals) can be shared.
//! * [`share`] — `n`-party additive secret sharing with share arithmetic:
//!   the sharing scheme under which a sum of values is the sum of shares.
//! * [`network`] — a latency/bandwidth/gate cost model; all reported SMC
//!   "runtimes" are *simulated durations* from this model plus the real
//!   share arithmetic, mirroring how the paper's Fig. 1 measures transfer
//!   cost.
//! * [`protocol`] — the two aggregate functionalities the protocol needs
//!   (secure sum, secure max) and the row-sharing/result-sharing cost
//!   simulations behind Fig. 1.
//!
//! **Security model.** Honest-but-curious parties, as in the paper. The
//! comparison sub-protocol inside `secure_max` is simulated at the ideal-
//! functionality level (the comparison result is computed on reconstructed
//! differences inside the simulation boundary) while its *cost* is charged
//! according to a bit-decomposition comparison circuit — the standard
//! systems-paper device for costing MPC without reimplementing a full
//! garbling stack. DESIGN.md documents this substitution.

pub mod error;
pub mod field;
pub mod fixed;
pub mod network;
pub mod protocol;
pub mod shamir;
pub mod share;

pub use error::SmcError;
pub use field::Fp;
pub use fixed::{decode_fixed, encode_fixed, FRAC_BITS};
pub use network::{CostModel, SimClock};
pub use protocol::{SmcRuntime, TrafficStats};
pub use shamir::{shamir_add, shamir_reconstruct, shamir_share, ShamirShare};
pub use share::{reconstruct, share_value, SharedValue};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SmcError>;
