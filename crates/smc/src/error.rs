//! Error type for the SMC simulation.

use std::fmt;

/// Errors raised by the SMC substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SmcError {
    /// Fixed-point encoding overflow: the real value does not fit the field
    /// with the configured fractional bits.
    FixedPointOverflow(f64),
    /// Fixed-point encoding of a non-finite value.
    NonFinite(f64),
    /// Sharing requires at least two parties.
    TooFewParties(usize),
    /// Share vectors of mismatched party counts were combined.
    PartyMismatch {
        /// Left operand's party count.
        left: usize,
        /// Right operand's party count.
        right: usize,
    },
    /// A protocol was invoked with no inputs.
    NoInputs,
    /// Division by a non-invertible field element.
    NotInvertible,
}

impl fmt::Display for SmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmcError::FixedPointOverflow(x) => {
                write!(f, "value {x} overflows the fixed-point field encoding")
            }
            SmcError::NonFinite(x) => write!(f, "cannot encode non-finite value {x}"),
            SmcError::TooFewParties(n) => {
                write!(f, "secret sharing needs at least 2 parties, got {n}")
            }
            SmcError::PartyMismatch { left, right } => {
                write!(f, "combined shares for {left} vs {right} parties")
            }
            SmcError::NoInputs => write!(f, "protocol invoked with no inputs"),
            SmcError::NotInvertible => write!(f, "field element has no inverse"),
        }
    }
}

impl std::error::Error for SmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SmcError::TooFewParties(1).to_string().contains('1'));
        assert!(SmcError::FixedPointOverflow(1e30)
            .to_string()
            .contains("overflows"));
        assert!(SmcError::PartyMismatch { left: 3, right: 4 }
            .to_string()
            .contains('3'));
    }
}
