//! SMC aggregate functionalities with cost accounting.
//!
//! Two functionalities cover everything the federation needs from SMC
//! (protocol step 7, §5.3.3): an oblivious **sum** of the providers' local
//! estimates and an oblivious **max** over their smooth sensitivities. Both
//! operate on additively shared fixed-point values and advance a simulated
//! clock according to the [`CostModel`].
//!
//! The crate also provides the two cost simulations behind Fig. 1:
//! [`SmcRuntime::row_sharing_cost`] (providers secret-share every row and
//! evaluate the query jointly) and [`SmcRuntime::secure_sum`] over local
//! results (providers evaluate locally and share only their aggregate).

use std::time::Duration;

use rand::Rng;

use crate::fixed::{decode_fixed, encode_fixed};
use crate::network::{CostModel, SimClock};
use crate::share::SharedValue;
use crate::{Result, SmcError};

/// Gate count of one oblivious 61-bit comparison (bit decomposition plus
/// prefix logic; the standard circuit is ~2 gates per bit).
const COMPARISON_GATES: u64 = 2 * 61;

/// Communication statistics accumulated by a runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total bytes placed on the wire.
    pub bytes_sent: u64,
    /// Total point-to-point messages.
    pub messages: u64,
    /// Total MPC gates evaluated.
    pub gates: u64,
    /// Total protocol rounds.
    pub rounds: u64,
}

/// An honest-but-curious `n`-party SMC runtime over additive shares, with
/// simulated network/computation time.
#[derive(Debug, Clone)]
pub struct SmcRuntime {
    n_parties: usize,
    cost: CostModel,
    clock: SimClock,
    traffic: TrafficStats,
}

impl SmcRuntime {
    /// Creates a runtime for `n_parties ≥ 2` under `cost`.
    pub fn new(n_parties: usize, cost: CostModel) -> Result<Self> {
        if n_parties < 2 {
            return Err(SmcError::TooFewParties(n_parties));
        }
        Ok(Self {
            n_parties,
            cost,
            clock: SimClock::new(),
            traffic: TrafficStats::default(),
        })
    }

    /// Number of parties.
    #[inline]
    pub fn n_parties(&self) -> usize {
        self.n_parties
    }

    /// Simulated time consumed so far.
    pub fn elapsed(&self) -> Duration {
        self.clock.elapsed()
    }

    /// Traffic statistics so far.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic
    }

    /// Resets the clock and traffic (between measured queries).
    pub fn reset(&mut self) {
        self.clock.reset();
        self.traffic = TrafficStats::default();
    }

    /// Accounts one protocol round in which each of the `senders` parties
    /// transmits `bytes_per_sender` (links operate in parallel; the round
    /// costs one latency plus the bottleneck sender's serialization time).
    fn round(&mut self, senders: u64, bytes_per_sender: u64) {
        self.traffic.rounds += 1;
        self.traffic.messages += senders;
        self.traffic.bytes_sent += senders * bytes_per_sender;
        self.clock.advance(self.cost.round_time(bytes_per_sender));
    }

    /// Accounts `gates` MPC gates.
    fn eval_gates(&mut self, gates: u64) {
        self.traffic.gates += gates;
        self.clock.advance(self.cost.gate_time(gates));
    }

    /// Oblivious sum: each party contributes one real value; the output is
    /// their exact sum (up to fixed-point rounding). Costs two rounds:
    /// share distribution and partial-sum publication.
    pub fn secure_sum<R: Rng + ?Sized>(&mut self, rng: &mut R, values: &[f64]) -> Result<f64> {
        if values.is_empty() {
            return Err(SmcError::NoInputs);
        }
        let n = self.n_parties;
        // Round 1: every input owner sends one share to each other party.
        self.round(
            values.len() as u64 * (n as u64 - 1),
            self.cost.bytes_per_share * (n as u64 - 1),
        );
        let mut acc: Option<SharedValue> = None;
        for &v in values {
            let sv = SharedValue::share(rng, encode_fixed(v)?, n)?;
            acc = Some(match acc {
                None => sv,
                Some(a) => a.add(&sv)?,
            });
        }
        // Round 2: parties publish their partial sums (local share sums).
        self.round(n as u64, self.cost.bytes_per_share);
        Ok(decode_fixed(acc.expect("non-empty inputs").open()))
    }

    /// Oblivious maximum over one real value per input, via a comparison
    /// tournament on shared values.
    ///
    /// Each pairwise comparison is *costed* as a bit-decomposition circuit
    /// (`COMPARISON_GATES` gates + one round); its *outcome* is obtained by
    /// opening the sign of the shared difference inside the simulation
    /// boundary (ideal-functionality simulation — see crate docs).
    pub fn secure_max<R: Rng + ?Sized>(&mut self, rng: &mut R, values: &[f64]) -> Result<f64> {
        if values.is_empty() {
            return Err(SmcError::NoInputs);
        }
        let n = self.n_parties;
        // Share distribution round (as in secure_sum).
        self.round(
            values.len() as u64 * (n as u64 - 1),
            self.cost.bytes_per_share * (n as u64 - 1),
        );
        let mut layer: Vec<(SharedValue, f64)> = values
            .iter()
            .map(|&v| {
                Ok((
                    SharedValue::share(rng, encode_fixed(v)?, n)?,
                    v, // plaintext mirror used only inside the simulation
                ))
            })
            .collect::<Result<_>>()?;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut iter = layer.into_iter();
            let mut comparisons = 0u64;
            while let (Some(a), b) = (iter.next(), iter.next()) {
                match b {
                    Some(b) => {
                        comparisons += 1;
                        // Ideal functionality: pick the larger plaintext,
                        // keep its shares.
                        next.push(if a.1 >= b.1 { a } else { b });
                    }
                    None => next.push(a),
                }
            }
            self.eval_gates(comparisons * COMPARISON_GATES);
            // One communication round per tournament layer.
            self.round(n as u64, self.cost.bytes_per_share * comparisons.max(1));
            layer = next;
        }
        let (winner, _) = layer.pop().expect("tournament leaves a winner");
        Ok(decode_fixed(winner.open()))
    }

    /// Simulated cost of the **row-sharing** strategy of Fig. 1: every
    /// provider secret-shares its entire partition and the query is
    /// evaluated jointly, costing `gates_per_row` per shared row.
    ///
    /// Returns the simulated duration (also accumulated on the clock).
    pub fn row_sharing_cost(
        &mut self,
        rows_per_party: &[u64],
        bytes_per_row: u64,
        gates_per_row: u64,
    ) -> Duration {
        let before = self.clock.elapsed();
        let n = self.n_parties as u64;
        let total_rows: u64 = rows_per_party.iter().sum();
        // Each row becomes n shares; each owner ships n−1 of them. The
        // bottleneck party serializes its own rows.
        let max_rows = rows_per_party.iter().copied().max().unwrap_or(0);
        self.traffic.rounds += 1;
        self.traffic.messages += rows_per_party.len() as u64 * (n - 1);
        self.traffic.bytes_sent += total_rows * bytes_per_row * (n - 1);
        self.clock
            .advance(self.cost.round_time(max_rows * bytes_per_row * (n - 1)));
        // Joint oblivious evaluation over every shared row.
        self.eval_gates(total_rows * gates_per_row);
        // Result publication round.
        self.round(n, self.cost.bytes_per_share);
        self.clock.elapsed() - before
    }

    /// Simulated cost of the **result-sharing** strategy of Fig. 1: parties
    /// evaluate locally and secure-sum only their scalar results. Costs are
    /// independent of table size.
    pub fn result_sharing_cost<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        local_results: &[f64],
    ) -> Result<(f64, Duration)> {
        let before = self.clock.elapsed();
        let sum = self.secure_sum(rng, local_results)?;
        Ok((sum, self.clock.elapsed() - before))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn runtime() -> SmcRuntime {
        SmcRuntime::new(4, CostModel::lan()).unwrap()
    }

    #[test]
    fn rejects_too_few_parties_and_empty_inputs() {
        assert!(matches!(
            SmcRuntime::new(1, CostModel::lan()),
            Err(SmcError::TooFewParties(1))
        ));
        let mut rt = runtime();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            rt.secure_sum(&mut rng, &[]),
            Err(SmcError::NoInputs)
        ));
        assert!(matches!(
            rt.secure_max(&mut rng, &[]),
            Err(SmcError::NoInputs)
        ));
    }

    #[test]
    fn secure_sum_is_exact() {
        let mut rt = runtime();
        let mut rng = StdRng::seed_from_u64(2);
        let values = [1234.5, -200.25, 999.0, 0.125];
        let sum = rt.secure_sum(&mut rng, &values).unwrap();
        let expected: f64 = values.iter().sum();
        assert!((sum - expected).abs() < 1e-4, "{sum} vs {expected}");
    }

    #[test]
    fn secure_max_finds_maximum() {
        let mut rt = runtime();
        let mut rng = StdRng::seed_from_u64(3);
        let values = [3.5, 9.75, -2.0, 9.5, 1.0];
        let max = rt.secure_max(&mut rng, &values).unwrap();
        assert!((max - 9.75).abs() < 1e-4);
        // Single input: max is the input, still well-defined.
        let max1 = rt.secure_max(&mut rng, &[42.0]).unwrap();
        assert!((max1 - 42.0).abs() < 1e-4);
    }

    #[test]
    fn clock_advances_with_work() {
        let mut rt = runtime();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(rt.elapsed(), Duration::ZERO);
        rt.secure_sum(&mut rng, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let after_sum = rt.elapsed();
        assert!(after_sum > Duration::ZERO);
        rt.secure_max(&mut rng, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(rt.elapsed() > after_sum);
        rt.reset();
        assert_eq!(rt.elapsed(), Duration::ZERO);
        assert_eq!(rt.traffic(), TrafficStats::default());
    }

    #[test]
    fn row_sharing_dwarfs_result_sharing() {
        // The Fig. 1 asymmetry: sharing 1M rows costs orders of magnitude
        // more than sharing 4 scalars.
        let mut rt = runtime();
        let mut rng = StdRng::seed_from_u64(5);
        let rows = [250_000u64; 4];
        let row_cost = rt.row_sharing_cost(&rows, 7 * 8, 4 * COMPARISON_GATES);
        rt.reset();
        let (_, result_cost) = rt
            .result_sharing_cost(&mut rng, &[10.0, 20.0, 30.0, 40.0])
            .unwrap();
        let speedup = row_cost.as_secs_f64() / result_cost.as_secs_f64();
        assert!(
            speedup > 50.0,
            "row {row_cost:?} vs result {result_cost:?} (speedup {speedup:.1})"
        );
    }

    #[test]
    fn row_sharing_scales_with_rows() {
        let mut rt = runtime();
        let small = rt.row_sharing_cost(&[1_000; 4], 56, 100);
        rt.reset();
        let big = rt.row_sharing_cost(&[100_000; 4], 56, 100);
        assert!(big.as_secs_f64() > 10.0 * small.as_secs_f64());
    }

    #[test]
    fn result_sharing_cost_is_size_independent() {
        let mut rt = runtime();
        let mut rng = StdRng::seed_from_u64(6);
        let (_, c1) = rt.result_sharing_cost(&mut rng, &[1.0; 4]).unwrap();
        rt.reset();
        let (_, c2) = rt.result_sharing_cost(&mut rng, &[1.0; 4]).unwrap();
        // Identical work → identical simulated cost (deterministic model).
        assert_eq!(c1, c2);
    }

    #[test]
    fn traffic_stats_accumulate() {
        let mut rt = runtime();
        let mut rng = StdRng::seed_from_u64(7);
        rt.secure_sum(&mut rng, &[1.0, 2.0]).unwrap();
        let t = rt.traffic();
        assert!(t.bytes_sent > 0);
        assert!(t.messages > 0);
        assert_eq!(t.rounds, 2);
    }

    #[test]
    fn secure_sum_matches_plain_sum_under_many_seeds() {
        for seed in 0..20 {
            let mut rt = runtime();
            let mut rng = StdRng::seed_from_u64(seed);
            let values: Vec<f64> = (0..7).map(|i| (i as f64) * 13.25 - 20.0).collect();
            let sum = rt.secure_sum(&mut rng, &values).unwrap();
            let expected: f64 = values.iter().sum();
            assert!((sum - expected).abs() < 1e-4);
        }
    }
}
