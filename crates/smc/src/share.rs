//! Additive `n`-party secret sharing.
//!
//! A secret `x ∈ GF(p)` is split into `n` shares summing to `x`; any
//! `n − 1` shares are uniformly random and reveal nothing. Addition of
//! shared values is local (share-wise), which is the only homomorphism the
//! protocol's release mode needs (summing local estimates, step 7).

use rand::Rng;

use crate::field::Fp;
use crate::{Result, SmcError};

/// Splits `secret` into `n` additive shares.
pub fn share_value<R: Rng + ?Sized>(rng: &mut R, secret: Fp, n: usize) -> Result<Vec<Fp>> {
    if n < 2 {
        return Err(SmcError::TooFewParties(n));
    }
    let mut shares = Vec::with_capacity(n);
    let mut acc = Fp::ZERO;
    for _ in 0..n - 1 {
        let s = Fp::random(rng);
        acc += s;
        shares.push(s);
    }
    shares.push(secret - acc);
    Ok(shares)
}

/// Reconstructs a secret from all its shares.
pub fn reconstruct(shares: &[Fp]) -> Fp {
    shares.iter().fold(Fp::ZERO, |acc, &s| acc + s)
}

/// A value held in shared form across `n` parties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedValue {
    shares: Vec<Fp>,
}

impl SharedValue {
    /// Shares `secret` among `n` parties.
    pub fn share<R: Rng + ?Sized>(rng: &mut R, secret: Fp, n: usize) -> Result<Self> {
        Ok(Self {
            shares: share_value(rng, secret, n)?,
        })
    }

    /// Number of parties.
    #[inline]
    pub fn n_parties(&self) -> usize {
        self.shares.len()
    }

    /// The share held by party `i`.
    #[inline]
    pub fn share_of(&self, i: usize) -> Fp {
        self.shares[i]
    }

    /// Local (share-wise) addition: `[x] + [y] = [x + y]`.
    pub fn add(&self, other: &SharedValue) -> Result<SharedValue> {
        if self.n_parties() != other.n_parties() {
            return Err(SmcError::PartyMismatch {
                left: self.n_parties(),
                right: other.n_parties(),
            });
        }
        Ok(SharedValue {
            shares: self
                .shares
                .iter()
                .zip(&other.shares)
                .map(|(&a, &b)| a + b)
                .collect(),
        })
    }

    /// Local multiplication by a *public* scalar: `c·[x] = [c·x]`.
    pub fn scale(&self, c: Fp) -> SharedValue {
        SharedValue {
            shares: self.shares.iter().map(|&s| s * c).collect(),
        }
    }

    /// Opens the value (all parties publish their shares).
    pub fn open(&self) -> Fp {
        reconstruct(&self.shares)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn share_and_reconstruct() {
        let mut rng = StdRng::seed_from_u64(1);
        let secret = Fp::new(123_456_789);
        for n in 2..8 {
            let shares = share_value(&mut rng, secret, n).unwrap();
            assert_eq!(shares.len(), n);
            assert_eq!(reconstruct(&shares), secret);
        }
    }

    #[test]
    fn rejects_single_party() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            share_value(&mut rng, Fp::ONE, 1),
            Err(SmcError::TooFewParties(1))
        ));
    }

    #[test]
    fn shares_look_random() {
        // The same secret shared twice yields different share vectors
        // (overwhelmingly), and individual shares span the field.
        let mut rng = StdRng::seed_from_u64(2);
        let secret = Fp::new(42);
        let a = share_value(&mut rng, secret, 4).unwrap();
        let b = share_value(&mut rng, secret, 4).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn addition_homomorphism() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Fp::new(1000);
        let y = Fp::new(2345);
        let sx = SharedValue::share(&mut rng, x, 4).unwrap();
        let sy = SharedValue::share(&mut rng, y, 4).unwrap();
        assert_eq!(sx.add(&sy).unwrap().open(), x + y);
    }

    #[test]
    fn scalar_multiplication() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Fp::new(77);
        let sx = SharedValue::share(&mut rng, x, 3).unwrap();
        assert_eq!(sx.scale(Fp::new(10)).open(), Fp::new(770));
    }

    #[test]
    fn party_mismatch_detected() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = SharedValue::share(&mut rng, Fp::ONE, 3).unwrap();
        let b = SharedValue::share(&mut rng, Fp::ONE, 4).unwrap();
        assert!(matches!(
            a.add(&b),
            Err(SmcError::PartyMismatch { left: 3, right: 4 })
        ));
    }

    #[test]
    fn partial_shares_do_not_determine_secret() {
        // Statistical smoke test: fixing all but one share, the remaining
        // share varies uniformly with the sharing randomness, so the sum of
        // any strict subset is independent of the secret. We verify that two
        // different secrets can produce identical n−1 prefixes only through
        // differing last shares.
        let mut rng = StdRng::seed_from_u64(6);
        let s1 = share_value(&mut rng, Fp::new(1), 3).unwrap();
        let s2 = share_value(&mut rng, Fp::new(2), 3).unwrap();
        // Reconstruct with swapped last shares gives swapped secrets offset.
        let forged = reconstruct(&[s1[0], s1[1], s2[2]]);
        assert_ne!(forged, Fp::new(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Sharing always reconstructs, for any secret, party count, seed.
        #[test]
        fn always_reconstructs(
            secret in any::<u64>(),
            n in 2usize..16,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = Fp::new(secret);
            let shares = share_value(&mut rng, s, n).unwrap();
            prop_assert_eq!(reconstruct(&shares), s);
        }

        /// Share-wise sums reconstruct to the sum of secrets (k values).
        #[test]
        fn sum_homomorphism(
            secrets in proptest::collection::vec(any::<u64>(), 1..10),
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 5;
            let mut acc: Option<SharedValue> = None;
            let mut expected = Fp::ZERO;
            for &v in &secrets {
                let f = Fp::new(v);
                expected += f;
                let sv = SharedValue::share(&mut rng, f, n).unwrap();
                acc = Some(match acc {
                    None => sv,
                    Some(a) => a.add(&sv).unwrap(),
                });
            }
            prop_assert_eq!(acc.unwrap().open(), expected);
        }
    }
}
