//! Network and computation cost model for the SMC simulation.
//!
//! The paper's Fig. 1 measures wall-clock time for sharing rows vs sharing
//! results between four Grid5000 servers. Our federation is in-process, so
//! SMC time is *simulated*: every message, byte, and MPC gate advances a
//! [`SimClock`] according to a [`CostModel`]. The defaults approximate the
//! paper's testbed (1 Gbps LAN links, sub-millisecond latency, Beaver-triple
//! style gate evaluation); the harness exposes them as parameters so the
//! Fig. 1 shape can be explored under different networks.

use std::time::Duration;

/// Link and computation cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One-way message latency per protocol round.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Cost of evaluating one MPC gate (comparison/multiplication step),
    /// including amortized triple consumption.
    pub ns_per_gate: u64,
    /// Wire size of one field share.
    pub bytes_per_share: u64,
}

impl CostModel {
    /// Grid5000-like LAN: 1 Gbps, 0.5 ms one-way latency, 500 ns/gate.
    pub fn lan() -> Self {
        Self {
            latency: Duration::from_micros(500),
            bandwidth_bytes_per_sec: 125_000_000.0, // 1 Gbps
            ns_per_gate: 500,
            bytes_per_share: 8,
        }
    }

    /// Wide-area network: 100 Mbps, 25 ms one-way latency.
    pub fn wan() -> Self {
        Self {
            latency: Duration::from_millis(25),
            bandwidth_bytes_per_sec: 12_500_000.0, // 100 Mbps
            ns_per_gate: 500,
            bytes_per_share: 8,
        }
    }

    /// A free network (zero cost) — isolates pure-computation effects in
    /// tests and ablations.
    pub fn zero() -> Self {
        Self {
            latency: Duration::ZERO,
            bandwidth_bytes_per_sec: f64::INFINITY,
            ns_per_gate: 0,
            bytes_per_share: 8,
        }
    }

    /// Time for one protocol round moving `bytes` over the bottleneck link.
    pub fn round_time(&self, bytes: u64) -> Duration {
        let wire = if self.bandwidth_bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        };
        self.latency + wire
    }

    /// Time to evaluate `gates` MPC gates.
    pub fn gate_time(&self, gates: u64) -> Duration {
        Duration::from_nanos(self.ns_per_gate.saturating_mul(gates))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::lan()
    }
}

/// A simulated wall clock accumulating protocol time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    elapsed: Duration,
}

impl SimClock {
    /// A clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock.
    pub fn advance(&mut self, d: Duration) {
        self.elapsed += d;
    }

    /// Total simulated time.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Resets to zero (between measured queries).
    pub fn reset(&mut self) {
        self.elapsed = Duration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_time_combines_latency_and_wire() {
        let m = CostModel {
            latency: Duration::from_millis(1),
            bandwidth_bytes_per_sec: 1000.0,
            ns_per_gate: 0,
            bytes_per_share: 8,
        };
        let t = m.round_time(2000);
        assert!((t.as_secs_f64() - 2.001).abs() < 1e-9);
    }

    #[test]
    fn zero_model_is_free() {
        let m = CostModel::zero();
        assert_eq!(m.round_time(1 << 30), Duration::ZERO);
        assert_eq!(m.gate_time(1 << 30), Duration::ZERO);
    }

    #[test]
    fn gate_time_scales() {
        let m = CostModel::lan();
        assert_eq!(m.gate_time(2), Duration::from_nanos(1000));
    }

    #[test]
    fn wan_slower_than_lan() {
        let bytes = 1_000_000;
        assert!(CostModel::wan().round_time(bytes) > CostModel::lan().round_time(bytes));
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let mut c = SimClock::new();
        c.advance(Duration::from_millis(5));
        c.advance(Duration::from_millis(7));
        assert_eq!(c.elapsed(), Duration::from_millis(12));
        c.reset();
        assert_eq!(c.elapsed(), Duration::ZERO);
    }
}
