//! Fixed-point encoding of reals into field elements.
//!
//! Estimates and smooth sensitivities are reals; additive sharing works
//! over `GF(p)`. We embed `x` as `round(x · 2^FRAC_BITS) mod p`, with
//! negative values wrapping into the upper half of the field (two's-
//! complement style). Decoding treats elements above `p/2` as negative.

use crate::field::{Fp, MODULUS};
use crate::{Result, SmcError};

/// Fractional bits of the fixed-point embedding (≈ 6 decimal digits).
pub const FRAC_BITS: u32 = 20;

/// The scaling factor `2^FRAC_BITS`.
pub const SCALE: f64 = (1u64 << FRAC_BITS) as f64;

/// Largest magnitude representable: `(p−1)/2 / 2^FRAC_BITS`.
pub fn max_magnitude() -> f64 {
    ((MODULUS - 1) / 2) as f64 / SCALE
}

/// Encodes a real into the field.
pub fn encode_fixed(x: f64) -> Result<Fp> {
    if !x.is_finite() {
        return Err(SmcError::NonFinite(x));
    }
    let scaled = x * SCALE;
    if scaled.abs() >= ((MODULUS - 1) / 2) as f64 {
        return Err(SmcError::FixedPointOverflow(x));
    }
    let q = scaled.round() as i64;
    if q >= 0 {
        Ok(Fp::new(q as u64))
    } else {
        Ok(-Fp::new(q.unsigned_abs()))
    }
}

/// Decodes a field element back to a real.
pub fn decode_fixed(f: Fp) -> f64 {
    let v = f.value();
    if v > MODULUS / 2 {
        -((MODULUS - v) as f64) / SCALE
    } else {
        v as f64 / SCALE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_positive_and_negative() {
        for &x in &[0.0, 1.0, -1.0, 3.25125, -2.75875, 1e6, -1e6, 0.000001] {
            let f = encode_fixed(x).unwrap();
            let back = decode_fixed(f);
            assert!((back - x).abs() <= 1.0 / SCALE, "{x} -> {back}");
        }
    }

    #[test]
    fn rejects_overflow_and_nonfinite() {
        assert!(matches!(
            encode_fixed(1e30),
            Err(SmcError::FixedPointOverflow(_))
        ));
        assert!(matches!(
            encode_fixed(f64::NAN),
            Err(SmcError::NonFinite(_))
        ));
        assert!(matches!(
            encode_fixed(f64::INFINITY),
            Err(SmcError::NonFinite(_))
        ));
    }

    #[test]
    fn addition_homomorphism() {
        // encode(a) + encode(b) decodes to a + b — the property that makes
        // additive sharing of fixed-point values sum correctly.
        let a = 1234.5678;
        let b = -987.6543;
        let sum = decode_fixed(encode_fixed(a).unwrap() + encode_fixed(b).unwrap());
        assert!((sum - (a + b)).abs() <= 2.0 / SCALE);
    }

    #[test]
    fn max_magnitude_is_encodable() {
        let m = max_magnitude() * 0.999;
        assert!(encode_fixed(m).is_ok());
        assert!(encode_fixed(-m).is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Round-trip error is bounded by half an ulp of the encoding.
        #[test]
        fn round_trip_error_bounded(x in -1e9f64..1e9) {
            let back = decode_fixed(encode_fixed(x).unwrap());
            prop_assert!((back - x).abs() <= 0.5 / SCALE + f64::EPSILON * x.abs());
        }

        /// Homomorphic addition over random pairs.
        #[test]
        fn homomorphic_add(a in -1e8f64..1e8, b in -1e8f64..1e8) {
            let sum = decode_fixed(encode_fixed(a).unwrap() + encode_fixed(b).unwrap());
            prop_assert!((sum - (a + b)).abs() <= 2.0 / SCALE);
        }
    }
}
