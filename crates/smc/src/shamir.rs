//! Shamir threshold secret sharing over `GF(2^61 − 1)`.
//!
//! The paper's proof-of-concept used MPyC, which is Shamir-based: a secret
//! is the constant term of a random degree-`t−1` polynomial and any `t`
//! of the `n` evaluation points reconstruct it by Lagrange interpolation.
//! The additive scheme in [`crate::share`] is what the federation's
//! release path uses (simpler, same honest-but-curious model); this module
//! provides the threshold scheme for deployments that need robustness to
//! dropped-out providers (`t < n` reconstruction).

use rand::Rng;

use crate::field::Fp;
use crate::{Result, SmcError};

/// One Shamir share: the evaluation point `x` (party index, never 0) and
/// the polynomial value `y = f(x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShamirShare {
    /// Evaluation point (1-based party index).
    pub x: u64,
    /// Share value `f(x)`.
    pub y: Fp,
}

/// Splits `secret` into `n` shares with reconstruction threshold `t`
/// (`1 ≤ t ≤ n`): any `t` shares reconstruct, any `t − 1` reveal nothing.
pub fn shamir_share<R: Rng + ?Sized>(
    rng: &mut R,
    secret: Fp,
    t: usize,
    n: usize,
) -> Result<Vec<ShamirShare>> {
    if n < 2 {
        return Err(SmcError::TooFewParties(n));
    }
    if t < 1 || t > n {
        return Err(SmcError::PartyMismatch { left: t, right: n });
    }
    // f(x) = secret + a_1 x + … + a_{t−1} x^{t−1}, a_i uniform.
    let coeffs: Vec<Fp> = std::iter::once(secret)
        .chain((1..t).map(|_| Fp::random(rng)))
        .collect();
    Ok((1..=n as u64)
        .map(|x| {
            // Horner evaluation at x.
            let xf = Fp::new(x);
            let mut y = Fp::ZERO;
            for &c in coeffs.iter().rev() {
                y = y * xf + c;
            }
            ShamirShare { x, y }
        })
        .collect())
}

/// Reconstructs the secret from at least `t` shares with **distinct**
/// evaluation points, by Lagrange interpolation at 0.
pub fn shamir_reconstruct(shares: &[ShamirShare]) -> Result<Fp> {
    if shares.is_empty() {
        return Err(SmcError::NoInputs);
    }
    for (i, a) in shares.iter().enumerate() {
        if a.x == 0 {
            return Err(SmcError::NotInvertible);
        }
        if shares[..i].iter().any(|b| b.x == a.x) {
            return Err(SmcError::PartyMismatch {
                left: a.x as usize,
                right: a.x as usize,
            });
        }
    }
    // secret = Σ_i y_i · ∏_{j≠i} x_j / (x_j − x_i)
    let mut secret = Fp::ZERO;
    for (i, si) in shares.iter().enumerate() {
        let mut num = Fp::ONE;
        let mut den = Fp::ONE;
        for (j, sj) in shares.iter().enumerate() {
            if i == j {
                continue;
            }
            num *= Fp::new(sj.x);
            den *= Fp::new(sj.x) - Fp::new(si.x);
        }
        secret += si.y * num * den.inverse()?;
    }
    Ok(secret)
}

/// Share-wise addition of two sharings over the same evaluation points:
/// `[x] + [y] = [x + y]` (degree unchanged).
pub fn shamir_add(a: &[ShamirShare], b: &[ShamirShare]) -> Result<Vec<ShamirShare>> {
    if a.len() != b.len() {
        return Err(SmcError::PartyMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    a.iter()
        .zip(b)
        .map(|(sa, sb)| {
            if sa.x != sb.x {
                return Err(SmcError::PartyMismatch {
                    left: sa.x as usize,
                    right: sb.x as usize,
                });
            }
            Ok(ShamirShare {
                x: sa.x,
                y: sa.y + sb.y,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_set_reconstructs() {
        let mut rng = StdRng::seed_from_u64(1);
        let secret = Fp::new(123_456_789);
        let shares = shamir_share(&mut rng, secret, 3, 5).unwrap();
        assert_eq!(shares.len(), 5);
        assert_eq!(shamir_reconstruct(&shares).unwrap(), secret);
    }

    #[test]
    fn any_threshold_subset_reconstructs() {
        let mut rng = StdRng::seed_from_u64(2);
        let secret = Fp::new(987_654);
        let shares = shamir_share(&mut rng, secret, 3, 5).unwrap();
        // All C(5,3) subsets.
        for i in 0..5 {
            for j in i + 1..5 {
                for k in j + 1..5 {
                    let subset = [shares[i], shares[j], shares[k]];
                    assert_eq!(shamir_reconstruct(&subset).unwrap(), secret);
                }
            }
        }
    }

    #[test]
    fn below_threshold_misreconstructs() {
        // With t = 3, two shares interpolate a line — overwhelmingly not
        // through the secret.
        let mut rng = StdRng::seed_from_u64(3);
        let secret = Fp::new(42);
        let mut hits = 0;
        for _ in 0..50 {
            let shares = shamir_share(&mut rng, secret, 3, 5).unwrap();
            if shamir_reconstruct(&shares[..2]).unwrap() == secret {
                hits += 1;
            }
        }
        assert!(hits <= 1, "threshold violated: {hits}/50 partial hits");
    }

    #[test]
    fn validates_parameters_and_duplicates() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(shamir_share(&mut rng, Fp::ONE, 0, 5).is_err());
        assert!(shamir_share(&mut rng, Fp::ONE, 6, 5).is_err());
        assert!(shamir_share(&mut rng, Fp::ONE, 2, 1).is_err());
        assert!(shamir_reconstruct(&[]).is_err());
        let s = ShamirShare { x: 1, y: Fp::ONE };
        assert!(shamir_reconstruct(&[s, s]).is_err());
        assert!(shamir_reconstruct(&[ShamirShare { x: 0, y: Fp::ONE }]).is_err());
    }

    #[test]
    fn additive_homomorphism() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Fp::new(1000);
        let b = Fp::new(337);
        let sa = shamir_share(&mut rng, a, 3, 4).unwrap();
        let sb = shamir_share(&mut rng, b, 3, 4).unwrap();
        let sum = shamir_add(&sa, &sb).unwrap();
        assert_eq!(shamir_reconstruct(&sum[..3]).unwrap(), a + b);
    }

    #[test]
    fn t_equals_one_is_replication() {
        let mut rng = StdRng::seed_from_u64(6);
        let secret = Fp::new(7);
        let shares = shamir_share(&mut rng, secret, 1, 3).unwrap();
        for s in &shares {
            assert_eq!(s.y, secret);
        }
        assert_eq!(shamir_reconstruct(&shares[..1]).unwrap(), secret);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Round-trips for arbitrary secrets, thresholds, party counts.
        #[test]
        fn round_trip(
            secret in any::<u64>(),
            n in 2usize..10,
            t_off in 0usize..8,
            seed in any::<u64>(),
        ) {
            let t = 1 + t_off % n;
            let mut rng = StdRng::seed_from_u64(seed);
            let s = Fp::new(secret);
            let shares = shamir_share(&mut rng, s, t, n).unwrap();
            prop_assert_eq!(shamir_reconstruct(&shares[..t]).unwrap(), s);
            prop_assert_eq!(shamir_reconstruct(&shares).unwrap(), s);
        }

        /// Homomorphic sums reconstruct for arbitrary pairs.
        #[test]
        fn homomorphic_sum(a in any::<u64>(), b in any::<u64>(), seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let fa = Fp::new(a);
            let fb = Fp::new(b);
            let sa = shamir_share(&mut rng, fa, 2, 4).unwrap();
            let sb = shamir_share(&mut rng, fb, 2, 4).unwrap();
            let sum = shamir_add(&sa, &sb).unwrap();
            prop_assert_eq!(shamir_reconstruct(&sum[1..3]).unwrap(), fa + fb);
        }
    }
}
