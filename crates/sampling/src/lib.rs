//! Sampling substrate for `fedaqp`.
//!
//! Implements the statistical machinery of §5.2–§5.3 plus the non-private
//! baselines the evaluation compares against:
//!
//! * [`pps`] — probability-proportional-to-size weights: `p_j = R_j / Σ R_i`
//!   (Eq. 1), the unequal-probability design driving cluster selection.
//! * [`em`] — `EM_sampling` (Algorithm 2): differentially private cluster
//!   selection through the Exponential mechanism with per-selection budget
//!   `ε_s = ε_S / s` and score sensitivity `Δp` (Thm. 5.2).
//! * [`hansen_hurwitz`] — the Hansen–Hurwitz estimator (Eq. 3)
//!   `E(Q, C_S^Q) = (1/N_S) Σ Q(C_i)/p_i` with its classical variance
//!   estimator for confidence reporting.
//! * [`uniform`] — uniform cluster sampling, Bernoulli row sampling, and
//!   reservoir sampling: the row-level / equal-probability baselines of §2
//!   and the ablation experiments.

pub mod em;
pub mod error;
pub mod hansen_hurwitz;
pub mod pps;
pub mod uniform;

pub use em::{em_sample, EmSample};
pub use error::SamplingError;
pub use hansen_hurwitz::{hh_confidence_halfwidth, hh_estimate, hh_variance, HansenHurwitz};
pub use pps::pps_probabilities;
pub use uniform::{bernoulli_sample, reservoir_sample, uniform_sample_with_replacement};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SamplingError>;
