//! Non-private sampling baselines (§2, §4; ablation experiments).

use rand::Rng;

use crate::{Result, SamplingError};

/// Uniform cluster sampling **with replacement**: `s` independent uniform
/// draws from `0..n`. The equal-probability counterpart of PPS sampling —
/// "unequal probability cluster sampling is more effective at providing
/// better estimates" (§4) is exactly what the PPS-vs-uniform ablation
/// quantifies against this baseline.
pub fn uniform_sample_with_replacement<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    s: usize,
) -> Result<Vec<usize>> {
    if n == 0 {
        return Err(SamplingError::EmptyPopulation);
    }
    if s == 0 {
        return Err(SamplingError::ZeroSampleSize);
    }
    Ok((0..s).map(|_| rng.gen_range(0..n)).collect())
}

/// Bernoulli (row-level) sampling: each of the `n` items is kept
/// independently with probability `rate`. Returns the kept indices.
///
/// This is the §2 "row-level random sampling" baseline whose full-scan
/// overhead motivates cluster sampling (Haas & König's observation that
/// Bernoulli sampling still scans the whole table — the returned index set
/// requires a pass over all `n` items by construction).
pub fn bernoulli_sample<R: Rng + ?Sized>(rng: &mut R, n: usize, rate: f64) -> Result<Vec<usize>> {
    if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
        return Err(SamplingError::InvalidRate(rate));
    }
    let mut kept = Vec::with_capacity((n as f64 * rate) as usize + 1);
    for i in 0..n {
        if rng.gen::<f64>() < rate {
            kept.push(i);
        }
    }
    Ok(kept)
}

/// Reservoir sampling (Vitter's Algorithm R): a uniform without-replacement
/// sample of `k` items from a stream of unknown length. Returns the chosen
/// indices in stream order of replacement.
pub fn reservoir_sample<R: Rng + ?Sized, I: Iterator>(
    rng: &mut R,
    stream: I,
    k: usize,
) -> Result<Vec<I::Item>> {
    if k == 0 {
        return Err(SamplingError::ZeroSampleSize);
    }
    let mut reservoir: Vec<I::Item> = Vec::with_capacity(k);
    for (i, item) in stream.enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    if reservoir.is_empty() {
        return Err(SamplingError::EmptyPopulation);
    }
    Ok(reservoir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_draws_cover_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = uniform_sample_with_replacement(&mut rng, 10, 1000).unwrap();
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|&i| i < 10));
        // Every index should appear with ~100 draws.
        for target in 0..10 {
            let c = s.iter().filter(|&&i| i == target).count();
            assert!(c > 50 && c < 160, "index {target} drawn {c} times");
        }
    }

    #[test]
    fn uniform_rejects_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            uniform_sample_with_replacement(&mut rng, 0, 5),
            Err(SamplingError::EmptyPopulation)
        ));
        assert!(matches!(
            uniform_sample_with_replacement(&mut rng, 5, 0),
            Err(SamplingError::ZeroSampleSize)
        ));
    }

    #[test]
    fn bernoulli_rate_controls_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let kept = bernoulli_sample(&mut rng, 100_000, 0.2).unwrap();
        let frac = kept.len() as f64 / 100_000.0;
        assert!((frac - 0.2).abs() < 0.01, "kept {frac}");
        // Indices ascending and unique by construction.
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bernoulli_edge_rates() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(bernoulli_sample(&mut rng, 100, 0.0).unwrap().is_empty());
        assert_eq!(bernoulli_sample(&mut rng, 100, 1.0).unwrap().len(), 100);
        assert!(bernoulli_sample(&mut rng, 100, 1.5).is_err());
        assert!(bernoulli_sample(&mut rng, 100, -0.1).is_err());
    }

    #[test]
    fn reservoir_is_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20usize;
        let k = 5usize;
        let trials = 40_000;
        let mut counts = vec![0u64; n];
        for _ in 0..trials {
            for &x in &reservoir_sample(&mut rng, 0..n, k).unwrap() {
                counts[x] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 0.06 * expected,
                "item {i}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn reservoir_short_stream_returns_all() {
        let mut rng = StdRng::seed_from_u64(5);
        let out = reservoir_sample(&mut rng, 0..3, 10).unwrap();
        assert_eq!(out.len(), 3);
        assert!(matches!(
            reservoir_sample(&mut rng, std::iter::empty::<u32>(), 2),
            Err(SamplingError::EmptyPopulation)
        ));
        assert!(matches!(
            reservoir_sample(&mut rng, 0..3, 0),
            Err(SamplingError::ZeroSampleSize)
        ));
    }
}
