//! The Hansen–Hurwitz estimator (Eq. 3 of the paper; Lohr, *Sampling:
//! Design and Analysis*, §6.2).
//!
//! For a with-replacement unequal-probability sample of `n` clusters with
//! draw probabilities `p_i` and per-cluster totals `Q(C_i)`:
//!
//! ```text
//! Ê = (1/n) Σ_{i=1..n} Q(C_i) / p_i
//! ```
//!
//! is unbiased for the population total `Σ_j Q(C_j)` whenever every cluster
//! with `Q(C_j) > 0` has `p_j > 0`.

use crate::{Result, SamplingError};

/// One drawn cluster: its query value and its draw probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HansenHurwitz {
    /// `Q(C_i)` — the exact aggregate over the sampled cluster.
    pub value: f64,
    /// `p_i` — the PPS draw probability of the cluster.
    pub probability: f64,
}

/// Point estimate `Ê` over the drawn clusters.
pub fn hh_estimate(draws: &[HansenHurwitz]) -> Result<f64> {
    if draws.is_empty() {
        return Err(SamplingError::EmptyPopulation);
    }
    let mut acc = 0.0f64;
    for (index, d) in draws.iter().enumerate() {
        if !(d.probability.is_finite() && d.probability > 0.0) {
            return Err(SamplingError::InvalidProbability {
                index,
                probability: d.probability,
            });
        }
        acc += d.value / d.probability;
    }
    Ok(acc / draws.len() as f64)
}

/// The classical unbiased variance estimator of the Hansen–Hurwitz total:
///
/// ```text
/// V̂(Ê) = 1/(n(n−1)) Σ (Q(C_i)/p_i − Ê)²
/// ```
///
/// Takes the point estimate precomputed by [`hh_estimate`] (callers always
/// have it; recomputing it here doubled the divisions and could disagree
/// with the caller's value). Returns `None` for fewer than two draws: a
/// single draw carries no variance information, and the old `0.0` return
/// was indistinguishable from a genuine zero-variance sample — callers
/// must treat the confidence interval as unknown, not as exact.
pub fn hh_variance(draws: &[HansenHurwitz], estimate: f64) -> Option<f64> {
    let n = draws.len();
    if n < 2 {
        return None;
    }
    let ss: f64 = draws
        .iter()
        .map(|d| {
            let t = d.value / d.probability - estimate;
            t * t
        })
        .sum();
    Some(ss / (n as f64 * (n as f64 - 1.0)))
}

/// 95% confidence half-width of the estimate: `1.96·√V̂`. `None` whenever
/// the variance is inestimable ([`hh_variance`] on fewer than two draws).
pub fn hh_confidence_halfwidth(variance: Option<f64>) -> Option<f64> {
    variance.map(|v| 1.96 * v.max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_when_probabilities_proportional() {
        // If p_i is exactly proportional to Q(C_i), every draw estimates the
        // total with zero variance.
        let totals = [10.0, 30.0, 60.0];
        let sum: f64 = totals.iter().sum();
        let draws: Vec<HansenHurwitz> = totals
            .iter()
            .map(|&v| HansenHurwitz {
                value: v,
                probability: v / sum,
            })
            .collect();
        for d in &draws {
            assert!((hh_estimate(&[*d]).unwrap() - sum).abs() < 1e-9);
        }
        let estimate = hh_estimate(&draws).unwrap();
        assert!(hh_variance(&draws, estimate).unwrap() < 1e-9);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(matches!(
            hh_estimate(&[]),
            Err(SamplingError::EmptyPopulation)
        ));
        assert!(matches!(
            hh_estimate(&[HansenHurwitz {
                value: 1.0,
                probability: 0.0
            }]),
            Err(SamplingError::InvalidProbability { index: 0, .. })
        ));
        assert!(hh_estimate(&[HansenHurwitz {
            value: 1.0,
            probability: f64::NAN
        }])
        .is_err());
    }

    #[test]
    fn unbiased_under_pps_draws() {
        // Monte-Carlo: average of many estimates converges to the total.
        let totals = [5.0, 10.0, 20.0, 40.0, 25.0];
        let population_total: f64 = totals.iter().sum();
        // Deliberately *not* proportional probabilities.
        let probs = [0.3, 0.1, 0.2, 0.15, 0.25];
        let mut rng = StdRng::seed_from_u64(9);
        let n_trials = 40_000;
        let mut acc = 0.0;
        for _ in 0..n_trials {
            // Draw 3 clusters with replacement according to probs.
            let mut draws = Vec::with_capacity(3);
            for _ in 0..3 {
                let u: f64 = rng.gen();
                let mut cum = 0.0;
                let mut idx = probs.len() - 1;
                for (i, &p) in probs.iter().enumerate() {
                    cum += p;
                    if u < cum {
                        idx = i;
                        break;
                    }
                }
                draws.push(HansenHurwitz {
                    value: totals[idx],
                    probability: probs[idx],
                });
            }
            acc += hh_estimate(&draws).unwrap();
        }
        let mean = acc / n_trials as f64;
        assert!(
            (mean - population_total).abs() < 0.01 * population_total,
            "mean {mean} vs total {population_total}"
        );
    }

    #[test]
    fn variance_shrinks_with_sample_size() {
        let totals = [5.0, 10.0, 20.0, 40.0];
        let probs = [0.25, 0.25, 0.25, 0.25];
        let mut rng = StdRng::seed_from_u64(4);
        let emp_var = |n: usize, rng: &mut StdRng| {
            let trials = 4_000;
            let mut ests = Vec::with_capacity(trials);
            for _ in 0..trials {
                let draws: Vec<HansenHurwitz> = (0..n)
                    .map(|_| {
                        let idx = rng.gen_range(0..4);
                        HansenHurwitz {
                            value: totals[idx],
                            probability: probs[idx],
                        }
                    })
                    .collect();
                ests.push(hh_estimate(&draws).unwrap());
            }
            let m = ests.iter().sum::<f64>() / trials as f64;
            ests.iter().map(|e| (e - m) * (e - m)).sum::<f64>() / trials as f64
        };
        let v2 = emp_var(2, &mut rng);
        let v16 = emp_var(16, &mut rng);
        assert!(v16 < v2, "v16 {v16} should be below v2 {v2}");
    }

    #[test]
    fn variance_estimator_tracks_empirical_variance() {
        let totals = [5.0, 50.0];
        let probs = [0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(21);
        let trials = 20_000;
        let n = 8;
        let mut est_vars = 0.0;
        let mut ests = Vec::with_capacity(trials);
        for _ in 0..trials {
            let draws: Vec<HansenHurwitz> = (0..n)
                .map(|_| {
                    let idx = rng.gen_range(0..2);
                    HansenHurwitz {
                        value: totals[idx],
                        probability: probs[idx],
                    }
                })
                .collect();
            let estimate = hh_estimate(&draws).unwrap();
            ests.push(estimate);
            est_vars += hh_variance(&draws, estimate).unwrap();
        }
        let mean_est_var = est_vars / trials as f64;
        let m = ests.iter().sum::<f64>() / trials as f64;
        let emp_var = ests.iter().map(|e| (e - m) * (e - m)).sum::<f64>() / trials as f64;
        assert!(
            (mean_est_var - emp_var).abs() < 0.1 * emp_var,
            "estimated {mean_est_var} vs empirical {emp_var}"
        );
    }

    #[test]
    fn single_draw_variance_is_inestimable() {
        // Regression: a single draw used to report variance 0.0 —
        // indistinguishable from a genuinely zero-variance sample and
        // turning the CI into a confident lie. It is now `None`.
        let d = [HansenHurwitz {
            value: 3.0,
            probability: 0.5,
        }];
        let estimate = hh_estimate(&d).unwrap();
        assert_eq!(hh_variance(&d, estimate), None);
        assert_eq!(hh_variance(&[], 0.0), None);
        assert_eq!(hh_confidence_halfwidth(None), None);
        // Two identical draws: genuine zero variance, genuine zero CI.
        let dd = [d[0], d[0]];
        let estimate = hh_estimate(&dd).unwrap();
        assert_eq!(hh_variance(&dd, estimate), Some(0.0));
        assert_eq!(hh_confidence_halfwidth(Some(0.0)), Some(0.0));
        // Half-width is 1.96·√V.
        assert!((hh_confidence_halfwidth(Some(4.0)).unwrap() - 3.92).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The estimate is finite and scale-equivariant: scaling all values
        /// by c scales the estimate by c.
        #[test]
        fn scale_equivariance(
            draws in proptest::collection::vec((0.0f64..1e6, 1e-6f64..1.0), 1..64),
            c in 0.1f64..100.0,
        ) {
            let base: Vec<HansenHurwitz> = draws
                .iter()
                .map(|&(v, p)| HansenHurwitz { value: v, probability: p })
                .collect();
            let scaled: Vec<HansenHurwitz> = draws
                .iter()
                .map(|&(v, p)| HansenHurwitz { value: v * c, probability: p })
                .collect();
            let e0 = hh_estimate(&base).unwrap();
            let e1 = hh_estimate(&scaled).unwrap();
            prop_assert!((e1 - c * e0).abs() <= 1e-9 * e1.abs().max(1.0));
        }
    }
}
