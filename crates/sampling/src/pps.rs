//! Probability-proportional-to-size sampling weights (Eq. 1).

use crate::{Result, SamplingError};

/// Converts per-cluster proportions `R̂ = {R_1, …, R_{N^Q}}` into sampling
/// probabilities `p_j = R_j / Σ R_i` (Eq. 1).
///
/// When every proportion is zero (a query whose covering clusters carry no
/// estimated mass — possible because pruning uses min/max boxes while `R`
/// uses exact tails), the distribution degrades to uniform so that sampling
/// and estimation remain well-defined; the estimator then sees genuinely
/// uniform inclusion probabilities.
pub fn pps_probabilities(proportions: &[f64]) -> Result<Vec<f64>> {
    if proportions.is_empty() {
        return Err(SamplingError::EmptyPopulation);
    }
    let mut total = 0.0f64;
    for (index, &w) in proportions.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(SamplingError::InvalidWeight { index, weight: w });
        }
        total += w;
    }
    let n = proportions.len() as f64;
    if total <= 0.0 {
        return Ok(vec![1.0 / n; proportions.len()]);
    }
    Ok(proportions.iter().map(|&w| w / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_weights() {
        let p = pps_probabilities(&[1.0, 3.0]).unwrap();
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_mass_degrades_to_uniform() {
        let p = pps_probabilities(&[0.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(p.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            pps_probabilities(&[]),
            Err(SamplingError::EmptyPopulation)
        ));
        assert!(matches!(
            pps_probabilities(&[0.5, -0.1]),
            Err(SamplingError::InvalidWeight { index: 1, .. })
        ));
        assert!(pps_probabilities(&[f64::NAN]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Output is always a probability distribution.
        #[test]
        fn is_distribution(ws in proptest::collection::vec(0.0f64..1e6, 1..256)) {
            let p = pps_probabilities(&ws).unwrap();
            prop_assert_eq!(p.len(), ws.len());
            prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }

        /// Probabilities preserve the ordering of the weights.
        #[test]
        fn order_preserving(ws in proptest::collection::vec(0.0f64..1e3, 2..64)) {
            let p = pps_probabilities(&ws).unwrap();
            for i in 0..ws.len() {
                for j in 0..ws.len() {
                    if ws[i] > ws[j] {
                        prop_assert!(p[i] >= p[j]);
                    }
                }
            }
        }
    }
}
