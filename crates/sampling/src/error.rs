//! Error type for the sampling substrate.

use std::fmt;

use fedaqp_dp::DpError;

/// Errors raised by sampling and estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingError {
    /// The population to sample from was empty.
    EmptyPopulation,
    /// A PPS weight was negative or non-finite.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
        /// The offending weight.
        weight: f64,
    },
    /// A sample of size zero was requested.
    ZeroSampleSize,
    /// A sample carried no per-draw probabilities: the estimator cannot
    /// calibrate (or floor) its divisor against an empty distribution.
    EmptyDrawProbabilities,
    /// The estimator met a zero or non-finite inclusion probability.
    InvalidProbability {
        /// Index of the offending probability.
        index: usize,
        /// The offending probability.
        probability: f64,
    },
    /// A Bernoulli rate was outside `[0, 1]`.
    InvalidRate(f64),
    /// Propagated DP-mechanism error.
    Dp(DpError),
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::EmptyPopulation => write!(f, "cannot sample from an empty population"),
            SamplingError::InvalidWeight { index, weight } => {
                write!(f, "weight {weight} at index {index} is invalid")
            }
            SamplingError::ZeroSampleSize => write!(f, "sample size must be positive"),
            SamplingError::EmptyDrawProbabilities => {
                write!(f, "sample carries no per-draw probabilities")
            }
            SamplingError::InvalidProbability { index, probability } => {
                write!(
                    f,
                    "inclusion probability {probability} at index {index} is invalid"
                )
            }
            SamplingError::InvalidRate(r) => write!(f, "Bernoulli rate {r} outside [0, 1]"),
            SamplingError::Dp(e) => write!(f, "dp error: {e}"),
        }
    }
}

impl std::error::Error for SamplingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SamplingError::Dp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DpError> for SamplingError {
    fn from(e: DpError) -> Self {
        SamplingError::Dp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SamplingError::EmptyPopulation.to_string().contains("empty"));
        assert!(SamplingError::InvalidWeight {
            index: 3,
            weight: -1.0
        }
        .to_string()
        .contains("-1"));
        let e: SamplingError = DpError::EmptyCandidates.into();
        assert!(e.to_string().contains("dp error"));
    }
}
