//! `EM_sampling` — differentially private cluster selection (Algorithm 2).

use fedaqp_dp::ExponentialMechanism;
use rand::Rng;

use crate::pps::pps_probabilities;
use crate::{Result, SamplingError};

/// Output of [`em_sample`]: the selected cluster positions plus both
/// probability views of the draw.
///
/// Algorithm 2 returns `C_S^Q` *and* `P`: the paper's Eq. 3 divides each
/// Hansen–Hurwitz contribution by the raw PPS probability `p_i`, but the
/// distribution the sampler *actually* drew from is the Exponential
/// mechanism's softmax of `ε_s·p_j/(2Δp)` — so the calibrated estimator
/// divides by [`EmSample::em_probabilities`] instead, which is what makes
/// it unbiased under its own sampling distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct EmSample {
    /// Indices into the covering set, one per selection (with replacement).
    pub chosen: Vec<usize>,
    /// PPS probabilities `p_j = R_j / Σ R_i` for the whole covering set.
    pub pps: Vec<f64>,
    /// The Exponential mechanism's exact per-draw selection probabilities
    /// (softmax of `ε_s·p_j/(2Δp)`). The calibrated estimator divides by
    /// these directly; the paper-faithful PPS estimator uses their minimum
    /// as a floor for the PPS divisor, since no cluster was ever drawn with
    /// lower probability than this.
    pub em_probabilities: Vec<f64>,
}

impl EmSample {
    /// The smallest probability with which any cluster could be drawn.
    ///
    /// Errors with [`SamplingError::EmptyDrawProbabilities`] when the
    /// sample carries no distribution at all: folding an empty slice
    /// would yield `+∞`, silently driving every Hansen–Hurwitz
    /// contribution divided by it to zero.
    pub fn min_draw_probability(&self) -> Result<f64> {
        let min = self
            .em_probabilities
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if !min.is_finite() {
            return Err(SamplingError::EmptyDrawProbabilities);
        }
        Ok(min.max(f64::MIN_POSITIVE))
    }
}

/// Algorithm 2: selects `s` clusters from the covering set with per-cluster
/// scores equal to their PPS probabilities, spending `eps_s_total` in total
/// (`ε_s = ε_S / s` per selection) against score sensitivity `delta_p`
/// (Thm. 5.2: `Δp = 1/(N_min·(N_min+1))`).
///
/// Selections are drawn **with replacement**, matching the Hansen–Hurwitz
/// estimator downstream.
pub fn em_sample<R: Rng + ?Sized>(
    rng: &mut R,
    proportions: &[f64],
    s: usize,
    eps_s_total: f64,
    delta_p: f64,
) -> Result<EmSample> {
    if s == 0 {
        return Err(SamplingError::ZeroSampleSize);
    }
    let pps = pps_probabilities(proportions)?;
    let eps_per_selection = eps_s_total / s as f64;
    let mechanism = ExponentialMechanism::new(&pps, delta_p, eps_per_selection)?;
    let chosen = mechanism.select_many(rng, s);
    let em_probabilities = mechanism.probabilities();
    Ok(EmSample {
        chosen,
        pps,
        em_probabilities,
    })
}

/// The score sensitivity `Δp` of Thm. 5.2 for a provider threshold
/// `N_min`: `Δp = 1 / (N_min · (N_min + 1))`.
///
/// Derived from Eq. 7 by replacing the query-dependent `N^Q` with its
/// smallest admissible value (queries with `N^Q < N_min` are answered
/// exactly, never sampled).
pub fn delta_p(n_min: usize) -> f64 {
    let n = n_min.max(1) as f64;
    1.0 / (n * (n + 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn delta_p_formula() {
        assert!((delta_p(10) - 1.0 / 110.0).abs() < 1e-15);
        assert!((delta_p(1) - 0.5).abs() < 1e-15);
        // Guard against zero.
        assert!(delta_p(0).is_finite());
    }

    #[test]
    fn returns_requested_sample_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = em_sample(&mut rng, &[0.1, 0.2, 0.7], 5, 0.1, delta_p(10)).unwrap();
        assert_eq!(out.chosen.len(), 5);
        assert!(out.chosen.iter().all(|&i| i < 3));
        assert_eq!(out.pps.len(), 3);
        assert!((out.pps.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_zero_sample_and_empty_population() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            em_sample(&mut rng, &[0.5], 0, 0.1, 0.01),
            Err(SamplingError::ZeroSampleSize)
        ));
        assert!(matches!(
            em_sample(&mut rng, &[], 1, 0.1, 0.01),
            Err(SamplingError::EmptyPopulation)
        ));
    }

    #[test]
    fn biased_toward_heavy_clusters() {
        // With a loose privacy budget, the EM distribution should visibly
        // favour the cluster holding most of the query mass.
        let mut rng = StdRng::seed_from_u64(7);
        let props = [0.01, 0.01, 0.9];
        let mut counts = [0u64; 3];
        for _ in 0..2_000 {
            let out = em_sample(&mut rng, &props, 1, 5.0, delta_p(2)).unwrap();
            counts[out.chosen[0]] += 1;
        }
        assert!(
            counts[2] > counts[0] && counts[2] > counts[1],
            "counts {counts:?}"
        );
    }

    #[test]
    fn tiny_budget_approaches_uniform() {
        // ε_s → 0 flattens the EM distribution regardless of scores.
        let mut rng = StdRng::seed_from_u64(7);
        let props = [0.01, 0.01, 0.9];
        let mut counts = [0u64; 3];
        let n = 30_000;
        for _ in 0..n {
            let out = em_sample(&mut rng, &props, 1, 1e-9, delta_p(10)).unwrap();
            counts[out.chosen[0]] += 1;
        }
        for c in counts {
            let freq = c as f64 / n as f64;
            assert!((freq - 1.0 / 3.0).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn budget_split_across_selections() {
        // s selections at ε_S/s each: more selections ⇒ flatter per-draw
        // distribution. Verify the per-draw bias shrinks as s grows.
        let props = [0.05, 0.95];
        let n = 20_000;
        let freq_heavy = |s: usize, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut heavy = 0u64;
            let mut total = 0u64;
            for _ in 0..n / s {
                let out = em_sample(&mut rng, &props, s, 2.0, delta_p(2)).unwrap();
                heavy += out.chosen.iter().filter(|&&i| i == 1).count() as u64;
                total += s as u64;
            }
            heavy as f64 / total as f64
        };
        let f1 = freq_heavy(1, 3);
        let f8 = freq_heavy(8, 4);
        assert!(f1 > f8, "bias with s=1 ({f1}) should exceed s=8 ({f8})");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = em_sample(&mut StdRng::seed_from_u64(5), &[0.2, 0.8], 10, 0.5, 0.01).unwrap();
        let b = em_sample(&mut StdRng::seed_from_u64(5), &[0.2, 0.8], 10, 0.5, 0.01).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn min_draw_probability_rejects_empty_distribution() {
        // Regression: the old implementation folded an empty slice to +∞
        // (`.max(f64::MIN_POSITIVE)` does not clamp infinity), which would
        // silently zero every Hansen–Hurwitz contribution downstream.
        let sample = EmSample {
            chosen: vec![],
            pps: vec![],
            em_probabilities: vec![],
        };
        assert_eq!(
            sample.min_draw_probability(),
            Err(SamplingError::EmptyDrawProbabilities)
        );
        let ok = EmSample {
            chosen: vec![0],
            pps: vec![1.0],
            em_probabilities: vec![0.25, 0.75],
        };
        assert_eq!(ok.min_draw_probability(), Ok(0.25));
    }

    /// The calibrated estimator — each draw divided by the probability the
    /// EM *actually* assigned it — is unbiased under the EM's own draw
    /// distribution, across budgets where that distribution ranges from
    /// near-PPS to near-uniform. Dividing by the raw PPS probability
    /// (Eq. 3) is not: at tight per-draw budgets its bias is visible in
    /// the same Monte-Carlo average.
    #[test]
    fn calibrated_estimator_unbiased_under_em_draws() {
        use crate::hansen_hurwitz::{hh_estimate, HansenHurwitz};
        let totals = [5.0, 10.0, 20.0, 40.0, 25.0];
        let population_total: f64 = totals.iter().sum();
        // Proportions deliberately *misaligned* with the totals (as the
        // metadata approximation produces in practice): a divisor that is
        // not the true draw probability cannot hide behind Q_i ∝ p_i.
        let props = [0.35, 0.05, 0.20, 0.15, 0.25];
        for (case, (eps_s_total, s)) in [(2.0, 2), (1.0, 4), (0.05, 8)].iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(31 + case as u64);
            let trials = 8_000;
            let mut acc = 0.0;
            for _ in 0..trials {
                let sample = em_sample(&mut rng, &props, *s, *eps_s_total, delta_p(4)).unwrap();
                let draws: Vec<HansenHurwitz> = sample
                    .chosen
                    .iter()
                    .map(|&pos| HansenHurwitz {
                        value: totals[pos],
                        probability: sample.em_probabilities[pos],
                    })
                    .collect();
                acc += hh_estimate(&draws).unwrap();
            }
            let mean = acc / trials as f64;
            assert!(
                (mean - population_total).abs() < 0.05 * population_total,
                "case {case}: mean {mean} vs total {population_total}"
            );
        }
    }

    /// The same Monte-Carlo with the paper's Eq. 3 divisor shows the bias
    /// the calibration removes: at a tight per-draw budget the EM draws
    /// near-uniformly, while dividing by PPS still over-weights rare
    /// clusters and under-weights heavy ones.
    #[test]
    fn pps_divisor_is_biased_under_flattened_em_draws() {
        use crate::hansen_hurwitz::{hh_estimate, HansenHurwitz};
        let totals = [5.0, 10.0, 20.0, 40.0, 25.0];
        let population_total: f64 = totals.iter().sum();
        let props = [0.35, 0.05, 0.20, 0.15, 0.25];
        let mut rng = StdRng::seed_from_u64(77);
        let trials = 8_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            // ε_s = 0.05/8 per draw: the draw distribution is ~uniform.
            let sample = em_sample(&mut rng, &props, 8, 0.05, delta_p(4)).unwrap();
            let draws: Vec<HansenHurwitz> = sample
                .chosen
                .iter()
                .map(|&pos| HansenHurwitz {
                    value: totals[pos],
                    probability: sample.pps[pos],
                })
                .collect();
            acc += hh_estimate(&draws).unwrap();
        }
        let mean = acc / trials as f64;
        assert!(
            (mean - population_total).abs() > 0.2 * population_total,
            "Eq. 3 divisor unexpectedly unbiased under uniform-ish draws: \
             mean {mean} vs total {population_total}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Sampling never yields out-of-range indices and always honours `s`.
        #[test]
        fn indices_in_range(
            props in proptest::collection::vec(0.0f64..1.0, 1..64),
            s in 1usize..32,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = em_sample(&mut rng, &props, s, 0.1, delta_p(10)).unwrap();
            prop_assert_eq!(out.chosen.len(), s);
            prop_assert!(out.chosen.iter().all(|&i| i < props.len()));
        }

        /// Monte-Carlo unbiasedness of the *calibrated* estimator across
        /// random seeds, budgets, and sample sizes: dividing each draw by
        /// its exact EM probability keeps the Hansen–Hurwitz mean on the
        /// population total. The acceptance band scales with the empirical
        /// standard error so tight budgets (heavier-tailed `Q/q`) are held
        /// to a statistically fair bar rather than a fixed one. The budget
        /// range keeps the per-draw ε_s moderate: past that the EM
        /// concentrates so hard that the expectation is carried by draws
        /// too rare for 1.5k trials to sample (and for the empirical SE to
        /// see) — a Monte-Carlo artefact, not an estimator property.
        #[test]
        fn calibrated_estimator_unbiased_across_seeds_and_budgets(
            seed in any::<u64>(),
            eps_s_total in 0.05f64..1.5,
            s in 2usize..9,
        ) {
            use crate::hansen_hurwitz::{hh_estimate, HansenHurwitz};
            let totals = [5.0, 10.0, 20.0, 40.0, 25.0];
            let population_total: f64 = totals.iter().sum();
            let props = [0.35, 0.05, 0.20, 0.15, 0.25];
            let mut rng = StdRng::seed_from_u64(seed);
            let trials = 1_500;
            let mut estimates = Vec::with_capacity(trials);
            for _ in 0..trials {
                let sample = em_sample(&mut rng, &props, s, eps_s_total, delta_p(4)).unwrap();
                let draws: Vec<HansenHurwitz> = sample
                    .chosen
                    .iter()
                    .map(|&pos| HansenHurwitz {
                        value: totals[pos],
                        probability: sample.em_probabilities[pos],
                    })
                    .collect();
                estimates.push(hh_estimate(&draws).unwrap());
            }
            let mean = estimates.iter().sum::<f64>() / trials as f64;
            let var = estimates.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>()
                / (trials - 1) as f64;
            let se = (var / trials as f64).sqrt();
            prop_assert!(
                (mean - population_total).abs() < 6.0 * se + 0.01 * population_total,
                "mean {} vs total {} (se {})", mean, population_total, se
            );
        }
    }
}
