//! Statistical privacy/mechanism invariants across the whole stack.

use fedaqp::core::{
    ConcurrentSession, Federation, FederationConfig, FederationEngine, QueryBatch, QueryPlan,
    SessionPlan,
};
use fedaqp::data::{partition_rows, AmazonConfig, AmazonSynth, PartitionMode};
use fedaqp::dp::QueryBudget;
use fedaqp::model::{Aggregate, QueryBuilder, RangeQuery, Row};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn federation(seed: u64, epsilon: f64) -> (Federation, Vec<Row>) {
    let dataset = AmazonSynth::generate(AmazonConfig {
        n_rows: 15_000,
        seed,
    })
    .expect("dataset");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00);
    let partitions = partition_rows(&mut rng, dataset.cells.clone(), 4, &PartitionMode::Equal)
        .expect("partitioning");
    let mut cfg = FederationConfig::paper_default(64);
    cfg.seed = seed;
    cfg.epsilon = epsilon;
    cfg.cost_model = fedaqp::smc::CostModel::zero();
    let fed = Federation::build(cfg, dataset.schema.clone(), partitions).expect("federation");
    (fed, dataset.cells)
}

fn demo_query(fed: &Federation) -> RangeQuery {
    QueryBuilder::new(fed.schema(), Aggregate::Sum)
        .range("rating", 2, 5)
        .expect("range")
        .range("week", 20, 180)
        .expect("range")
        .build()
        .expect("query")
}

/// The released value must differ from the raw estimate (noise is actually
/// injected) yet centre on it across repetitions.
#[test]
fn release_noise_is_centered() {
    let (mut fed, _) = federation(1, 2.0);
    let q = demo_query(&fed);
    let trials = 120;
    let mut noise_sum = 0.0;
    let mut any_nonzero = false;
    for _ in 0..trials {
        let ans = fed.run(&q, 0.2).expect("run");
        let noise = ans.value - ans.raw_estimate;
        noise_sum += noise;
        if noise.abs() > 1e-9 {
            any_nonzero = true;
        }
    }
    assert!(any_nonzero, "no noise was ever injected");
    let mean_noise = noise_sum / trials as f64;
    // Mean noise ≈ 0; the scale depends on smooth sensitivity, so compare
    // against the observed spread rather than a fixed constant.
    let mut sq = 0.0;
    for _ in 0..trials {
        let ans = fed.run(&q, 0.2).expect("run");
        let noise = ans.value - ans.raw_estimate;
        sq += noise * noise;
    }
    let std = (sq / trials as f64).sqrt();
    assert!(
        mean_noise.abs() < 0.5 * std + 1.0,
        "mean noise {mean_noise} vs std {std}"
    );
}

/// Noise magnitude scales like 1/ε: quartering ε must visibly widen the
/// noise distribution.
#[test]
fn noise_scales_inversely_with_epsilon() {
    let spread = |epsilon: f64| {
        let (mut fed, _) = federation(2, epsilon);
        let q = demo_query(&fed);
        let trials = 80;
        let mut acc = 0.0;
        for _ in 0..trials {
            let ans = fed.run(&q, 0.2).expect("run");
            acc += (ans.value - ans.raw_estimate).abs();
        }
        acc / trials as f64
    };
    let tight = spread(4.0);
    let loose = spread(0.5);
    assert!(
        loose > 2.0 * tight,
        "spread at eps=0.5 ({loose}) should dwarf eps=4 ({tight})"
    );
}

/// The allocation-phase summaries are perturbed: two federations over the
/// *same* data with different seeds produce different allocations at least
/// sometimes, and the allocation respects the global budget.
#[test]
fn summaries_are_noisy_but_allocations_feasible() {
    // One federation, repeated identical queries: the provider RNGs advance
    // between queries, so the Laplace-perturbed summaries — and hence the
    // allocations — must vary across runs while staying feasible.
    let (mut fed, _) = federation(3, 1.0);
    let q = demo_query(&fed);
    let mut distinct = false;
    let mut reference: Option<Vec<u64>> = None;
    for _ in 0..8 {
        let ans = fed.run(&q, 0.2).expect("run");
        let total: u64 = ans.allocations.iter().sum();
        assert!(total >= 4, "every provider gets at least one cluster");
        match &reference {
            None => reference = Some(ans.allocations.clone()),
            Some(r) => {
                if *r != ans.allocations {
                    distinct = true;
                }
            }
        }
    }
    assert!(
        distinct,
        "allocations identical across noisy runs — summary noise missing?"
    );
}

/// Per-query privacy cost equals ε_O + ε_S + ε_E regardless of path.
#[test]
fn query_cost_is_phase_sum() {
    let budget = QueryBudget::paper_split(1.4, 1e-3).expect("budget");
    assert!((budget.eps_o + budget.eps_s + budget.eps_e - 1.4).abs() < 1e-12);
    let (mut fed, _) = federation(4, 1.4);
    let q = demo_query(&fed);
    let ans = fed.run_with_budget(&q, 0.2, &budget).expect("run");
    assert!((ans.cost.eps - 1.4).abs() < 1e-12);
    assert_eq!(ans.cost.delta, 1e-3);
}

/// Smooth sensitivities are strictly positive on the approximate path and
/// grow no faster than the per-provider covering-set size allows.
#[test]
fn smooth_sensitivities_are_sane() {
    let (mut fed, _) = federation(5, 1.0);
    let q = demo_query(&fed);
    let ans = fed.run(&q, 0.2).expect("run");
    assert_eq!(ans.smooth_ls.len(), 4);
    for &s in &ans.smooth_ls {
        assert!(s.is_finite() && s > 0.0, "smooth sensitivity {s}");
    }
}

/// Concurrency privacy invariant: N analyst threads hammering one session
/// through the concurrent engine can never drive the accountant past the
/// session's `(ξ, ψ)` — the check-and-charge is atomic, so exactly
/// `⌊ξ/ε⌋` of the racing queries get answered and the rest are rejected
/// before any provider touches data.
#[test]
fn concurrent_session_never_overspends_budget() {
    let (fed, _) = federation(8, 1.0);
    let engine = FederationEngine::start(fed);
    let session =
        ConcurrentSession::open(engine.handle(), 5.0, 1e-2, SessionPlan::PayAsYouGo).unwrap();
    // 8 threads × 3 attempts = 24 queries racing for ⌊ξ/ε⌋ = 5 slots.
    let answered: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let session = session.clone();
                scope.spawn(move || {
                    let mut ok = 0u64;
                    for _ in 0..3 {
                        let q = demo_query_for(session.handle().schema());
                        if session.query(&q, 0.2).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(answered, 5, "exactly ξ/ε queries may be answered");
    assert_eq!(session.queries_answered(), 5);
    assert!(session.spent().eps <= 5.0 + 1e-9, "ε overspent");
    assert!(session.spent().delta <= 1e-2 + 1e-9, "δ overspent");
    assert!(!session.can_query());
    engine.shutdown();
}

/// Online plans are fail-closed on the budget ledger: the whole k-round
/// sequential-composition cost is validated and charged atomically before
/// round 1 samples anything. A session that cannot afford the full plan
/// answers *no* round — a partial progressive release would leak rounds
/// the ledger never covered — and the rejection costs nothing.
#[test]
fn online_plans_charge_their_whole_cost_up_front_or_not_at_all() {
    let (fed, _) = federation(10, 1.0);
    let engine = FederationEngine::start(fed);
    let session =
        ConcurrentSession::open(engine.handle(), 2.0, 1e-2, SessionPlan::PayAsYouGo).unwrap();
    let q = demo_query_for(session.handle().schema());
    let plan = |epsilon: f64| QueryPlan::Online {
        query: q.clone(),
        sampling_rate: 0.2,
        epsilon,
        delta: 1e-3,
        rounds: 4,
    };

    // Affordable: the whole 1.5ε is on the ledger before round 1 resolves.
    let pending = session.submit_plan(&plan(1.5)).unwrap();
    assert!((session.spent().eps - 1.5).abs() < 1e-9);
    let answer = pending.wait().unwrap();
    assert_eq!(answer.snapshots().map(<[_]>::len), Some(4));
    assert!((session.spent().eps - 1.5).abs() < 1e-9, "cost drifted");

    // Unaffordable (0.5ε left, the plan declares 1.0ε): rejected before
    // any round touches data, ledger untouched.
    assert!(session.submit_plan(&plan(1.0)).is_err());
    assert!((session.spent().eps - 1.5).abs() < 1e-9);

    // The remaining 0.5ε still buys an exactly-affordable plan — the
    // rejection above closed nothing it shouldn't have.
    let answer = session.run_plan(&plan(0.5)).unwrap();
    assert_eq!(answer.snapshots().map(<[_]>::len), Some(4));
    assert!((session.spent().eps - 2.0).abs() < 1e-9);
    assert!(session.submit_plan(&plan(0.1)).is_err(), "ξ is exhausted");
    engine.shutdown();
}

fn demo_query_for(schema: &fedaqp::model::Schema) -> RangeQuery {
    QueryBuilder::new(schema, Aggregate::Sum)
        .range("rating", 2, 5)
        .expect("range")
        .range("week", 20, 180)
        .expect("range")
        .build()
        .expect("query")
}

/// Determinism invariant: a seeded `QueryBatch` returns bit-identical
/// answers whether its queries run one at a time or all concurrently —
/// every `(query, provider)` pair derives its own RNG, so noise cannot
/// depend on how queries interleave on the shared providers.
#[test]
fn seeded_batch_identical_serial_vs_concurrent() {
    let batch_for = |fed: &Federation| {
        let mut batch = QueryBatch::new();
        for i in 0..6 {
            let q = QueryBuilder::new(fed.schema(), Aggregate::Count)
                .range("rating", 1, 4)
                .expect("range")
                .range("week", 10 + 5 * i, 150 + 10 * i)
                .expect("range")
                .build()
                .expect("query");
            batch.push(q, 0.15);
        }
        batch
    };
    let (fed_a, _) = federation(9, 1.0);
    let (fed_b, _) = federation(9, 1.0);
    let serial: Vec<_> = fed_a
        .with_engine(|engine| engine.run_batch_serial(&batch_for(&fed_a)))
        .into_iter()
        .map(|r| r.expect("serial batch"))
        .collect();
    let concurrent: Vec<_> = fed_b
        .with_engine(|engine| engine.run_batch(&batch_for(&fed_b)))
        .into_iter()
        .map(|r| r.expect("concurrent batch"))
        .collect();
    assert_eq!(serial.len(), concurrent.len());
    for (a, b) in serial.iter().zip(&concurrent) {
        assert_eq!(
            a.value, b.value,
            "released value must not depend on interleaving"
        );
        assert_eq!(a.allocations, b.allocations);
        assert_eq!(a.raw_estimate, b.raw_estimate);
        assert_eq!(a.smooth_ls, b.smooth_ls);
        assert_eq!(a.cost.eps, b.cost.eps);
    }
}

/// Queries outside the schema or with invalid rates are rejected without
/// consuming anything.
#[test]
fn invalid_queries_rejected_cleanly() {
    let (mut fed, _) = federation(6, 1.0);
    let bad_dim = fedaqp::model::RangeQuery::new(
        Aggregate::Count,
        vec![fedaqp::model::Range::new(99, 0, 1).expect("range")],
    )
    .expect("query");
    assert!(fed.run(&bad_dim, 0.2).is_err());
    let q = demo_query(&fed);
    assert!(fed.run(&q, -0.5).is_err());
    assert!(fed.run(&q, 2.0).is_err());
}
