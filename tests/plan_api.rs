//! Integration tests for the unified `QueryPlan` analyst API: one request
//! type executed identically by the serial convenience functions, the
//! concurrent engine, and the TCP federation server — with the group-by
//! fan-out demonstrably riding the worker pool.

use std::time::{Duration, Instant};

use fedaqp::core::{
    run_group_by, run_online, ConcurrentSession, Federation, FederationConfig, FederationEngine,
    PlanResult, QueryPlan, SessionPlan,
};
use fedaqp::model::{
    Aggregate, DerivedStatistic, Dimension, Domain, Extreme, Range, RangeQuery, Row, Schema,
};
use fedaqp::net::{FederationServer, RemoteFederation, ServeOptions};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Dimension::new("x", Domain::new(0, 99).unwrap()),
        Dimension::new("cat", Domain::new(0, 4).unwrap()),
    ])
    .unwrap()
}

fn partitions(rows_per: usize) -> Vec<Vec<Row>> {
    (0..4)
        .map(|p| {
            (0..rows_per)
                .map(|i| {
                    Row::cell(
                        vec![((i * 7 + p * 13) % 100) as i64, ((i + p) % 5) as i64],
                        1 + (i % 3) as u64,
                    )
                })
                .collect()
        })
        .collect()
}

fn federation(cost_model: fedaqp::smc::CostModel) -> Federation {
    let mut cfg = FederationConfig::paper_default(40);
    cfg.cost_model = cost_model;
    cfg.n_min = 3;
    cfg.epsilon = 2.0;
    Federation::build(cfg, schema(), partitions(1500)).unwrap()
}

fn base_query() -> RangeQuery {
    RangeQuery::new(Aggregate::Count, vec![Range::new(0, 0, 99).unwrap()]).unwrap()
}

fn group_plan() -> QueryPlan {
    QueryPlan::GroupBy {
        base: base_query(),
        statistic: None,
        group_dim: 1,
        threshold: 0.0,
        sampling_rate: 0.25,
        epsilon: 2.5,
        delta: 1e-3,
    }
}

/// The headline acceptance: a group-by plan submitted through
/// `RemoteFederation::submit_plan` over a real socket returns groups
/// byte-identical to the in-process serial `run_group_by` for the same
/// seed — one compiler, one noise derivation, every layer.
#[test]
fn remote_group_by_plan_matches_serial_run_group_by_byte_for_byte() {
    let engine = FederationEngine::start(federation(fedaqp::smc::CostModel::zero()));
    let server =
        FederationServer::bind("127.0.0.1:0", engine.handle(), ServeOptions::unlimited()).unwrap();
    let mut client = RemoteFederation::connect(&server.local_addr().to_string()).unwrap();

    let remote = client.submit_plan(&group_plan()).unwrap().wait().unwrap();
    let PlanResult::Groups { groups, suppressed } = &remote.result else {
        panic!("expected groups, got {:?}", remote.result);
    };

    let mut serial_fed = federation(fedaqp::smc::CostModel::zero());
    let serial = run_group_by(&mut serial_fed, &base_query(), 1, 0.25, 2.5, 1e-3, 0.0).unwrap();

    assert_eq!(groups.len(), serial.groups.len());
    assert_eq!(*suppressed as usize, serial.suppressed);
    for (r, s) in groups.iter().zip(&serial.groups) {
        assert_eq!(r.key, s.key);
        assert_eq!(r.value.to_bits(), s.value.to_bits(), "group {}", s.key);
    }
    assert_eq!(remote.cost.eps, serial.cost.eps);

    drop(client);
    server.shutdown();
    engine.shutdown();
}

/// The per-group sub-queries of a plan run through the engine worker pool
/// concurrently: under the slept-WAN model (every sub-query's simulated
/// transit actually waited out), the engine path overlaps the 5 groups'
/// transits while the pre-plan serial path stalls on each in turn.
#[test]
fn concurrent_group_by_beats_serial_on_the_slept_wan_model() {
    let wan = fedaqp::smc::CostModel::wan();
    let mut serial_fed = federation(wan);
    let budget = {
        let mut cfg = serial_fed.config().clone();
        cfg.epsilon = 2.5 / 5.0;
        cfg.delta = 1e-3 / 5.0;
        cfg.query_budget().unwrap()
    };

    // Pre-redesign serial execution: one group sub-query at a time, each
    // stalling on its own WAN transit before the next begins.
    let t0 = Instant::now();
    for key in 0..5i64 {
        let mut ranges = base_query().ranges().to_vec();
        ranges.push(Range::new(1, key, key).unwrap());
        let q = RangeQuery::new(Aggregate::Count, ranges).unwrap();
        let ans = serial_fed.run_protocol_only(&q, 0.25, &budget).unwrap();
        std::thread::sleep(ans.timings.network);
    }
    let serial_wall = t0.elapsed();

    // Plan execution: all 5 sub-queries in flight on the pool; their
    // transits overlap, so the plan pays the *max*, not the sum.
    let concurrent_fed = federation(wan);
    let t0 = Instant::now();
    let answer = concurrent_fed
        .with_engine(|engine| engine.run_plan(&group_plan()))
        .unwrap();
    std::thread::sleep(answer.timings.network);
    let concurrent_wall = t0.elapsed();

    assert!(
        concurrent_wall < serial_wall / 2,
        "concurrent group-by ({concurrent_wall:?}) must beat the serial path \
         ({serial_wall:?}) by ≥2x on the slept-WAN model"
    );
    // Sanity: the WAN stall dominates both sides (≈100 ms per round trip).
    assert!(serial_wall >= Duration::from_millis(250), "{serial_wall:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The serial `run_online` wrapper and the concurrent engine compile
    /// the same [`QueryPlan::Online`] through the same compiler, so on a
    /// frozen federation every snapshot — value, sample fraction, scan
    /// count — and the plan's total cost are bit-identical across any
    /// swept `(rounds, rate, range)`.
    #[test]
    fn serial_run_online_matches_the_concurrent_plan_bit_for_bit(
        rounds in 1usize..=5,
        rate_idx in 0usize..3,
        lo in 0i64..40,
        width in 20i64..60,
    ) {
        let rate = [0.15, 0.25, 0.4][rate_idx];
        let hi = (lo + width).min(99);
        let query =
            RangeQuery::new(Aggregate::Count, vec![Range::new(0, lo, hi).unwrap()]).unwrap();
        let plan = QueryPlan::Online {
            query: query.clone(),
            sampling_rate: rate,
            epsilon: 1.5,
            delta: 1e-3,
            rounds,
        };

        let concurrent = federation(fedaqp::smc::CostModel::zero())
            .with_engine(|engine| engine.run_plan(&plan))
            .unwrap();
        let snapshots = concurrent.snapshots().expect("online plan releases snapshots");

        let mut serial_fed = federation(fedaqp::smc::CostModel::zero());
        let serial = run_online(&mut serial_fed, &query, rate, 1.5, 1e-3, rounds).unwrap();

        prop_assert_eq!(snapshots.len(), rounds);
        prop_assert_eq!(serial.snapshots.len(), rounds);
        for (c, s) in snapshots.iter().zip(&serial.snapshots) {
            prop_assert_eq!(c.round as usize, s.round);
            prop_assert_eq!(c.value.to_bits(), s.value.to_bits());
            prop_assert_eq!(c.sample_fraction.to_bits(), s.sample_fraction.to_bits());
            prop_assert_eq!(c.clusters_scanned as usize, s.clusters_scanned);
        }
        prop_assert_eq!(concurrent.cost.eps.to_bits(), serial.cost.eps.to_bits());
        prop_assert_eq!(concurrent.cost.delta.to_bits(), serial.cost.delta.to_bits());
    }

    /// `rounds = 1` online aggregation degenerates exactly to the scalar
    /// plan: one snapshot at the full sampling rate whose released value
    /// and cost are bit-identical to [`QueryPlan::Scalar`] with the same
    /// parameters — the progressive path adds no noise of its own.
    #[test]
    fn one_round_online_degenerates_to_the_scalar_plan(
        rate_idx in 0usize..3,
        lo in 0i64..40,
        width in 20i64..60,
    ) {
        let rate = [0.15, 0.25, 0.4][rate_idx];
        let hi = (lo + width).min(99);
        let query =
            RangeQuery::new(Aggregate::Count, vec![Range::new(0, lo, hi).unwrap()]).unwrap();

        let online = federation(fedaqp::smc::CostModel::zero())
            .with_engine(|engine| {
                engine.run_plan(&QueryPlan::Online {
                    query: query.clone(),
                    sampling_rate: rate,
                    epsilon: 1.5,
                    delta: 1e-3,
                    rounds: 1,
                })
            })
            .unwrap();
        let scalar = federation(fedaqp::smc::CostModel::zero())
            .with_engine(|engine| {
                engine.run_plan(&QueryPlan::Scalar {
                    query: query.clone(),
                    sampling_rate: rate,
                    epsilon: 1.5,
                    delta: 1e-3,
                })
            })
            .unwrap();

        let snapshots = online.snapshots().expect("online plan releases snapshots");
        prop_assert_eq!(snapshots.len(), 1);
        prop_assert_eq!(snapshots[0].sample_fraction.to_bits(), 1.0f64.to_bits());
        prop_assert_eq!(
            snapshots[0].value.to_bits(),
            scalar.value().expect("scalar value").to_bits()
        );
        prop_assert_eq!(online.cost.eps.to_bits(), scalar.cost.eps.to_bits());
        prop_assert_eq!(online.cost.delta.to_bits(), scalar.cost.delta.to_bits());
    }
}

/// Every plan kind runs through a budget session, which charges the whole
/// declared cost atomically up front.
#[test]
fn sessions_charge_whole_plans_atomically() {
    let fed = federation(fedaqp::smc::CostModel::zero());
    fed.with_engine(|engine| {
        let session =
            ConcurrentSession::open(engine.clone(), 5.0, 1e-2, SessionPlan::PayAsYouGo).unwrap();
        let pending = session.submit_plan(&group_plan()).unwrap();
        // The whole 2.5ε is on the ledger before the first group resolves.
        assert!((session.spent().eps - 2.5).abs() < 1e-9);
        pending.wait().unwrap();

        let derived = QueryPlan::Derived {
            query: base_query(),
            statistic: DerivedStatistic::Average,
            sampling_rate: 0.25,
            epsilon: 2.0,
            delta: 1e-3,
        };
        session.run_plan(&derived).unwrap();
        assert!((session.spent().eps - 4.5).abs() < 1e-9);

        let extreme = QueryPlan::Extreme {
            dim: 0,
            extreme: Extreme::Max,
            epsilon: 0.5,
        };
        session.run_plan(&extreme).unwrap();
        assert!((session.spent().eps - 5.0).abs() < 1e-9);

        // Exhausted: the next plan is rejected before any work, and the
        // ledger is untouched by the rejection.
        assert!(session.submit_plan(&extreme).is_err());
        assert!((session.spent().eps - 5.0).abs() < 1e-9);
    });
}
