//! Statistical quality of the full estimation pipeline: unbiasedness,
//! sampling-rate response, and dataset-scale response (the mechanisms
//! behind Figs. 4–6).

use fedaqp::core::{Federation, FederationConfig};
use fedaqp::data::{partition_rows, AdultConfig, AdultSynth, PartitionMode};
use fedaqp::model::{Aggregate, QueryBuilder, RangeQuery, Row};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn federation(n_rows: u64, seed: u64, epsilon: f64) -> (Federation, Vec<Row>) {
    let dataset = AdultSynth::generate(AdultConfig { n_rows, seed }).expect("dataset");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE57);
    let partitions = partition_rows(&mut rng, dataset.cells.clone(), 4, &PartitionMode::Equal)
        .expect("partitioning");
    let capacity = (dataset.cells.len() / 4 / 50).max(32);
    let mut cfg = FederationConfig::paper_default(capacity);
    cfg.seed = seed;
    cfg.epsilon = epsilon;
    cfg.cost_model = fedaqp::smc::CostModel::zero();
    let fed = Federation::build(cfg, dataset.schema.clone(), partitions).expect("federation");
    (fed, dataset.cells)
}

fn broad_query(fed: &Federation) -> RangeQuery {
    QueryBuilder::new(fed.schema(), Aggregate::Count)
        .range("age", 22, 70)
        .expect("range")
        .range("hours_per_week", 20, 80)
        .expect("range")
        .build()
        .expect("query")
}

/// Averaging raw estimates over many runs approaches the exact answer —
/// the pipeline-level unbiasedness that Hansen–Hurwitz promises.
#[test]
fn raw_estimates_center_on_truth() {
    let trials = 60;
    let mut acc = 0.0;
    let mut exact = 0u64;
    for t in 0..trials {
        let (mut fed, _) = federation(10_000, 500 + t, 5.0);
        let q = broad_query(&fed);
        let ans = fed.run(&q, 0.2).expect("run");
        acc += ans.raw_estimate;
        exact = ans.exact;
    }
    let mean = acc / trials as f64;
    assert!(
        (mean - exact as f64).abs() < 0.12 * exact as f64,
        "mean estimate {mean} vs exact {exact}"
    );
}

/// Larger sampling rates reduce the estimation (pre-noise) error — the
/// Fig. 5 accuracy trend isolated from DP noise.
///
/// Uses a mid-selectivity query (broad queries saturate the estimator:
/// every cluster's `Q(C)/p` is already ≈ the total, so the sampling rate
/// barely matters) and compares RMS errors with slack, since both sides
/// are Monte-Carlo estimates.
#[test]
fn estimation_error_falls_with_sampling_rate() {
    let rms_est_error = |sr: f64| {
        let trials = 60;
        let mut acc = 0.0;
        for t in 0..trials {
            let (mut fed, _) = federation(10_000, 900 + t, 5.0);
            let q = QueryBuilder::new(fed.schema(), Aggregate::Count)
                .range("education_num", 9, 12)
                .expect("range")
                .range("occupation", 2, 7)
                .expect("range")
                .build()
                .expect("query");
            let ans = fed.run(&q, sr).expect("run");
            let rel = (ans.raw_estimate - ans.exact as f64) / ans.exact.max(1) as f64;
            acc += rel * rel;
        }
        (acc / trials as f64).sqrt()
    };
    let low = rms_est_error(0.04);
    let high = rms_est_error(0.5);
    // Under the default `EmCalibrated` estimator each draw is divided by
    // the probability the Exponential mechanism actually assigned it, so
    // the estimator stays unbiased as the per-draw budget ε_S/s shrinks
    // and the draw distribution flattens — error strictly falls with the
    // sampling rate, exactly the Fig. 5 trend. (The paper-faithful
    // `PpsEq3` divisor loses this: its bias grows with `s` and used to eat
    // the variance reduction, which this test once tolerated with a 1.35
    // "stagnation" slack.)
    assert!(
        high < low,
        "estimation error should fall with sampling rate: \
         sr=4% -> {low}, sr=50% -> {high}"
    );
}

/// Bigger tables give smaller *relative* errors at fixed ε — the paper's
/// central scale observation (§6.4): "as the database size increases, the
/// accuracy of our solution will improve".
#[test]
fn relative_error_falls_with_scale() {
    let mean_error = |n_rows: u64| {
        let trials = 25;
        let mut acc = 0.0;
        for t in 0..trials {
            let (mut fed, _) = federation(n_rows, 1_300 + t, 1.0);
            let q = broad_query(&fed);
            let ans = fed.run(&q, 0.2).expect("run");
            acc += ans.relative_error;
        }
        acc / trials as f64
    };
    let small = mean_error(4_000);
    let large = mean_error(40_000);
    assert!(
        large < small,
        "relative error should fall with scale: 4k rows -> {small}, 40k rows -> {large}"
    );
}

/// More query dimensions degrade the metadata approximation of R and hence
/// the estimate — the Fig. 4 dimensionality trend (noise excluded).
#[test]
fn estimation_error_grows_with_dimensions() {
    let mean_est_error = |dims: usize| {
        let trials = 40;
        let mut acc = 0.0;
        for t in 0..trials {
            let (mut fed, _) = federation(12_000, 2_000 + t, 5.0);
            let schema = fed.schema().clone();
            let mut builder = QueryBuilder::new(&schema, Aggregate::Count)
                .range("age", 22, 75)
                .expect("range");
            if dims >= 2 {
                builder = builder.range("hours_per_week", 15, 85).expect("range");
            }
            if dims >= 3 {
                builder = builder.range("education_num", 3, 14).expect("range");
            }
            if dims >= 4 {
                builder = builder.range("occupation", 1, 12).expect("range");
            }
            if dims >= 5 {
                builder = builder.range("marital_status", 0, 4).expect("range");
            }
            let q = builder.build().expect("query");
            let ans = fed.run(&q, 0.2).expect("run");
            if ans.exact > 0 {
                acc += (ans.raw_estimate - ans.exact as f64).abs() / ans.exact as f64;
            }
        }
        acc / trials as f64
    };
    let narrow = mean_est_error(1);
    let wide = mean_est_error(5);
    assert!(
        wide > narrow,
        "estimation error should grow with dims: 1 dim -> {narrow}, 5 dims -> {wide}"
    );
}
