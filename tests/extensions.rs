//! Integration tests for the extension surface: sessions, derived
//! aggregates, group-by, online aggregation, private extremes, and store
//! persistence — everything a downstream adopter layers on top of the
//! §5 protocol.

use fedaqp::core::{
    combine_snapshots, private_extreme, run_derived, run_group_by, run_online, AnalystSession,
    DerivedStatistic, Extreme, Federation, FederationConfig, SessionPlan,
};
use fedaqp::data::{partition_rows, AdultConfig, AdultSynth, PartitionMode};
use fedaqp::model::{Aggregate, QueryBuilder, RangeQuery};
use fedaqp::storage::{decode_store, encode_store};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn federation(seed: u64, epsilon: f64) -> Federation {
    let dataset = AdultSynth::generate(AdultConfig {
        n_rows: 15_000,
        seed,
    })
    .expect("dataset");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE);
    let partitions =
        partition_rows(&mut rng, dataset.cells, 4, &PartitionMode::Equal).expect("partitioning");
    let mut cfg = FederationConfig::paper_default(64);
    cfg.seed = seed;
    cfg.epsilon = epsilon;
    cfg.cost_model = fedaqp::smc::CostModel::zero();
    Federation::build(cfg, dataset.schema, partitions).expect("federation")
}

fn age_query(fed: &Federation) -> RangeQuery {
    QueryBuilder::new(fed.schema(), Aggregate::Count)
        .range("age", 25, 60)
        .expect("range")
        .build()
        .expect("query")
}

#[test]
fn session_lifecycle_with_mixed_query_types() {
    let fed = federation(1, 1.0);
    let mut session =
        AnalystSession::open(fed, 10.0, 1e-2, SessionPlan::PayAsYouGo).expect("session");
    let q = age_query(session.federation());
    let plain = session.query(&q, 0.2).expect("plain query");
    assert!(plain.value.is_finite());
    let avg = session
        .query_derived(&q, DerivedStatistic::Average, 0.2)
        .expect("derived query");
    assert!(avg.value.is_finite());
    // 1 (plain) + 2 (average) ε spent.
    assert!((session.remaining().eps - 7.0).abs() < 1e-9);
}

#[test]
fn group_by_over_workclass_preserves_total_mass() {
    let mut fed = federation(2, 1.0);
    let base = QueryBuilder::new(fed.schema(), Aggregate::Count)
        .range("age", 17, 90)
        .expect("range")
        .build()
        .expect("query");
    let wc = fed.schema().index_of("workclass").expect("dimension");
    let ans = run_group_by(&mut fed, &base, wc, 0.3, 200.0, 1e-3, 0.0).expect("group by");
    assert_eq!(ans.groups.len(), 8);
    // Group exact counts partition the table (COUNT counts tensor cells,
    // and every cell has exactly one workclass value).
    let exact_total: u64 = ans.groups.iter().map(|g| g.exact).sum();
    assert_eq!(exact_total, fed.exact(&base));
    // Noisy totals land near the truth under the loose budget.
    let noisy_total: f64 = ans.groups.iter().map(|g| g.value).sum();
    assert!(
        (noisy_total - exact_total as f64).abs() < 0.2 * exact_total as f64,
        "noisy total {noisy_total} vs exact {exact_total}"
    );
}

#[test]
fn online_rounds_refine_and_combine() {
    let mut fed = federation(3, 1.0);
    let q = age_query(&fed);
    let ans = run_online(&mut fed, &q, 0.4, 60.0, 1e-3, 5).expect("online");
    assert_eq!(ans.snapshots.len(), 5);
    // Later rounds scan at least as many clusters as the first.
    assert!(
        ans.snapshots.last().expect("rounds").clusters_scanned >= ans.snapshots[0].clusters_scanned
    );
    let combined = combine_snapshots(&ans);
    let err = (combined - ans.exact as f64).abs() / ans.exact.max(1) as f64;
    assert!(err < 0.5, "combined error {err}");
}

#[test]
fn extremes_on_real_schema() {
    let mut fed = federation(4, 1.0);
    let hours = fed.schema().index_of("hours_per_week").expect("dimension");
    let max = private_extreme(&mut fed, hours, Extreme::Max, 100.0).expect("max");
    let min = private_extreme(&mut fed, hours, Extreme::Min, 100.0).expect("min");
    // Domain is [1, 99]; with real data both extremes are occupied densely,
    // so selections must stay in-domain and ordered.
    assert!((1..=99).contains(&max.value));
    assert!((1..=99).contains(&min.value));
    assert!(min.value < max.value);
}

#[test]
fn derived_average_within_measure_bounds() {
    let mut fed = federation(5, 1.0);
    let q = age_query(&fed);
    let avg =
        run_derived(&mut fed, &q, DerivedStatistic::Average, 0.3, 100.0, 1e-3).expect("derived");
    // Cell measures are ≥ 1; averages must be sane.
    assert!(avg.exact >= 1.0);
    assert!(avg.value > 0.0 && avg.value < 100.0);
}

#[test]
fn provider_stores_persist_and_answer_identically() {
    let fed = federation(6, 1.0);
    let q = age_query(&fed);
    for p in fed.providers() {
        let blob = encode_store(p.store());
        let restored = decode_store(&blob).expect("decode");
        assert_eq!(restored.evaluate_full(&q), p.store().evaluate_full(&q));
        assert_eq!(restored.n_clusters(), p.store().n_clusters());
    }
}

#[test]
fn advanced_session_supports_many_cheap_queries() {
    let fed = federation(7, 1.0);
    let mut session = AnalystSession::open(
        fed,
        20.0,
        1e-3,
        SessionPlan::AdvancedComposition {
            planned_queries: 200,
        },
    )
    .expect("session");
    let q = age_query(session.federation());
    for _ in 0..25 {
        session.query(&q, 0.2).expect("query");
    }
    assert_eq!(session.queries_answered(), 25);
    assert!(session.can_query());
}
