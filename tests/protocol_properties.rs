//! Property-based integration tests spanning the whole workspace.

use fedaqp::core::{Federation, FederationConfig};
use fedaqp::model::{Aggregate, Dimension, Domain, Range, RangeQuery, Row, Schema};
use fedaqp::storage::{decode_provider_meta, encode_provider_meta};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Dimension::new("a", Domain::new(0, 200).expect("domain")),
        Dimension::new("b", Domain::new(0, 50).expect("domain")),
    ])
    .expect("schema")
}

fn arb_partitions() -> impl Strategy<Value = Vec<Vec<Row>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0i64..=200, 0i64..=50, 1u64..6).prop_map(|(a, b, m)| Row::cell(vec![a, b], m)),
            10..200,
        ),
        4..=4,
    )
}

fn arb_query() -> impl Strategy<Value = RangeQuery> {
    (
        prop_oneof![Just(Aggregate::Count), Just(Aggregate::Sum)],
        0i64..150,
        1u64..120,
        0i64..40,
        1u64..30,
    )
        .prop_map(|(agg, lo_a, w_a, lo_b, w_b)| {
            RangeQuery::new(
                agg,
                vec![
                    Range::new(0, lo_a, lo_a + w_a as i64).expect("range"),
                    Range::new(1, lo_b, lo_b + w_b as i64).expect("range"),
                ],
            )
            .expect("query")
        })
}

fn build_federation(partitions: Vec<Vec<Row>>, seed: u64) -> Federation {
    let mut cfg = FederationConfig::paper_default(16);
    cfg.seed = seed;
    cfg.n_min = 2;
    cfg.cost_model = fedaqp::smc::CostModel::zero();
    Federation::build(cfg, schema(), partitions).expect("federation")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Plain federated execution equals the union oracle for any data and
    /// any query.
    #[test]
    fn plain_equals_oracle(partitions in arb_partitions(), q in arb_query(), seed in any::<u64>()) {
        let oracle: u64 = partitions
            .iter()
            .flatten()
            .filter(|r| q.matches(r))
            .map(|r| match q.aggregate() {
                Aggregate::Count => 1,
                Aggregate::Sum => r.measure(),
            })
            .sum();
        let fed = build_federation(partitions, seed);
        prop_assert_eq!(fed.exact(&q), oracle);
        prop_assert_eq!(fed.run_plain(&q).expect("plain").value, oracle);
    }

    /// The private pipeline always completes and produces finite,
    /// well-formed answers — no panics, no NaNs, for arbitrary data.
    #[test]
    fn private_pipeline_total(partitions in arb_partitions(), q in arb_query(), seed in any::<u64>()) {
        let mut fed = build_federation(partitions, seed);
        let ans = fed.run(&q, 0.25).expect("run");
        prop_assert!(ans.value.is_finite());
        prop_assert!(ans.raw_estimate.is_finite());
        prop_assert!(ans.relative_error >= 0.0);
        prop_assert_eq!(ans.allocations.len(), 4);
        prop_assert!(ans.clusters_scanned <= ans.covering_total.max(ans.clusters_scanned));
        for &s in &ans.smooth_ls {
            prop_assert!(s.is_finite() && s >= 0.0);
        }
    }

    /// Every provider's metadata survives an encode/decode round trip even
    /// after federation construction (codec ↔ Algorithm 1 integration).
    #[test]
    fn provider_metadata_round_trips(partitions in arb_partitions(), seed in any::<u64>()) {
        let fed = build_federation(partitions, seed);
        for p in fed.providers() {
            let blob = encode_provider_meta(p.meta());
            let back = decode_provider_meta(&blob).expect("decode");
            prop_assert_eq!(p.meta(), &back);
        }
    }

    /// Pruning soundness through the provider: every cluster holding a
    /// matching row is in the covering set.
    #[test]
    fn covering_soundness(partitions in arb_partitions(), q in arb_query(), seed in any::<u64>()) {
        let fed = build_federation(partitions, seed);
        for p in fed.providers() {
            let covering = p.meta().covering(&q);
            for cluster in p.store().clusters() {
                if cluster.matching_rows(q.ranges()) > 0 {
                    prop_assert!(
                        covering.contains(&cluster.id()),
                        "provider {} cluster {} pruned despite matches",
                        p.id(),
                        cluster.id()
                    );
                }
            }
        }
    }

    /// The allocation respects the sampling-rate budget: the total sample
    /// size stays within the noisy global budget bounds.
    #[test]
    fn allocations_bounded_by_covering(
        partitions in arb_partitions(),
        q in arb_query(),
        seed in any::<u64>(),
    ) {
        let mut fed = build_federation(partitions, seed);
        let ans = fed.run(&q, 0.25).expect("run");
        // Each provider clamps its allocation to its covering set, so no
        // provider scans more clusters than it covers.
        prop_assert!(ans.clusters_scanned <= ans.covering_total + 4);
    }
}
