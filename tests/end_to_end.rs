//! End-to-end integration tests: dataset generation → partitioning →
//! federation → private query answering, across release modes and paths.

use fedaqp::core::{Federation, FederationConfig, ReleaseMode};
use fedaqp::data::{partition_rows, AdultConfig, AdultSynth, PartitionMode};
use fedaqp::dp::{BudgetAccountant, QueryBudget};
use fedaqp::model::{Aggregate, QueryBuilder, RangeQuery, Row, Schema};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_federation(
    seed: u64,
    tweak: impl FnOnce(&mut FederationConfig),
) -> (Federation, Vec<Row>) {
    let dataset = AdultSynth::generate(AdultConfig {
        n_rows: 12_000,
        seed,
    })
    .expect("dataset");
    let mut rng = StdRng::seed_from_u64(seed ^ 1);
    let partitions = partition_rows(&mut rng, dataset.cells.clone(), 4, &PartitionMode::Equal)
        .expect("partitioning");
    let mut cfg = FederationConfig::paper_default(64);
    cfg.seed = seed;
    cfg.cost_model = fedaqp::smc::CostModel::zero();
    tweak(&mut cfg);
    let fed = Federation::build(cfg, dataset.schema.clone(), partitions).expect("federation");
    (fed, dataset.cells)
}

fn broad_count(schema: &Schema) -> RangeQuery {
    QueryBuilder::new(schema, Aggregate::Count)
        .range("age", 20, 80)
        .expect("range")
        .range("hours_per_week", 10, 90)
        .expect("range")
        .build()
        .expect("query")
}

#[test]
fn plain_execution_equals_union_oracle() {
    let (fed, cells) = small_federation(1, |_| {});
    let q = broad_count(fed.schema());
    let oracle: u64 = cells.iter().filter(|c| q.matches(c)).count() as u64;
    assert_eq!(fed.exact(&q), oracle);
    assert_eq!(fed.run_plain(&q).expect("plain").value, oracle);
}

#[test]
fn private_answer_is_reasonable_under_loose_budget() {
    let (mut fed, _) = small_federation(2, |cfg| cfg.epsilon = 200.0);
    let q = broad_count(fed.schema());
    let ans = fed.run(&q, 0.3).expect("run");
    assert!(ans.value.is_finite());
    assert!(
        ans.relative_error < 0.35,
        "relative error {} too large under eps=200",
        ans.relative_error
    );
    assert!(ans.clusters_scanned < ans.covering_total);
    assert_eq!(ans.approximated_providers, 4);
}

#[test]
fn sum_and_count_share_the_pipeline() {
    let (mut fed, cells) = small_federation(3, |cfg| cfg.epsilon = 200.0);
    let schema = fed.schema().clone();
    let count_q = QueryBuilder::new(&schema, Aggregate::Count)
        .range("age", 25, 60)
        .expect("range")
        .build()
        .expect("query");
    let sum_q = QueryBuilder::new(&schema, Aggregate::Sum)
        .range("age", 25, 60)
        .expect("range")
        .build()
        .expect("query");
    let count_ans = fed.run(&count_q, 0.3).expect("count");
    let sum_ans = fed.run(&sum_q, 0.3).expect("sum");
    // SUM counts raw rows (measures), COUNT counts cells: SUM ≥ COUNT.
    let sum_exact: u64 = cells
        .iter()
        .filter(|c| sum_q.matches(c))
        .map(|c| c.measure())
        .sum();
    assert_eq!(sum_ans.exact, sum_exact);
    assert!(sum_ans.exact >= count_ans.exact);
}

#[test]
fn smc_release_mode_matches_local_dp_in_expectation() {
    let q_of = |fed: &Federation| broad_count(fed.schema());
    let trials = 30;
    let mut local_sum = 0.0;
    let mut smc_sum = 0.0;
    let mut exact = 0;
    for t in 0..trials {
        let (mut fed_l, _) = small_federation(100 + t, |cfg| {
            cfg.release_mode = ReleaseMode::LocalDp;
            cfg.epsilon = 5.0;
        });
        let q = q_of(&fed_l);
        let a = fed_l.run(&q, 0.3).expect("local");
        local_sum += a.value;
        exact = a.exact;
        let (mut fed_s, _) = small_federation(100 + t, |cfg| {
            cfg.release_mode = ReleaseMode::Smc;
            cfg.epsilon = 5.0;
        });
        let b = fed_s.run(&q, 0.3).expect("smc");
        smc_sum += b.value;
    }
    let local_mean = local_sum / trials as f64;
    let smc_mean = smc_sum / trials as f64;
    // Both modes estimate the same quantity; means agree loosely.
    assert!(
        (local_mean - smc_mean).abs() < 0.35 * exact as f64,
        "local {local_mean} vs smc {smc_mean} (exact {exact})"
    );
}

#[test]
fn exact_path_taken_when_covering_below_threshold() {
    let (mut fed, _) = small_federation(5, |cfg| {
        cfg.n_min = 100_000; // impossible threshold: always exact
        cfg.epsilon = 100.0;
    });
    let q = broad_count(fed.schema());
    let ans = fed.run(&q, 0.2).expect("run");
    assert_eq!(ans.approximated_providers, 0);
    assert_eq!(ans.clusters_scanned, ans.covering_total);
    assert!((ans.raw_estimate - ans.exact as f64).abs() < 1e-6);
}

#[test]
fn accountant_gates_a_query_session() {
    let (mut fed, _) = small_federation(6, |_| {});
    let q = broad_count(fed.schema());
    let mut accountant = BudgetAccountant::new(2.5, 1e-2).expect("accountant");
    let mut answered = 0;
    loop {
        let cost = fed.default_query_cost().expect("cost");
        if accountant.charge(cost).is_err() {
            break;
        }
        fed.run(&q, 0.2).expect("run");
        answered += 1;
        assert!(answered < 100, "accountant never exhausted");
    }
    // ξ = 2.5 at ε = 1 per query → exactly 2 queries.
    assert_eq!(answered, 2);
}

#[test]
fn explicit_budget_overrides_default() {
    let (mut fed, _) = small_federation(7, |_| {});
    let q = broad_count(fed.schema());
    let tight = QueryBudget::paper_split(0.1, 1e-4).expect("budget");
    let ans = fed.run_with_budget(&q, 0.2, &tight).expect("run");
    assert!((ans.cost.eps - 0.1).abs() < 1e-12);
    assert_eq!(ans.cost.delta, 1e-4);
}

#[test]
fn deterministic_given_identical_seeds() {
    let run_once = |seed: u64| {
        let (mut fed, _) = small_federation(seed, |_| {});
        let q = broad_count(fed.schema());
        fed.run(&q, 0.2).expect("run").value
    };
    assert_eq!(run_once(42), run_once(42));
    assert_ne!(run_once(42), run_once(43));
}

#[test]
fn timings_and_network_are_populated() {
    let (mut fed, _) = small_federation(8, |cfg| {
        cfg.cost_model = fedaqp::smc::CostModel::lan();
    });
    let q = broad_count(fed.schema());
    let ans = fed.run(&q, 0.2).expect("run");
    assert!(ans.timings.total() > std::time::Duration::ZERO);
    // 4 protocol rounds under LAN latency (0.5 ms each) dominate.
    assert!(ans.timings.network >= std::time::Duration::from_millis(2));
    let plain = fed.run_plain(&q).expect("plain");
    assert!(plain.duration > std::time::Duration::ZERO);
}

#[test]
fn weighted_partitions_still_answer_correctly() {
    let dataset = AdultSynth::generate(AdultConfig {
        n_rows: 8_000,
        seed: 9,
    })
    .expect("dataset");
    let mut rng = StdRng::seed_from_u64(10);
    let partitions = partition_rows(
        &mut rng,
        dataset.cells.clone(),
        4,
        &PartitionMode::Weighted(vec![7.0, 1.0, 1.0, 1.0]),
    )
    .expect("partitioning");
    let mut cfg = FederationConfig::paper_default(64);
    cfg.epsilon = 200.0;
    cfg.cost_model = fedaqp::smc::CostModel::zero();
    let mut fed = Federation::build(cfg, dataset.schema.clone(), partitions).expect("federation");
    let q = broad_count(fed.schema());
    let ans = fed.run(&q, 0.3).expect("run");
    assert!(ans.relative_error < 0.5, "error {}", ans.relative_error);
    // The heavy provider must receive the lion's share of the allocation.
    let max_alloc = *ans.allocations.iter().max().expect("allocations");
    assert_eq!(ans.allocations[0], max_alloc);
}
