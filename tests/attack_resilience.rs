//! Integration tests for the §6.6 attack harness against a live
//! federation: budgeted attacks stay near chance, the harness itself is
//! sound (it succeeds when protection is absent), and the same adversary
//! works over a real TCP socket against a budget-enforcing server.

use fedaqp::attack::{
    run_attack, run_coalition_attack, run_remote_attack, AttackConfig, CompositionRegime,
};
use fedaqp::core::{Federation, FederationConfig, FederationEngine};
use fedaqp::model::{Aggregate, Dimension, Domain, Row, Schema};
use fedaqp::net::{FederationServer, ServeOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A world where SA (12 classes) equals one QI dimension 80% of the time.
fn world(seed: u64) -> (Federation, Vec<Row>) {
    let schema = Schema::new(vec![
        Dimension::new("sa", Domain::new(0, 11).expect("domain")),
        Dimension::new("qi1", Domain::new(0, 11).expect("domain")),
        Dimension::new("qi2", Domain::new(0, 3).expect("domain")),
    ])
    .expect("schema");
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Row> = (0..6_000)
        .map(|_| {
            let qi1 = rng.gen_range(0..12i64);
            let sa = if rng.gen::<f64>() < 0.8 {
                qi1
            } else {
                rng.gen_range(0..12i64)
            };
            Row::raw(vec![sa, qi1, rng.gen_range(0..4i64)])
        })
        .collect();
    let partitions: Vec<Vec<Row>> = (0..4)
        .map(|p| {
            rows.iter()
                .enumerate()
                .filter(|(i, _)| i % 4 == p)
                .map(|(_, r)| r.clone())
                .collect()
        })
        .collect();
    let mut cfg = FederationConfig::paper_default(48);
    cfg.seed = seed;
    cfg.n_min = 2;
    cfg.cost_model = fedaqp::smc::CostModel::zero();
    let fed = Federation::build(cfg, schema, partitions).expect("federation");
    (fed, rows)
}

fn config(regime: CompositionRegime, xi: f64) -> AttackConfig {
    AttackConfig {
        sa_dim: 0,
        qi_dims: vec![1, 2],
        xi,
        psi: 1e-6,
        regime,
        aggregate: Aggregate::Count,
        sampling_rate: 0.25,
    }
}

#[test]
fn sequential_budget_keeps_attack_near_chance() {
    let (mut fed, rows) = world(1);
    let out =
        run_attack(&mut fed, &rows, &config(CompositionRegime::Sequential, 1.0)).expect("attack");
    // Chance = 1/12 ≈ 8.3%; the 80% correlation must stay unreachable.
    assert!(
        out.accuracy < 0.30,
        "sequential attack accuracy {} too high",
        out.accuracy
    );
    assert_eq!(out.n_queries, 1 + 12 + 12 * (12 + 4));
}

#[test]
fn advanced_composition_gives_more_utility_but_still_protected() {
    let (mut fed, rows) = world(2);
    let seq = run_attack(
        &mut fed,
        &rows,
        &config(CompositionRegime::Sequential, 20.0),
    )
    .expect("attack");
    let adv =
        run_attack(&mut fed, &rows, &config(CompositionRegime::Advanced, 20.0)).expect("attack");
    assert!(adv.per_query.eps > seq.per_query.eps);
    assert!(adv.accuracy < 0.45, "advanced accuracy {}", adv.accuracy);
}

#[test]
fn harness_detects_unprotected_correlation() {
    // Sanity: absurd budget ⇒ effectively no DP ⇒ the 80% correlation must
    // be recovered. This validates the attack harness itself.
    let (mut fed, rows) = world(3);
    let out =
        run_attack(&mut fed, &rows, &config(CompositionRegime::Coalition, 1e6)).expect("attack");
    assert!(
        out.accuracy > 0.55,
        "unbounded attack should succeed, got {}",
        out.accuracy
    );
}

#[test]
fn attack_consumes_the_private_interface_only() {
    // The attack must work purely through run_with_budget: verify by
    // checking the reported per-query ε matches the regime arithmetic.
    let (mut fed, rows) = world(4);
    let out = run_attack(
        &mut fed,
        &rows,
        &config(CompositionRegime::Sequential, 10.0),
    )
    .expect("attack");
    let expected = 10.0 / out.n_queries as f64;
    assert!((out.per_query.eps - expected).abs() < 1e-12);
    assert_eq!(out.classes, 12);
}

#[test]
fn attack_runs_over_the_wire_against_a_budgeted_server() {
    // The fast smoke half of the red-team harness (`repro attack` is the
    // full CI gate): a single analyst and a 3-member coalition probe a
    // live loopback server that enforces (ξ, ψ) per identity.
    let (fed, rows) = world(5);
    let engine = FederationEngine::start(fed);
    let server = FederationServer::bind(
        "127.0.0.1:0",
        engine.handle(),
        ServeOptions::with_budget(1.0, 1e-6),
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let cfg = config(CompositionRegime::Sequential, 1.0);

    let single = run_remote_attack(&addr, "smoke-single", &rows, &cfg).expect("remote attack");
    assert_eq!(single.n_queries, 1 + 12 + 12 * (12 + 4));
    assert!(
        single.accuracy < 0.30,
        "over-the-wire attack accuracy {} too high",
        single.accuracy
    );
    assert!(
        single.auc.is_none(),
        "AUC is binary-SA only; this SA has 12"
    );
    let (_, spent_eps, spent_delta) = &single.spent[0];
    assert!(*spent_eps <= 1.0 + 1e-9, "ledger overspent: {spent_eps}");
    assert!(*spent_delta <= 1e-6 + 1e-12);

    let coalition =
        run_coalition_attack(&addr, "smoke-pool", 3, &rows, &cfg).expect("coalition attack");
    assert_eq!(coalition.n_queries, single.n_queries, "pooled plan");
    assert!(coalition.accuracy < 0.30, "{}", coalition.accuracy);
    assert_eq!(coalition.spent.len(), 3, "one ledger entry per member");
    for (identity, eps, _) in &coalition.spent {
        assert!(*eps <= 1.0 + 1e-9, "{identity} overspent: {eps}");
    }

    server.shutdown();
    engine.shutdown();
}
