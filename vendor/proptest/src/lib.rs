//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this vendored crate
//! reproduces the subset of proptest the `fedaqp` workspace uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, plus range, tuple, [`Just`],
//!   [`prop_oneof!`] and [`collection::vec`] strategies,
//! * [`any`] (via [`Arbitrary`]),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`test_runner::Config`] / `ProptestConfig::with_cases`.
//!
//! Semantics differ from the real crate in one way: failing cases are
//! reported with their inputs and reproduction seed but are **not shrunk**.
//! Generation is deterministic per (test name, case index), so failures are
//! reproducible run-to-run.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::Config as ProptestConfig;

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self {
        use rand::Rng;
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self {
        use rand::Rng;
        // Finite, sign-symmetric, wide dynamic range; avoids NaN/inf which
        // the real `any::<f64>()` also excludes by default.
        let mag: f64 = rng.gen::<f64>() * 1e12;
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy producing any value of `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut StdRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for [`crate::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between same-typed strategies ([`crate::prop_oneof!`]).
    pub struct Union<S> {
        arms: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<S>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            use rand::Rng;
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution: configuration, error plumbing, and the driver loop
    //! the [`crate::proptest!`] macro expands into.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (skipped) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default is 256; 64 keeps the offline suite fast
            // while still exercising the generators broadly.
            Config { cases: 64 }
        }
    }

    /// FNV-1a, used to give every test a distinct deterministic seed base.
    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` until `config.cases` cases pass. Panics on the first
    /// failure, reporting the case index and seed (no shrinking).
    pub fn run<F>(config: &Config, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(16).max(1024);
        let mut index = 0u64;
        while passed < config.cases {
            let seed = base.wrapping_add(index);
            index += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected}) before reaching {} passes",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {} (seed {seed:#x}):\n{msg}",
                        passed + 1
                    );
                }
            }
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Mirrors the real macro's surface:
/// an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, __rng);)+
                let mut __case = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                __case()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A,
        B,
    }

    fn arb_tagged() -> impl Strategy<Value = (Tag, i64)> {
        (prop_oneof![Just(Tag::A), Just(Tag::B)], -10i64..=10).prop_map(|(t, v)| (t, v * 2))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect bounds, tuples compose, prop_map applies.
        #[test]
        fn generated_values_in_bounds(
            (tag, v) in arb_tagged(),
            xs in collection::vec(0u64..100, 3..=5),
            seed in any::<u64>(),
        ) {
            prop_assert!(matches!(tag, Tag::A | Tag::B));
            prop_assert!((-20..=20).contains(&v) && v % 2 == 0);
            prop_assert!(xs.len() >= 3 && xs.len() <= 5);
            for x in &xs {
                prop_assert!(*x < 100);
            }
            let _ = seed;
        }

        #[test]
        fn assume_skips_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failure_panics_with_context() {
        crate::test_runner::run(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
