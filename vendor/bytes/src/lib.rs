//! Offline shim for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment has no network access, so this vendored crate
//! reproduces exactly the surface the `fedaqp` storage codecs use:
//! [`Bytes`], [`BytesMut`], the little-endian getters of [`Buf`] (impl'd for
//! `&[u8]`) and the putters of [`BufMut`] (impl'd for `BytesMut` and
//! `Vec<u8>`). Unlike the real crate, [`Bytes`] is a plain owned buffer —
//! no refcounted zero-copy slicing — which is semantically equivalent for
//! encode/decode round trips.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies the slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Creates a buffer from a static slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// Growable mutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; little-endian getters consume bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor; little-endian putters append bytes.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_u64_le(v as u64);
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i64_le(-12345);
        buf.put_f64_le(0.25);
        buf.put_slice(b"xyz");

        let frozen = buf.freeze();
        let mut data: &[u8] = &frozen;
        assert_eq!(data.get_u8(), 7);
        assert_eq!(data.get_u16_le(), 513);
        assert_eq!(data.get_u32_le(), 70_000);
        assert_eq!(data.get_u64_le(), 1 << 40);
        assert_eq!(data.get_i64_le(), -12345);
        assert_eq!(data.get_f64_le(), 0.25);
        let mut tail = [0u8; 3];
        data.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!data.has_remaining());
    }

    #[test]
    fn advance_and_remaining() {
        let v = vec![1u8, 2, 3, 4];
        let mut s: &[u8] = &v;
        assert_eq!(s.remaining(), 4);
        s.advance(2);
        assert_eq!(s.chunk(), &[3, 4]);
        assert_eq!(s.get_u8(), 3);
        assert_eq!(s.remaining(), 1);
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b.to_vec(), b"hello");
    }
}
