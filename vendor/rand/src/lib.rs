//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so the
//! external crates the code depends on are vendored as minimal,
//! API-compatible subsets under `vendor/`. This crate reproduces exactly the
//! surface `fedaqp` uses from `rand` 0.8:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` and `sample`-style use,
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`,
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator,
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The generator is **not** the upstream ChaCha12-based `StdRng`, so streams
//! differ from real `rand`, but all workspace code derives randomness through
//! explicit seeds and only relies on determinism and statistical quality,
//! both of which xoshiro256\*\* provides. Swap this crate for the real one in
//! `[workspace.dependencies]` when building with network access.

/// Low-level generator interface: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches upstream).
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can draw uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

// 128-bit types are omitted: the span arithmetic below widens through
// i128 and would overflow for them, and no workspace code draws them.
int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                // As in upstream rand, inclusive and exclusive float ranges
                // use the same transform; hitting `hi` exactly has
                // negligible probability either way.
                let u = <$t as Standard>::standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`]. Generic over the element type
/// (one impl per range *shape*, as in upstream rand) so integer-literal
/// inference flows from the use site into the range.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Rejection-sampled uniform draw in `[0, span)`; `span > 0`.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Lemire's widening-multiply method: reject low words below
        // 2^64 mod span so every output bucket is hit equally often.
        let threshold = span.wrapping_neg() % span;
        loop {
            let v = rng.next_u64();
            let m = (v as u128) * (span as u128);
            if (m as u64) >= threshold {
                return m >> 64;
            }
        }
    } else {
        // Spans wider than 2^64 only arise for full-width i128/u128 ranges,
        // which the workspace never uses; plain modulo bias is acceptable.
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        v % span
    }
}

/// User-facing generator methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Returns a value uniformly distributed over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::standard(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` seed via SplitMix64 expansion
    /// (same construction upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used to expand small seeds into full generator state.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    ///
    /// Not the upstream ChaCha12 `StdRng` — streams differ from real `rand`,
    /// but the API and determinism guarantees match.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Extension methods on slices (subset: `shuffle` and `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&u));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_f64_unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_mut_ref_and_dyn_like_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let r = &mut rng;
        let x = draw(r);
        assert!((0.0..1.0).contains(&x));
    }
}
