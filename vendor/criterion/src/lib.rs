//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this vendored crate
//! reproduces the subset the `fedaqp` benches use: [`Criterion`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical pipeline, each benchmark is
//! warmed up briefly and then timed over enough iterations to fill a short
//! measurement window; the median per-iteration time is printed as
//! `bench-name ... <time>`. That keeps `cargo bench` usable for coarse
//! before/after comparisons while compiling instantly and requiring no
//! dependencies. Swap in the real crate via `[workspace.dependencies]`
//! when network access is available.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a parameterized benchmark, e.g. `encode/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` with the given parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size targeting ~10 batches in the measure window.
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((self.measure.as_secs_f64() / 10.0 / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut samples = Vec::with_capacity(16);
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || samples.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        self.last = Some(Duration::from_secs_f64(median));
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(150),
            measure: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            last: None,
        };
        f(&mut b);
        report(&id.to_string(), b.last);
        self
    }

    /// Runs one benchmark over an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            last: None,
        };
        f(&mut b, input);
        report(&id.to_string(), b.last);
        self
    }

    /// Starts a named group; benchmarks in it are reported as
    /// `group-name/bench-name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measure: None,
        }
    }

    /// Called by [`criterion_main!`] after all groups ran.
    pub fn final_summary(&self) {}
}

/// A named collection of related benchmarks (see
/// [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// Group-local measurement window; never leaks into the parent
    /// `Criterion` (matching real criterion's per-group scoping).
    measure: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window for benchmarks in this group only.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = Some(d);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measure: self.measure.unwrap_or(self.criterion.measure),
            last: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.last);
        self
    }

    /// Runs one benchmark inside the group over an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measure: self.measure.unwrap_or(self.criterion.measure),
            last: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.last);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(name: &str, time: Option<Duration>) {
    match time {
        Some(t) => println!("{name:<48} time: {}", human(t)),
        None => println!("{name:<48} (no measurement)"),
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group: `criterion_group!(name, fn_a, fn_b, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(3u64 + 4));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("enc", 64).to_string(), "enc/64");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn human_units() {
        assert!(human(Duration::from_nanos(12)).contains("ns"));
        assert!(human(Duration::from_micros(12)).contains("µs"));
        assert!(human(Duration::from_millis(12)).contains("ms"));
    }
}
