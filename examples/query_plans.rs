//! The unified `QueryPlan` analyst API, end to end: one SQL string
//! compiled to a plan, executed on the concurrent engine, and then served
//! over a real TCP socket — with byte-identical released values.
//!
//! ```sh
//! cargo run --release --example query_plans
//! ```

use fedaqp::core::{Federation, FederationConfig, FederationEngine};
use fedaqp::data::{partition_rows, AdultConfig, AdultSynth, PartitionMode};
use fedaqp::model::{parse_sql_plan, PlanParams, QueryPlan};
use fedaqp::net::{FederationServer, RemoteFederation, ServeOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_federation() -> Result<Federation, Box<dyn std::error::Error>> {
    let dataset = AdultSynth::generate(AdultConfig {
        n_rows: 120_000,
        seed: 11,
    })?;
    let mut rng = StdRng::seed_from_u64(4);
    let partitions = partition_rows(&mut rng, dataset.cells, 4, &PartitionMode::Equal)?;
    let mut config = FederationConfig::paper_default(400);
    config.epsilon = 4.0;
    Ok(Federation::build(config, dataset.schema, partitions)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let federation = build_federation()?;
    let params = PlanParams {
        sampling_rate: 0.2,
        epsilon: 4.0,
        delta: 1e-3,
        threshold: 0.0,
    };

    // One SQL string drives the whole stack: group-by, derived statistic,
    // and extreme all compile to the same QueryPlan type.
    let statements = [
        "SELECT COUNT(*) FROM adult WHERE 25 <= age <= 60",
        "SELECT AVG(Measure) FROM adult WHERE 25 <= age <= 60",
        "SELECT COUNT(*) FROM adult WHERE 25 <= age <= 60 GROUP BY workclass",
        "SELECT MAX(hours_per_week) FROM adult",
    ];
    let plans: Vec<QueryPlan> = statements
        .iter()
        .map(|sql| parse_sql_plan(federation.schema(), sql, &params))
        .collect::<Result<_, _>>()?;

    // In-process: a scoped engine fans each plan's sub-queries across the
    // provider worker pool (a group-by's k point queries run concurrently).
    let local: Vec<_> = federation.with_engine(|engine| {
        plans
            .iter()
            .map(|plan| engine.run_plan(plan))
            .collect::<Result<Vec<_>, _>>()
    })?;
    for (sql, answer) in statements.iter().zip(&local) {
        println!("{sql}");
        match answer.groups() {
            Some(groups) => {
                for g in groups {
                    println!("    workclass {:>2} -> {:>10.1}", g.key, g.value);
                }
            }
            None => println!("    -> {:.2}", answer.value().unwrap_or(f64::NAN)),
        }
        println!(
            "    (ε = {}, δ = {:e} for the whole plan)\n",
            answer.cost.eps, answer.cost.delta
        );
    }

    // Over the wire: the identical plans through a real server are
    // byte-identical for the same seed — the wire adds transport, never
    // arithmetic.
    let engine = FederationEngine::start(build_federation()?);
    let server = FederationServer::bind("127.0.0.1:0", engine.handle(), ServeOptions::unlimited())?;
    let mut remote = RemoteFederation::connect(&server.local_addr().to_string())?;
    println!(
        "serving on {} (wire v{})",
        server.local_addr(),
        remote.protocol_version()
    );
    for (plan, local_answer) in plans.iter().zip(&local) {
        let remote_answer = remote.run_plan(plan)?;
        assert_eq!(
            remote_answer.result, local_answer.result,
            "remote and in-process answers must be byte-identical"
        );
    }
    println!("remote answers byte-identical to the in-process engine ✓");

    drop(remote);
    server.shutdown();
    engine.shutdown();
    Ok(())
}
