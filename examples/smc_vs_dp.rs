//! SMC substrate walk-through: additive secret sharing, secure aggregation,
//! and the row-sharing vs result-sharing cost gap that motivates the whole
//! paper (Fig. 1).
//!
//! ```sh
//! cargo run --release --example smc_vs_dp
//! ```

use fedaqp::smc::{decode_fixed, encode_fixed, reconstruct, share_value, CostModel, SmcRuntime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);

    // --- 1. Secret sharing: a hospital's local count, split four ways ---
    let secret_count = 1_234.5f64;
    let encoded = encode_fixed(secret_count)?;
    let shares = share_value(&mut rng, encoded, 4)?;
    println!("secret        : {secret_count}");
    println!(
        "shares        : {:?}",
        shares.iter().map(|s| s.value()).collect::<Vec<_>>()
    );
    println!("any 3 shares  : reveal nothing (uniformly random field elements)");
    println!("reconstructed : {}\n", decode_fixed(reconstruct(&shares)));

    // --- 2. Secure aggregation: what protocol step 7 actually computes ---
    let mut rt = SmcRuntime::new(4, CostModel::lan())?;
    let local_estimates = [310.25, 295.5, 402.0, 188.75];
    let local_sensitivities = [12.0, 9.5, 15.25, 11.0];
    let sum = rt.secure_sum(&mut rng, &local_estimates)?;
    let max = rt.secure_max(&mut rng, &local_sensitivities)?;
    println!("oblivious sum of estimates    : {sum}");
    println!("oblivious max of sensitivities: {max}");
    println!("simulated SMC time            : {:?}", rt.elapsed());
    println!("traffic                       : {:?}\n", rt.traffic());

    // --- 3. The Fig. 1 gap: sharing rows vs sharing results ---
    println!("row-sharing vs result-sharing (4 providers, 56-byte rows):");
    println!(
        "{:>12} {:>14} {:>14} {:>9}",
        "rows/party", "share rows", "share results", "ratio"
    );
    for rows_per_party in [10_000u64, 100_000, 1_000_000] {
        let mut rt = SmcRuntime::new(4, CostModel::lan())?;
        let row_cost = rt.row_sharing_cost(&[rows_per_party; 4], 56, 18);
        rt.reset();
        let (_, result_cost) = rt.result_sharing_cost(&mut rng, &local_estimates)?;
        println!(
            "{rows_per_party:>12} {:>13.3}s {:>13.4}s {:>8.0}x",
            row_cost.as_secs_f64(),
            result_cost.as_secs_f64(),
            row_cost.as_secs_f64() / result_cost.as_secs_f64()
        );
    }
    println!(
        "\nResult-sharing cost is constant while row-sharing grows with the \
         table — the asymmetry (Fig. 1) that makes collaboration via DP \
         summaries + local evaluation the only scalable design."
    );
    Ok(())
}
