//! Federated health study: the paper's motivating scenario (§1) — several
//! hospitals jointly analyse patient data during a pandemic without any of
//! them disclosing individual records.
//!
//! Four hospitals of very different sizes hold admissions records
//! (age, severity, ward, stay length, comorbidities). An epidemiologist
//! runs a sequence of range queries through the private federation under a
//! total budget (ξ, ψ); the accountant cuts her off when it is spent.
//!
//! ```sh
//! cargo run --release --example hospital_study
//! ```

use fedaqp::core::{Federation, FederationConfig};
use fedaqp::dp::BudgetAccountant;
use fedaqp::model::{Aggregate, Dimension, Domain, QueryBuilder, Row, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizes one hospital's admissions as count-tensor cells.
fn hospital_records(rng: &mut StdRng, n: usize, severity_bias: f64) -> Vec<Row> {
    (0..n)
        .map(|_| {
            let age: i64 = {
                // Elderly-skewed admissions.
                let base: f64 = rng.gen_range(0.0..1.0f64);
                (20.0 + 70.0 * base.sqrt()) as i64
            };
            let severity = ((rng.gen_range(0.0..1.0f64) * severity_bias * 4.0) as i64).min(4);
            let ward = rng.gen_range(0..6i64);
            let stay = (rng.gen_range(0.0f64..1.0).powi(2) * 29.0) as i64 + 1;
            let comorb = rng.gen_range(0..5i64);
            Row::raw(vec![age, severity, ward, stay, comorb])
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::new(vec![
        Dimension::new("age", Domain::new(20, 90)?),
        Dimension::new("severity", Domain::new(0, 4)?),
        Dimension::new("ward", Domain::new(0, 5)?),
        Dimension::new("stay_days", Domain::new(1, 30)?),
        Dimension::new("comorbidities", Domain::new(0, 4)?),
    ])?;

    // Four hospitals: one university clinic and three regional ones.
    let mut rng = StdRng::seed_from_u64(2024);
    let partitions = vec![
        hospital_records(&mut rng, 120_000, 1.2),
        hospital_records(&mut rng, 40_000, 0.9),
        hospital_records(&mut rng, 30_000, 1.0),
        hospital_records(&mut rng, 15_000, 0.8),
    ];
    for (i, p) in partitions.iter().enumerate() {
        println!("hospital {i}: {} admissions", p.len());
    }

    let mut config = FederationConfig::paper_default(300);
    config.epsilon = 1.0;
    config.delta = 1e-3;
    let mut federation = Federation::build(config, schema, partitions)?;

    // The epidemiologist's total budget: ξ = 5 → five ε = 1 queries.
    let mut accountant = BudgetAccountant::new(5.0, 1e-2)?;

    let studies = [
        ("elderly severe cases", {
            QueryBuilder::new(federation.schema(), Aggregate::Count)
                .range("age", 65, 90)?
                .range("severity", 3, 4)?
                .build()?
        }),
        ("long stays in ICU-like wards", {
            QueryBuilder::new(federation.schema(), Aggregate::Count)
                .range("ward", 0, 1)?
                .range("stay_days", 14, 30)?
                .build()?
        }),
        ("mid-age multi-morbidity admissions", {
            QueryBuilder::new(federation.schema(), Aggregate::Count)
                .range("age", 40, 64)?
                .range("comorbidities", 2, 4)?
                .build()?
        }),
        ("mild short stays", {
            QueryBuilder::new(federation.schema(), Aggregate::Count)
                .range("severity", 0, 1)?
                .range("stay_days", 1, 3)?
                .build()?
        }),
        ("all severe admissions", {
            QueryBuilder::new(federation.schema(), Aggregate::Count)
                .range("severity", 3, 4)?
                .build()?
        }),
        // This sixth query must be rejected: the budget is spent.
        ("one query too many", {
            QueryBuilder::new(federation.schema(), Aggregate::Count)
                .range("age", 20, 90)?
                .build()?
        }),
    ];

    for (title, query) in &studies {
        let cost = federation.default_query_cost()?;
        match accountant.charge(cost) {
            Ok(()) => {
                let ans = federation.run(query, 0.15)?;
                println!(
                    "{title:<38} exact {:>8}  private {:>10.0}  err {:>6.2}%  (ξ left: {:.1})",
                    ans.exact,
                    ans.value,
                    100.0 * ans.relative_error,
                    accountant.remaining().eps,
                );
            }
            Err(e) => {
                println!("{title:<38} REJECTED: {e}");
            }
        }
    }
    Ok(())
}
