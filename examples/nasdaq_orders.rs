//! Financial analytics: the paper's §3 example — "a big database
//! aggregating per-stock order data for the NASDAQ exchange, [COUNT and
//! SUM] queries are typically used to analyze order data from past days."
//!
//! Four brokerages hold order flow for the same market; an analyst studies
//! volume patterns over price/size/time ranges with SUM(Measure) queries
//! (the tensor's measure counts orders per (symbol-bucket, price-bucket,
//! size-bucket, minute) cell), comparing the SMC release mode against
//! local-DP noise.
//!
//! ```sh
//! cargo run --release --example nasdaq_orders
//! ```

use fedaqp::core::{Federation, FederationConfig, ReleaseMode};
use fedaqp::model::{Aggregate, CountTensor, Dimension, Domain, QueryBuilder, Row, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizes one brokerage's raw orders and aggregates them into the
/// shared count-tensor schema.
fn brokerage_orders(
    schema: &Schema,
    rng: &mut StdRng,
    n: usize,
) -> Result<Vec<Row>, Box<dyn std::error::Error>> {
    let raw: Vec<Row> = (0..n)
        .map(|_| {
            let symbol = rng.gen_range(0..200i64); // symbol bucket
                                                   // Price bucket: log-normal-ish concentration in the mid range.
            let price = ((rng.gen_range(0.0f64..1.0) + rng.gen_range(0.0f64..1.0)) * 50.0) as i64;
            // Order size bucket: heavy-tailed, most orders small.
            let size = (rng.gen_range(0.0f64..1.0).powi(3) * 49.0) as i64;
            let minute = rng.gen_range(0..390i64); // trading day minutes
            Row::raw(vec![symbol, price.min(99), size, minute])
        })
        .collect();
    let keep: Vec<usize> = (0..schema.arity()).collect();
    let tensor = CountTensor::aggregate(schema, &raw, &keep)?;
    Ok(tensor.into_cells())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::new(vec![
        Dimension::new("symbol_bucket", Domain::new(0, 199)?),
        Dimension::new("price_bucket", Domain::new(0, 99)?),
        Dimension::new("size_bucket", Domain::new(0, 49)?),
        Dimension::new("minute", Domain::new(0, 389)?),
    ])?;

    let mut rng = StdRng::seed_from_u64(93);
    let partitions: Vec<Vec<Row>> = (0..4)
        .map(|_| brokerage_orders(&schema, &mut rng, 250_000))
        .collect::<Result<_, _>>()?;
    let total_orders: u64 = partitions.iter().flatten().map(|c| c.measure()).sum();
    println!("federated order book: {total_orders} orders across 4 brokerages");

    let queries = [
        ("morning small-lot volume", {
            QueryBuilder::new(&schema, Aggregate::Sum)
                .range("minute", 0, 60)?
                .range("size_bucket", 0, 9)?
                .build()?
        }),
        ("mid-price volume across the day", {
            QueryBuilder::new(&schema, Aggregate::Sum)
                .range("price_bucket", 30, 70)?
                .build()?
        }),
        ("close-auction large orders", {
            QueryBuilder::new(&schema, Aggregate::Sum)
                .range("minute", 330, 389)?
                .range("size_bucket", 20, 49)?
                .build()?
        }),
    ];

    for mode in [ReleaseMode::LocalDp, ReleaseMode::Smc] {
        let mut config = FederationConfig::paper_default(1000);
        config.release_mode = mode;
        let mut federation = Federation::build(config, schema.clone(), partitions.clone())?;
        println!("\n-- release mode: {mode:?} --");
        for (title, query) in &queries {
            let ans = federation.run(query, 0.10)?;
            println!(
                "{title:<34} exact {:>9}  private {:>11.0}  err {:>6.2}%  noise {:>+9.0}",
                ans.exact,
                ans.value,
                100.0 * ans.relative_error,
                ans.value - ans.raw_estimate,
            );
        }
    }
    println!(
        "\nSMC releases a single Laplace noise on the oblivious sum, so its \
         noise column is typically tighter than local-DP's four summed noises (Fig. 8)."
    );
    Ok(())
}
