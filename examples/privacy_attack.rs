//! Learning-based attack demo (§6.6): a Naive-Bayes attacker tries to
//! infer a sensitive attribute through the private query interface, under
//! a realistic total budget and under an absurdly large one.
//!
//! ```sh
//! cargo run --release --example privacy_attack
//! ```

use fedaqp::attack::{run_attack, AttackConfig, CompositionRegime};
use fedaqp::core::{Federation, FederationConfig};
use fedaqp::model::{Aggregate, Dimension, Domain, Row, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small federated world where the sensitive attribute (a diagnosis
    // code, 20 classes) is strongly predictable from two quasi-identifiers
    // — the worst case for privacy, best case for the attacker.
    let schema = Schema::new(vec![
        Dimension::new("diagnosis", Domain::new(0, 19)?),
        Dimension::new("age_bucket", Domain::new(0, 19)?),
        Dimension::new("region", Domain::new(0, 7)?),
    ])?;
    let mut rng = StdRng::seed_from_u64(5);
    let rows: Vec<Row> = (0..40_000)
        .map(|_| {
            let age = rng.gen_range(0..20i64);
            // Diagnosis follows the age bucket 85% of the time.
            let diagnosis = if rng.gen::<f64>() < 0.85 {
                age
            } else {
                rng.gen_range(0..20i64)
            };
            Row::raw(vec![diagnosis, age, rng.gen_range(0..8i64)])
        })
        .collect();
    let partitions: Vec<Vec<Row>> = (0..4)
        .map(|p| {
            rows.iter()
                .enumerate()
                .filter(|(i, _)| i % 4 == p)
                .map(|(_, r)| r.clone())
                .collect()
        })
        .collect();
    let mut config = FederationConfig::paper_default(256);
    config.n_min = 2;
    let mut federation = Federation::build(config, schema, partitions)?;

    println!("ground truth: diagnosis == age_bucket for 85% of individuals");
    println!("chance level: 1/20 = 5%\n");

    for (label, regime, xi) in [
        (
            "sequential composition, ξ = 1   ",
            CompositionRegime::Sequential,
            1.0,
        ),
        (
            "advanced composition,  ξ = 100 ",
            CompositionRegime::Advanced,
            100.0,
        ),
        (
            "coalition,             ξ = 100 ",
            CompositionRegime::Coalition,
            100.0,
        ),
        (
            "no effective budget (sanity)   ",
            CompositionRegime::Coalition,
            1e6,
        ),
    ] {
        let cfg = AttackConfig {
            sa_dim: 0,
            qi_dims: vec![1, 2],
            xi,
            psi: 1e-6,
            regime,
            aggregate: Aggregate::Count,
            sampling_rate: 0.2,
        };
        let outcome = run_attack(&mut federation, &rows, &cfg)?;
        println!(
            "{label}: accuracy {:>6.2}%  ({} queries at ε = {:.5} each)",
            100.0 * outcome.accuracy,
            outcome.n_queries,
            outcome.per_query.eps,
        );
    }
    println!(
        "\nWith bounded budgets the classifier stays near chance even though \
         the correlation is almost deterministic; only the unbounded sanity \
         run recovers it — the system's DP accounting is what protects the data."
    );
    Ok(())
}
