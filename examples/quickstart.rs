//! Quickstart: build a four-provider federation over synthetic census data
//! and answer one private range query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fedaqp::core::{Federation, FederationConfig};
use fedaqp::data::{partition_rows, AdultConfig, AdultSynth, PartitionMode};
use fedaqp::model::{Aggregate, QueryBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: an Adult-like count tensor (stand-in for each provider's
    //    private census extract), split horizontally over four providers.
    let dataset = AdultSynth::generate(AdultConfig {
        n_rows: 600_000,
        seed: 42,
    })?;
    println!(
        "dataset: {} raw rows aggregated into {} tensor cells",
        dataset.raw_rows,
        dataset.cells.len()
    );
    let mut rng = StdRng::seed_from_u64(7);
    let partitions = partition_rows(&mut rng, dataset.cells, 4, &PartitionMode::Equal)?;

    // 2. Federation: the paper's §6.1 defaults — per-query budget ε = 1,
    //    δ = 1e-3 split (0.1, 0.1, 0.8) across allocation/sampling/release.
    let capacity = 1500; // cluster size S (≈1% of a provider's partition)
    let config = FederationConfig::paper_default(capacity);
    let mut federation = Federation::build(config, dataset.schema.clone(), partitions)?;

    // 3. Query: COUNT of cells for prime-age, full-time workers.
    let query = QueryBuilder::new(federation.schema(), Aggregate::Count)
        .range("age", 25, 55)?
        .range("hours_per_week", 35, 60)?
        .build()?;
    println!("query:   {}", query.display_sql(federation.schema()));

    // 4. Run privately at a 20% sampling rate, and plainly as the baseline.
    let plain = federation.run_plain(&query)?;
    let answer = federation.run(&query, 0.10)?;

    println!("exact answer        : {}", answer.exact);
    println!("private answer      : {:.0}", answer.value);
    println!(
        "relative error      : {:.2}%",
        100.0 * answer.relative_error
    );
    println!(
        "privacy cost        : (ε = {:.2}, δ = {:.0e})",
        answer.cost.eps, answer.cost.delta
    );
    println!(
        "clusters scanned    : {} of {} covering",
        answer.clusters_scanned, answer.covering_total
    );
    println!(
        "latency             : private {:?} vs plain {:?} (speed-up {:.2}x)",
        answer.timings.total(),
        plain.duration,
        plain.duration.as_secs_f64() / answer.timings.total().as_secs_f64()
    );
    Ok(())
}
