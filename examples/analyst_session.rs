//! Analyst session walk-through: the §5.4 interactive model with a total
//! budget, derived aggregations (AVG — §7), private MIN/MAX (extension),
//! and persisting a provider's store between sessions.
//!
//! ```sh
//! cargo run --release --example analyst_session
//! ```

use fedaqp::core::{
    private_extreme, AnalystSession, DerivedStatistic, Extreme, Federation, FederationConfig,
    SessionPlan,
};
use fedaqp::data::{partition_rows, AmazonConfig, AmazonSynth, PartitionMode};
use fedaqp::model::{Aggregate, QueryBuilder};
use fedaqp::storage::{decode_store, encode_store};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = AmazonSynth::generate(AmazonConfig {
        n_rows: 400_000,
        seed: 3,
    })?;
    let mut rng = StdRng::seed_from_u64(8);
    let partitions = partition_rows(&mut rng, dataset.cells, 4, &PartitionMode::Equal)?;
    let config = FederationConfig::paper_default(500);
    let mut federation = Federation::build(config, dataset.schema.clone(), partitions)?;

    // --- Extension queries run directly on the federation ---
    let max_votes = private_extreme(&mut federation, 2, Extreme::Max, 1.0)?;
    println!(
        "private MAX(helpful_votes) : {} (exact {:?}, ε = {})",
        max_votes.value, max_votes.exact, max_votes.epsilon
    );

    // --- Persist one provider's clustered table (offline artifact) ---
    let blob = encode_store(federation.providers()[0].store());
    let restored = decode_store(&blob)?;
    println!(
        "provider 0 store persisted : {} bytes for {} cells in {} clusters (round-trip ok: {})",
        blob.len(),
        restored.total_rows(),
        restored.n_clusters(),
        restored.total_measure() == federation.providers()[0].store().total_measure(),
    );

    // --- An interactive session: ξ = 6 at ε = 1 per query ---
    let mut session = AnalystSession::open(federation, 6.0, 1e-2, SessionPlan::PayAsYouGo)?;
    println!(
        "\nsession opened: per-query ε = {}, budget ξ = {}",
        session.per_query_cost().eps,
        session.remaining().eps
    );

    let five_star = QueryBuilder::new(session.federation().schema(), Aggregate::Sum)
        .range("rating", 5, 5)?
        .build()?;
    let ans = session.query(&five_star, 0.1)?;
    println!(
        "5★ review volume           : {:.0} (exact {}, err {:.2}%) — ξ left {:.1}",
        ans.value,
        ans.exact,
        100.0 * ans.relative_error,
        session.remaining().eps
    );

    let recent = QueryBuilder::new(session.federation().schema(), Aggregate::Count)
        .range("week", 150, 199)?
        .build()?;
    let avg = session.query_derived(&recent, DerivedStatistic::Average, 0.1)?;
    println!(
        "AVG reviews per cell (recent weeks): {:.2} (exact {:.2}) — charged 2ε, ξ left {:.1}",
        avg.value,
        avg.exact,
        session.remaining().eps
    );

    while session.can_query() {
        session.query(&five_star, 0.1)?;
        println!(
            "extra query answered        — ξ left {:.1}",
            session.remaining().eps
        );
    }
    match session.query(&five_star, 0.1) {
        Err(e) => println!("next query rejected         : {e}"),
        Ok(_) => unreachable!("budget must be exhausted"),
    }
    let (_fed, spent) = session.close();
    println!(
        "session closed, spent (ε = {}, δ = {:.0e})",
        spent.eps, spent.delta
    );
    Ok(())
}
